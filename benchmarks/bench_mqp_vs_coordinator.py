"""EXP-MQP-VS-COORD — mutant query plans versus coordinator execution and semi-joins.

The paper ([PM02a], §2) positions MQPs as trading pipelining/parallelism
for robustness and reduced coordination.  For the Figure 3 join query the
table compares messages, bytes moved, and simulated latency under (a) MQP
execution and (b) a coordinator that pushes selections and collects every
partial result centrally; a second table adds the classical two-site
shipping comparison (ship-whole-relation vs semi-join vs the MQP-style
pre-reduced partial result).
"""

from __future__ import annotations

import pytest

from repro.distributed import estimate_full_ship, estimate_semijoin
from repro.engine import QueryEngine
from repro.algebra import PlanBuilder
from repro.harness import format_table, run_cd_query_coordinator, run_cd_query_mqp
from repro.workloads import CDWorkload, CDWorkloadConfig
from repro.xmlmodel import serialized_size
from conftest import emit


@pytest.mark.parametrize("sellers", [2, 4])
def test_mqp_vs_coordinator(benchmark, sellers):
    workload = CDWorkload(CDWorkloadConfig(sellers=sellers, cds_per_seller=15, seed=29))
    expected = workload.expected_matches()

    def run_both():
        return run_cd_query_mqp(workload), run_cd_query_coordinator(workload)

    (mqp_summary, mqp_found), (coord_summary, coord_found) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    rows = [
        {"strategy": "mqp", **{k: mqp_summary[k] for k in ("messages", "bytes", "mean_latency_ms", "mean_recall")}},
        {
            "strategy": "coordinator",
            **{k: coord_summary[k] for k in ("messages", "bytes", "mean_latency_ms", "mean_recall")},
        },
    ]
    emit(f"EXP-MQP-VS-COORD  Figure-3 query, {sellers} sellers", format_table(rows))
    assert mqp_found == expected and coord_found == expected
    assert mqp_summary["messages"] < coord_summary["messages"]


def test_two_site_shipping_comparison(benchmark):
    """Ship-whole vs semi-join vs MQP partial-result shipping for one join."""
    workload = CDWorkload(CDWorkloadConfig(sellers=1, cds_per_seller=40, seed=31))
    cds = workload.sellers[0].items
    listings = workload.track_listings

    def compute():
        cheap = QueryEngine().evaluate(
            PlanBuilder.data(cds, name="cds").select(f"price < {workload.config.max_price:g}").build()
        )
        mqp_partial_bytes = sum(serialized_size(item) for item in cheap)
        semijoin = estimate_semijoin(cheap, listings, "//title", "//CD/title")
        return mqp_partial_bytes, semijoin

    mqp_partial_bytes, semijoin = benchmark(compute)
    rows = [
        {"strategy": "ship whole track-listing relation", "bytes_moved": estimate_full_ship(listings)},
        {"strategy": "semi-join (keys + matches)", "bytes_moved": semijoin.total_bytes},
        {"strategy": "mqp partial result (reduced CDs)", "bytes_moved": mqp_partial_bytes},
    ]
    emit("EXP-MQP-VS-COORD  Two-site shipping comparison", format_table(rows))
    assert semijoin.total_bytes < estimate_full_ship(listings)


if __name__ == "__main__":
    import benchjson

    raise SystemExit(benchjson.run_as_script(__file__))
