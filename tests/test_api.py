"""The public client API: clusters, sessions, fluent queries, result futures.

Covers the contract ``docs/api.md`` documents:

* builder → plan compilation is equivalent to hand-built ``PlanBuilder``
  plans (identical wire XML);
* :class:`repro.api.QueryHandle` resolves event-driven on both transport
  backends, with timeout / partial / streaming semantics and loud
  ``QueryTimeout`` / ``PeerOffline`` errors instead of ``None``;
* the deprecation shims (``QueryPeer.issue_query`` / ``result_for``) still
  work while warning.
"""

from __future__ import annotations

import pytest

from repro.algebra import PlanBuilder
from repro.algebra.serialization import serialize_plan
from repro.api import (
    APIError,
    Cluster,
    PeerOffline,
    QueryBuilder,
    QueryHandle,
    QueryPreferences,
    QueryTimeout,
    Session,
)
from repro.namespace import InterestAreaURN, garage_sale_namespace
from repro.peers import BaseServer
from tests.conftest import make_item

TRANSPORTS = ("sim", "aio")


def small_cluster(transport: str = "sim", notify_unreachable: bool = True) -> Cluster:
    """Two Portland CD sellers, an Oregon index, a meta-index, and a client."""
    namespace = garage_sale_namespace()
    cluster = Cluster(
        transport, namespace=namespace, notify_unreachable=notify_unreachable
    )
    portland_cds = namespace.area(["USA/OR/Portland", "Music/CDs"])
    seller1 = cluster.base_server("seller1:9020", portland_cds)
    seller1.publish("cds", [make_item("Abbey Road", 8), make_item("Kind of Blue", 12)])
    seller2 = cluster.base_server("seller2:9020", portland_cds)
    seller2.publish("cds", [make_item("Blue Train", 6)])
    cluster.index_server("index-or:9020", namespace.area(["USA/OR", "*"]))
    cluster.meta_index("meta:9020")
    cluster.client("client:9020")
    cluster.connect()
    return cluster


def portland_area(cluster: Cluster):
    return cluster.namespace.area(["USA/OR/Portland", "Music/CDs"])


class TestQueryBuilderCompilation:
    """The fluent builder compiles to exactly the hand-built plan trees."""

    @pytest.fixture()
    def session(self, namespace):
        cluster = Cluster(namespace=namespace)
        session = cluster.base_server(
            "peer:9020", namespace.area(["USA/OR/Portland", "Music/CDs"])
        )
        yield session
        cluster.close()

    def test_urn_select_matches_plan_builder(self, session):
        fluent = session.query().urn("urn:ForSale:X").where("price < 10").compile()
        manual = PlanBuilder.urn("urn:ForSale:X").select("price < 10").display("peer:9020")
        assert serialize_plan(fluent) == serialize_plan(manual)

    def test_area_compiles_to_interest_area_urn(self, session, namespace):
        area = namespace.area(["USA/OR/Portland", "Music/CDs"])
        fluent = session.query().area(area).compile()
        manual = PlanBuilder.urn(str(InterestAreaURN.for_area(area))).display("peer:9020")
        assert serialize_plan(fluent) == serialize_plan(manual)

    def test_area_accepts_coordinate_paths(self, session, namespace):
        by_paths = session.query().area(["USA/OR/Portland", "Music/CDs"]).compile()
        by_area = session.query().area(namespace.area(["USA/OR/Portland", "Music/CDs"])).compile()
        assert serialize_plan(by_paths) == serialize_plan(by_area)

    def test_join_union_project_pipeline(self, session):
        fluent = (
            session.query()
            .url("a:9020", "/cds")
            .union(session.query().url("b:9020", "/cds"))
            .select("price < 10")
            .join(session.query().urn("urn:CD:TrackListings"), on=("//title", "//CD/title"))
            .project([("//title", "title")])
            .order_by("//title")
            .top_n(3, "//title")
            .compile()
        )
        manual = (
            PlanBuilder.url("a:9020", "/cds")
            .union(PlanBuilder.url("b:9020", "/cds"))
            .select("price < 10")
            .join(PlanBuilder.urn("urn:CD:TrackListings"), on=("//title", "//CD/title"))
            .project([("//title", "title")])
            .order_by("//title")
            .top_n(3, "//title")
            .display("peer:9020")
        )
        assert serialize_plan(fluent) == serialize_plan(manual)

    def test_data_and_aggregate(self, session):
        items = [make_item("A", 5), make_item("B", 7)]
        fluent = session.query().data(items, name="stock").count().compile()
        manual = PlanBuilder.data(items, name="stock").count().display("peer:9020")
        assert serialize_plan(fluent) == serialize_plan(manual)

    def test_to_overrides_delivery_target(self, session):
        plan = session.query().urn("urn:X:y").to("elsewhere:9020").compile()
        assert plan.target == "elsewhere:9020"

    def test_raw_plan_escape_hatch(self, session):
        manual = PlanBuilder.urn("urn:X:y").select("price < 5").display("peer:9020")
        adopted = session.query(manual).compile()
        assert adopted is manual
        adopted_via_method = session.query().plan(manual).compile()
        assert adopted_via_method is manual

    def test_raw_plan_cannot_be_silently_retargeted(self, session):
        manual = PlanBuilder.urn("urn:X:y").display("peer:9020")
        with pytest.raises(APIError, match="retarget"):
            session.query(manual).to("elsewhere:9020").compile()
        # A .to() matching the plan's own target is not a conflict.
        assert session.query(manual).to("peer:9020").compile() is manual

    def test_builder_grammar_errors(self, session):
        with pytest.raises(APIError):
            session.query().compile()  # no source
        with pytest.raises(APIError):
            session.query().where("price < 1")  # operator before a source
        with pytest.raises(APIError):
            session.query().urn("urn:X:y").urn("urn:X:z")  # two sources
        manual = PlanBuilder.urn("urn:X:y").display("peer:9020")
        with pytest.raises(APIError):
            session.query(manual).where("price < 1")  # raw plan is structural-final
        with pytest.raises(APIError):
            session.query().urn("urn:X:y").plan(manual)  # fluent body already started

    def test_preferences_compilation(self, session):
        builder = session.query().urn("urn:X:y").prefer("current").within(250.0)
        preferences = builder.build_preferences()
        assert preferences.prefer == "current"
        assert preferences.target_time_ms == 250.0
        explicit = QueryPreferences(prefer="fast")
        assert (
            session.query().urn("urn:X:y").preferences(explicit).build_preferences()
            is explicit
        )


class TestClusterLifecycle:
    def test_context_manager_closes_transport(self, namespace):
        with Cluster(namespace=namespace) as cluster:
            cluster.client("client:9020")
        # close is idempotent; a second close must not raise
        cluster.close()

    def test_session_lookup_and_join_order(self, namespace):
        with Cluster(namespace=namespace) as cluster:
            first = cluster.client("a:9020")
            second = cluster.client("b:9020")
            assert cluster.session("a:9020") is first
            assert cluster.sessions() == [first, second]
            with pytest.raises(APIError):
                cluster.session("missing:9020")

    def test_join_wraps_existing_peer(self, namespace):
        with Cluster(namespace=namespace) as cluster:
            peer = BaseServer("s:9020", namespace, namespace.top_area())
            session = cluster.join(peer)
            assert isinstance(session, Session)
            assert session.peer is peer

    def test_namespace_required_for_convenience_constructors(self):
        with Cluster() as cluster:
            with pytest.raises(APIError):
                cluster.client("c:9020")

    def test_connect_counts_registrations_and_seeds_clients(self, namespace):
        with Cluster(namespace=namespace) as cluster:
            seller = cluster.base_server(
                "s:9020", namespace.area(["USA/OR/Portland", "Music/CDs"])
            )
            seller.publish("cds", [make_item("A", 5)])
            cluster.index_server("i:9020", namespace.area(["USA/OR", "*"]))
            meta = cluster.meta_index("m:9020")
            client = cluster.client("c:9020")
            count = cluster.connect()
            assert count >= 2
            # The pure client was seeded with the meta-index entry.
            assert meta.address in client.peer.catalog.known_addresses()


@pytest.mark.parametrize("transport", TRANSPORTS)
class TestQueryHandleOnBothTransports:
    def test_result_waits_event_driven(self, transport):
        with small_cluster(transport) as cluster:
            client = cluster.session("client:9020")
            handle = (
                client.query()
                .area(portland_area(cluster))
                .where("price < 10")
                .expecting(2)
                .submit()
            )
            assert not handle.done()
            result = handle.result(timeout=60_000)
            assert handle.done()
            assert not result.partial
            assert {item.child_text("title") for item in result.items} == {
                "Abbey Road",
                "Blue Train",
            }
            # The wait stopped at the completion event, not at idle: the
            # result is available the moment it is recorded.
            assert handle.trace().completed_at is not None

    def test_result_after_idle_returns_immediately(self, transport):
        with small_cluster(transport) as cluster:
            client = cluster.session("client:9020")
            handle = (
                client.query()
                .area(portland_area(cluster))
                .where("price < 10")
                .expecting(2)
                .submit()
            )
            cluster.run_until_idle()
            assert handle.done()
            assert handle.result().count == 2

    def test_timeout_raises_query_timeout(self, transport):
        with small_cluster(transport) as cluster:
            client = cluster.session("client:9020")
            handle = (
                client.query()
                .area(portland_area(cluster))
                .where("price < 10")
                .submit()
            )
            # Far too small a budget: the plan needs several network hops.
            with pytest.raises(QueryTimeout, match="simulated ms"):
                handle.result(timeout=0.5)
            # The clock advanced only to the deadline, then a longer wait succeeds.
            assert handle.result(timeout=60_000).count == 2

    def test_idle_with_no_result_raises_query_timeout(self, transport):
        with small_cluster(transport, notify_unreachable=False) as cluster:
            # Both sellers die with failure notices disabled: the plan is
            # silently dropped at delivery, so nothing will ever arrive.
            cluster.session("seller1:9020").crash()
            cluster.session("seller2:9020").crash()
            client = cluster.session("client:9020")
            handle = (
                client.query()
                .area(portland_area(cluster))
                .where("price < 10")
                .submit()
            )
            with pytest.raises(QueryTimeout, match="idle"):
                handle.result()
            # items() fails just as loudly — a lost plan is not an empty result.
            with pytest.raises(QueryTimeout, match="idle"):
                list(handle.items())
            # ...and so does result iteration: the three waiting surfaces
            # share one error contract.
            with pytest.raises(QueryTimeout, match="idle"):
                list(handle)

    def test_partial_result_on_crashed_seller(self, transport):
        with small_cluster(transport) as cluster:
            cluster.session("seller2:9020").crash()
            client = cluster.session("client:9020")
            handle = (
                client.query()
                .area(portland_area(cluster))
                .where("price < 10")
                .expecting(2)
                .submit()
            )
            # The plan reroutes around the dead seller and degrades: the
            # network idles with a partial answer, which result() returns
            # (flagged) rather than discarding.
            result = handle.result(timeout=120_000)
            assert result.partial
            assert {item.child_text("title") for item in result.items} == {"Abbey Road"}
            assert handle.partial_results() == [result]
            assert not handle.done()  # no *complete* result ever arrived

    def test_streaming_iteration(self, transport):
        with small_cluster(transport) as cluster:
            client = cluster.session("client:9020")
            handle = (
                client.query()
                .area(portland_area(cluster))
                .where("price < 10")
                .expecting(2)
                .submit()
            )
            seen = list(handle)
            assert seen  # at least the final result streams out
            assert not seen[-1].partial
            assert all(result.partial for result in seen[:-1])

    def test_streaming_ends_on_idle_partial(self, transport):
        with small_cluster(transport) as cluster:
            cluster.session("seller2:9020").crash()
            client = cluster.session("client:9020")
            handle = (
                client.query()
                .area(portland_area(cluster))
                .where("price < 10")
                .submit()
            )
            seen = list(handle)
            assert seen and seen[-1].partial  # stream closed by idleness

    def test_results_timeout_matches_result_semantics(self, transport):
        """``results(timeout=...)`` raises QueryTimeout exactly like result()."""
        with small_cluster(transport) as cluster:
            client = cluster.session("client:9020")
            handle = (
                client.query()
                .area(portland_area(cluster))
                .where("price < 10")
                .submit()
            )
            with pytest.raises(QueryTimeout, match="simulated ms"):
                list(handle.results(timeout=0.5))
            # The clock only advanced to the deadline; resuming succeeds.
            seen = list(handle.results(timeout=60_000))
            assert seen and not seen[-1].partial

    def test_iteration_raises_peer_offline(self, transport):
        """Iterating with the issuer offline fails loudly on every surface."""
        with small_cluster(transport) as cluster:
            client = cluster.session("client:9020")
            handle = (
                client.query()
                .area(portland_area(cluster))
                .where("price < 10")
                .submit()
            )
            client.crash()
            with pytest.raises(PeerOffline):
                list(handle)
            with pytest.raises(PeerOffline):
                list(handle.items())
            with pytest.raises(PeerOffline):
                handle.result(timeout=60_000)

    def test_offline_peer_cannot_issue(self, transport):
        with small_cluster(transport) as cluster:
            client = cluster.session("client:9020")
            client.crash()
            with pytest.raises(PeerOffline):
                client.query().area(portland_area(cluster)).submit()

    def test_watchers_released_on_terminal_outcomes(self, transport):
        with small_cluster(transport) as cluster:
            client = cluster.session("client:9020")
            peer = client.peer
            # Final result: the peer releases the query's watcher list.
            done = (
                client.query()
                .area(portland_area(cluster))
                .where("price < 10")
                .submit()
            )
            assert peer._result_watchers
            done.result(timeout=60_000)
            assert not peer._result_watchers
            # Partial-only (idle) outcome: the handle unregisters itself.
            cluster.session("seller2:9020").crash()
            degraded = (
                client.query()
                .area(portland_area(cluster))
                .where("price < 10")
                .submit()
            )
            result = degraded.result(timeout=120_000)
            assert result.partial
            assert not peer._result_watchers
            # Waiting again re-registers transparently and still answers.
            assert degraded.result(timeout=120_000).partial

    def test_peer_offline_mid_query_raises(self, transport):
        with small_cluster(transport) as cluster:
            client = cluster.session("client:9020")
            handle = (
                client.query()
                .area(portland_area(cluster))
                .where("price < 10")
                .submit()
            )
            client.crash()  # goes offline before the answer can return
            with pytest.raises(PeerOffline):
                handle.result(timeout=120_000)
            # items() fails just as loudly — no clean-looking empty stream.
            with pytest.raises(PeerOffline):
                list(handle.items(timeout=120_000))


class TestDeprecationShims:
    def test_issue_query_still_works_but_warns(self, namespace):
        with small_cluster() as cluster:
            peer = cluster.session("client:9020").peer
            area = portland_area(cluster)
            plan = (
                PlanBuilder.urn(str(InterestAreaURN.for_area(area)))
                .select("price < 10")
                .display(peer.address)
            )
            with pytest.warns(DeprecationWarning, match="issue_query is deprecated"):
                mqp = peer.issue_query(plan, QueryPreferences(), expected_answers=2)
            cluster.run_until_idle()
            with pytest.warns(DeprecationWarning, match="result_for is deprecated"):
                result = peer.result_for(mqp.query_id)
            assert result is not None and result.count == 2

    def test_shim_equivalent_to_session_submit(self, namespace):
        # Same scenario issued both ways answers identically.
        with small_cluster() as first:
            client = first.session("client:9020")
            handle = (
                client.query()
                .area(portland_area(first))
                .where("price < 10")
                .labelled("shim-equiv")
                .submit()
            )
            new_titles = {
                item.child_text("title") for item in handle.result(timeout=60_000).items
            }
        with small_cluster() as second:
            peer = second.session("client:9020").peer
            area = portland_area(second)
            plan = (
                PlanBuilder.urn(str(InterestAreaURN.for_area(area)))
                .select("price < 10")
                .display(peer.address)
            )
            with pytest.warns(DeprecationWarning):
                mqp = peer.issue_query(plan, QueryPreferences(), query_id="shim-equiv")
            second.run_until_idle()
            old_titles = {
                item.child_text("title") for item in peer.results[mqp.query_id].items
            }
        assert new_titles == old_titles

    def test_register_with_raw_peer_warns(self, namespace):
        with small_cluster() as cluster:
            seller = cluster.session("seller1:9020")
            index_peer = cluster.session("index-or:9020").peer
            with pytest.warns(DeprecationWarning, match="raw QueryPeer"):
                seller.register(index_peer)
            # The supported spellings stay silent.
            seller.register(cluster.session("index-or:9020"))
            seller.register("index-or:9020")
            cluster.run_until_idle()

    def test_learn_about_with_raw_peer_warns(self, namespace):
        with small_cluster() as cluster:
            client = cluster.session("client:9020")
            seller_peer = cluster.session("seller1:9020").peer
            with pytest.warns(DeprecationWarning, match="raw QueryPeer"):
                client.learn_about(seller_peer)
            client.learn_about(cluster.session("seller2:9020"))
            client.learn_about(seller_peer.server_entry())


class TestSessionSurface:
    def test_publish_with_urn_registers_named_resource(self, namespace):
        with Cluster(namespace=namespace) as cluster:
            seller = cluster.base_server(
                "s:9020", namespace.area(["USA/OR/Portland", "Music/CDs"])
            )
            seller.publish("cds", [make_item("A", 5)], urn="urn:ForSale:Portland-CDs")
            assert seller.peer.catalog.lookup_named("urn:ForSale:Portland-CDs") is not None

    def test_announce_parses_textual_statement(self, namespace):
        with Cluster(namespace=namespace) as cluster:
            seller = cluster.base_server(
                "s:9020", namespace.area(["USA/OR/Portland", "Music/CDs"])
            )
            seller.announce(
                "base[(USA.OR.Portland,Music.CDs)]@s:9020 >= "
                "base[(USA.OR.Portland,Music.CDs)]@other:9020{15}"
            )
            assert seller.peer.statements

    def test_handle_reattaches_to_query_id(self, namespace):
        with small_cluster() as cluster:
            client = cluster.session("client:9020")
            submitted = (
                client.query()
                .area(portland_area(cluster))
                .where("price < 10")
                .labelled("reattach")
                .submit()
            )
            cluster.run_until_idle()
            # A second handle for the same id resolves from the recorded result.
            late = client.handle("reattach")
            assert late.done()
            assert late.result().count == submitted.result().count

    def test_query_builder_repr_and_session_repr(self, namespace):
        with Cluster(namespace=namespace) as cluster:
            session = cluster.client("c:9020")
            assert "c:9020" in repr(session)
            assert isinstance(session.query(), QueryBuilder)
            assert isinstance(
                session.handle("nothing-yet"), QueryHandle
            )
