"""Messages exchanged between simulated peers."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Message"]

_message_counter = itertools.count(1)


@dataclass
class Message:
    """A single network message.

    ``kind`` names the protocol step (``mqp``, ``register``, ``query``,
    ``result``, ...); ``payload`` is an arbitrary Python object (usually an
    XML string for MQPs, or small dataclasses for control traffic);
    ``size_bytes`` is what the latency model charges for the transfer.

    ``transfer`` and ``attempt`` are the reliable-delivery envelope
    (``flags.reliable_delivery``): a non-``None`` transfer id asks the
    receiver to acknowledge the delivery and to deduplicate retransmitted
    attempts of the same transfer.  Both stay at their defaults on every
    fire-and-forget message, so the flag-off wire behaviour is unchanged.
    """

    sender: str
    recipient: str
    kind: str
    payload: Any = None
    size_bytes: int = 256
    message_id: int = field(default_factory=lambda: next(_message_counter))
    sent_at: float = 0.0
    hop: int = 0
    transfer: str | None = None
    attempt: int = 0

    def __post_init__(self) -> None:
        self.size_bytes = max(1, int(self.size_bytes))

    def reply_to(self, kind: str, payload: Any = None, size_bytes: int = 256) -> "Message":
        """Build a response message addressed back to the sender."""
        return Message(
            sender=self.recipient,
            recipient=self.sender,
            kind=kind,
            payload=payload,
            size_bytes=size_bytes,
            hop=self.hop + 1,
        )

    def __repr__(self) -> str:
        return (
            f"Message(#{self.message_id} {self.kind!r} "
            f"{self.sender} -> {self.recipient}, {self.size_bytes}B)"
        )
