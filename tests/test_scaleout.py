"""Scale-out subsystem: topology generators, batched processing, the CLI."""

from __future__ import annotations

import json

import pytest

from repro.algebra import PlanBuilder
from repro.catalog import Catalog, CollectionRef, NamedResourceEntry
from repro.engine import EvaluationMemo, QueryEngine
from repro.errors import SimulationError
from repro.harness.cli import main
from repro.harness.scaleout import ScaleoutSpec, build_scaleout_scenario, run_scaleout
from repro.mqp import MQPProcessor, MutantQueryPlan
from repro.namespace import garage_sale_namespace
from repro.network import TOPOLOGY_KINDS, build_topology
from repro.xmlmodel import element, text_element


def _addresses(count: int) -> list[str]:
    return [f"peer{position:04d}:9020" for position in range(count)]


class TestTopologyGenerators:
    @pytest.mark.parametrize("kind", TOPOLOGY_KINDS)
    def test_connected_and_complete(self, kind):
        addresses = _addresses(120)
        topology = build_topology(kind, addresses, seed=7)
        assert topology.addresses == sorted(addresses)
        assert topology.is_connected()

    @pytest.mark.parametrize("kind", ["scale-free", "small-world", "random", "hierarchical"])
    def test_deterministic_per_seed(self, kind):
        addresses = _addresses(200)
        first = build_topology(kind, addresses, seed=7)
        second = build_topology(kind, addresses, seed=7)
        assert sorted(first.graph.edges) == sorted(second.graph.edges)

    @pytest.mark.parametrize("kind", ["scale-free", "small-world", "random"])
    def test_seed_changes_graph(self, kind):
        addresses = _addresses(200)
        first = build_topology(kind, addresses, seed=7)
        second = build_topology(kind, addresses, seed=8)
        assert sorted(first.graph.edges) != sorted(second.graph.edges)

    def test_scale_free_has_hubs(self):
        topology = build_topology("scale-free", _addresses(1000), seed=7)
        # Preferential attachment: the biggest hub dwarfs the mean degree.
        assert topology.max_degree() >= 5 * topology.average_degree()

    def test_hierarchical_tiers(self):
        addresses = _addresses(100)
        topology = build_topology("hierarchical", addresses, seed=7, core_size=4)
        # The core is fully meshed and carries the PoP/leaf attachments.
        for core_node in addresses[:4]:
            assert topology.degree(core_node) >= 3
        assert topology.is_connected()

    def test_thousand_peer_construction(self):
        topology = build_topology("scale-free", _addresses(1200), seed=3)
        assert topology.graph.number_of_nodes() == 1200
        assert topology.is_connected()

    def test_star_topology_center(self):
        addresses = _addresses(10)
        topology = build_topology("star", addresses)
        assert topology.degree(addresses[0]) == 9

    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError):
            build_topology("torus", _addresses(10))

    def test_summary_shape(self):
        summary = build_topology("small-world", _addresses(50), seed=1).summary()
        assert {"nodes", "edges", "average_degree", "max_degree", "connected"} <= set(summary)


def _make_item(title: str, price: float) -> "element":
    return element(
        "item",
        {"id": title},
        text_element("title", title),
        text_element("price", price),
        text_element("city", "USA/OR/Portland"),
        text_element("category", "Music/CDs"),
    )


@pytest.fixture()
def data_processor():
    namespace = garage_sale_namespace()
    items = [_make_item(f"cd{position}", 5.0 + position) for position in range(30)]
    catalog = Catalog("server")
    catalog.register_named_resource(
        NamedResourceEntry("urn:ForSale:Test", [CollectionRef("server:9020", "/items")])
    )
    return MQPProcessor("server:9020", catalog, namespace, collections={"/items": items})


def _documents(count: int) -> list[str]:
    return [
        MutantQueryPlan(
            PlanBuilder.urn("urn:ForSale:Test").select("price < 20").display("client:9020")
        ).serialize()
        for _ in range(count)
    ]


class TestBatchedProcessing:
    def test_batch_matches_sequential(self, data_processor):
        documents = _documents(6)
        sequential = [
            data_processor.process(MutantQueryPlan.deserialize(document))
            for document in documents
        ]
        batched = data_processor.process_batch(
            [MutantQueryPlan.deserialize(document) for document in documents]
        )
        assert len(batched) == 6
        for lone, grouped in zip(sequential, batched):
            assert lone.action == grouped.action
            assert lone.bound_urns == grouped.bound_urns
            assert lone.evaluated_subplans == grouped.evaluated_subplans
            assert len(lone.mqp.plan.result().children) == len(
                grouped.mqp.plan.result().children
            )

    def test_batch_amortizes_evaluation(self, data_processor):
        data_processor.process_batch(
            [MutantQueryPlan.deserialize(document) for document in _documents(8)]
        )
        # 8 identical plans, 1 evaluation, 7 memo hits.
        assert data_processor.eval_memo_hits == 7
        assert data_processor.batches_processed == 1

    def test_reused_context_counts_hit_deltas(self, data_processor):
        from repro.mqp import BatchContext

        context = BatchContext()
        data_processor.process_batch(
            [MutantQueryPlan.deserialize(d) for d in _documents(8)], context=context
        )
        data_processor.process_batch(
            [MutantQueryPlan.deserialize(d) for d in _documents(8)], context=context
        )
        # 7 hits in the first batch, all 8 in the second — not 7 + (7+8).
        assert data_processor.eval_memo_hits == 15

    def test_category_path_rejects_bare_string(self):
        from repro.errors import NamespaceError
        from repro.namespace import CategoryPath

        with pytest.raises(NamespaceError):
            CategoryPath("usa")

    def test_batched_results_serialize_identically(self, data_processor):
        documents = _documents(2)
        solo = data_processor.process(MutantQueryPlan.deserialize(documents[0]))
        [grouped] = data_processor.process_batch([MutantQueryPlan.deserialize(documents[1])])
        solo_xml = solo.mqp.plan.result()
        grouped_xml = grouped.mqp.plan.result()
        assert len(solo_xml.children) == len(grouped_xml.children)


class TestEvaluationMemo:
    def test_memo_replays_items_for_identical_plans(self):
        items = [_make_item(f"cd{position}", 10.0) for position in range(5)]
        memo = EvaluationMemo()
        plan = PlanBuilder.data(items, name="cds").select("price < 20").build()
        engine = QueryEngine()
        key = memo.key_for(plan)
        assert memo.lookup(key) is None
        memo.store(key, engine.evaluate(plan))
        replayed = memo.lookup(memo.key_for(plan.copy()))
        assert replayed is not None
        assert [item.get("id") for item in replayed] == [f"cd{p}" for p in range(5)]
        assert memo.hits == 1 and memo.misses == 1
        assert memo.hit_rate == 0.5

    def test_memo_key_is_structural(self):
        first = PlanBuilder.urn("urn:X").select("price < 9").build()
        second = PlanBuilder.urn("urn:X").select("price < 9").build()
        third = PlanBuilder.urn("urn:X").select("price < 10").build()
        assert EvaluationMemo.key_for(first) == EvaluationMemo.key_for(second)
        assert EvaluationMemo.key_for(first) != EvaluationMemo.key_for(third)


class TestScaleoutScenarios:
    def test_spec_validation(self):
        with pytest.raises(SimulationError):
            ScaleoutSpec(topology="torus").validate()
        with pytest.raises(SimulationError):
            ScaleoutSpec(workload="weather").validate()
        with pytest.raises(SimulationError):
            ScaleoutSpec(churn="armageddon").validate()
        with pytest.raises(SimulationError):
            ScaleoutSpec(peers=2).validate()

    def test_build_populates_all_roles(self):
        spec = ScaleoutSpec(
            name="t", topology="small-world", peers=30, workload="garage-sale",
            churn="none", queries=2,
        )
        scenario = build_scaleout_scenario(spec)
        assert len(scenario.data_peers) == 30
        assert scenario.index_servers and scenario.meta_index is not None
        assert scenario.total_peers >= 32

    def test_run_is_deterministic(self):
        spec = ScaleoutSpec(
            name="t", topology="scale-free", peers=30, workload="garage-sale",
            churn="light", queries=3, seed=9,
        )
        assert run_scaleout(spec) == run_scaleout(spec)

    def test_gene_expression_population(self):
        spec = ScaleoutSpec(
            name="t", topology="hierarchical", peers=20, workload="gene-expression",
            churn="none", queries=2,
        )
        report = run_scaleout(spec)
        assert report["population"]["data_peers"] == 20
        assert report["queries"][0]["expected"] > 0

    @pytest.mark.parametrize("routing", ["gnutella", "napster", "routing-index"])
    def test_baseline_strategies_run(self, routing):
        spec = ScaleoutSpec(
            name="t", topology="random", peers=12, workload="garage-sale",
            churn="none", routing=routing, queries=2,
        )
        report = run_scaleout(spec)
        assert len(report["queries"]) == 2
        assert "processing" not in report  # MQP-only section


class TestCLI:
    def test_smoke_run_writes_report(self, tmp_path, capsys):
        output = tmp_path / "report.json"
        code = main([
            "--topology", "small-world", "--peers", "24", "--workload", "garage-sale",
            "--churn", "light", "--queries", "2", "--output", str(output),
        ])
        assert code == 0
        report = json.loads(output.read_text())
        assert report["scenario"]["peers"] == 24
        assert report["scenario"]["churn"] == "light"
        assert len(report["queries"]) == 2
        printed = capsys.readouterr().out
        assert "traffic" in printed

    def test_cli_is_deterministic(self, tmp_path):
        outputs = []
        for run in range(2):
            output = tmp_path / f"r{run}.json"
            assert main([
                "--peers", "20", "--workload", "garage-sale", "--topology", "random",
                "--queries", "2", "--output", str(output),
            ]) == 0
            outputs.append(output.read_bytes())
        assert outputs[0] == outputs[1]

    def test_named_scenario_and_list(self, tmp_path, capsys):
        assert main(["--list"]) == 0
        assert "thousand-peers" in capsys.readouterr().out
        output = tmp_path / "smoke.json"
        assert main(["--scenario", "smoke", "--peers", "20", "--output", str(output)]) == 0
        report = json.loads(output.read_text())
        assert report["scenario"]["name"] == "smoke"
        assert report["scenario"]["peers"] == 20  # override applied
