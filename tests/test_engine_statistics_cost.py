"""Tests for collection statistics and the cost model."""

import pytest

from repro.algebra import PlanBuilder, URNRef
from repro.engine import CollectionStatistics, CostModel, collect_statistics
from tests.conftest import make_item


@pytest.fixture()
def items():
    return [make_item(f"cd-{index}", price=5 + index, seller=f"s{index % 2}") for index in range(10)]


class TestStatistics:
    def test_cardinality_and_bytes(self, items):
        stats = collect_statistics(items)
        assert stats.cardinality == 10
        assert stats.bytes > 0

    def test_column_statistics(self, items):
        stats = collect_statistics(items, paths=["title", "seller"])
        assert stats.column("title").distinct == 10
        assert stats.column("seller").distinct == 2
        assert stats.column("seller").selectivity == pytest.approx(0.5)
        assert stats.column("missing") is None

    def test_histogram_frequencies(self, items):
        stats = collect_statistics(items, paths=["seller"])
        column = stats.column("seller")
        assert column.frequency("s0") == 5
        assert column.frequency("unknown") == 0

    def test_annotation_roundtrip(self, items):
        stats = collect_statistics(items, paths=["seller"])
        annotations = stats.to_annotations()
        restored = CollectionStatistics.from_annotations(annotations)
        assert restored.cardinality == stats.cardinality
        assert restored.bytes == stats.bytes
        assert restored.column("seller").distinct == 2

    def test_from_annotations_absent(self):
        assert CollectionStatistics.from_annotations({}) is None

    def test_empty_collection(self):
        stats = collect_statistics([], paths=["title"])
        assert stats.cardinality == 0
        assert stats.column("title").selectivity == 0.0


class TestCostModel:
    def test_select_reduces_cardinality(self, items):
        model = CostModel()
        base = PlanBuilder.data(items).build()
        selected = PlanBuilder.data(items).select("price < 10").build()
        assert model.estimate(selected).cardinality < model.estimate(base).cardinality

    def test_join_estimate_uses_selectivity(self, items):
        model = CostModel(join_selectivity=0.1)
        plan = PlanBuilder.data(items).join(PlanBuilder.data(items), on=("title", "title")).build()
        estimate = model.estimate(plan)
        assert estimate.cardinality == pytest.approx(10 * 10 * 0.1)

    def test_unknown_leaf_uses_annotations_when_present(self):
        model = CostModel()
        leaf = URNRef("urn:ForSale:Portland-CDs")
        default_estimate = model.estimate(leaf)
        annotated = URNRef("urn:ForSale:Portland-CDs")
        stats = {"stats.cardinality": "5000", "stats.bytes": "1000000"}
        for key, value in stats.items():
            annotated.annotate(key, value)
        annotated_estimate = model.estimate(annotated)
        assert annotated_estimate.cardinality > default_estimate.cardinality

    def test_topn_caps_cardinality(self, items):
        model = CostModel()
        plan = PlanBuilder.data(items).top_n(3, "price").build()
        assert model.estimate(plan).cardinality == pytest.approx(3)

    def test_aggregate_produces_single_row(self, items):
        model = CostModel()
        plan = PlanBuilder.data(items).count().build()
        assert model.estimate(plan).cardinality == pytest.approx(1.0)

    def test_reduces_plan_size_for_selective_operator(self, items):
        model = CostModel()
        shrinking = PlanBuilder.data(items).select("price < 6").build()
        assert model.reduces_plan_size(shrinking)

    def test_exploding_join_flagged_for_deferment(self, items):
        model = CostModel(join_selectivity=1.0)
        exploding = PlanBuilder.data(items).join(PlanBuilder.data(items), on=("seller", "seller")).build()
        assert not model.reduces_plan_size(exploding)

    def test_cost_estimates_are_additive(self, items):
        model = CostModel()
        inner = PlanBuilder.data(items).select("price < 10")
        outer = inner.project([("title", "t")])
        assert model.estimate(outer.build()).cost >= model.estimate(inner.build()).cost
