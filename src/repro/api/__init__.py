"""The supported client API: clusters, sessions, fluent queries, futures.

This package is the public surface of the reproduction — the one import a
program needs to stand up a peer-to-peer network, publish data into its
distributed catalog, and ask questions with mutant query plans:

    from repro.api import Cluster

    with Cluster(namespace=ns, transport="sim") as cluster:
        seller = cluster.base_server("seller:9020", area)
        seller.publish("cds", items)
        cluster.meta_index("meta:9020")
        researcher = cluster.client("client:9020")
        cluster.connect()

        handle = researcher.query().area(area).where("price < 10").submit()
        for item in handle.result(timeout=5_000).items:
            ...

Four classes carry the model:

* :class:`Cluster` — context-managed owner of the network, its transport
  backend (``sim`` or ``aio``), topology wiring, and churn schedules;
* :class:`Session` — a per-peer handle carrying the data-lifecycle verbs
  (``publish`` / ``update`` / ``retract`` / ``announce`` / ``register``)
  and the query entry points (``query(...)``, ``subscribe(...)``);
* :class:`QueryBuilder` — fluent construction compiling to the exact
  :class:`~repro.algebra.plan.QueryPlan` trees the MQP machinery consumes
  (with a raw-plan escape hatch);
* :class:`QueryHandle` — a future-like result: ``result(timeout=...)``,
  ``result(deadline=...)`` (graceful degradation to a
  :class:`DegradedResult` carrying the best partial answer, a completeness
  annotation, and per-hop delivery-failure provenance),
  ``partial_results()``, ``done()``, iteration over streamed partials,
  per-item streaming via ``items()`` (chunk-by-chunk when
  ``repro.perf.flags.streaming_results`` is on), and ``cancel()`` —
  raising :class:`~repro.errors.QueryTimeout` /
  :class:`~repro.errors.PeerOffline` /
  :class:`~repro.errors.QueryCancelled` instead of ever returning ``None``.

With ``repro.perf.flags.continuous_queries`` on, a query can *stand*
instead of answering once: ``session.subscribe(...)`` (or the
``subscribe()`` terminals on :class:`QueryBuilder` / :class:`QueryHandle`)
returns a :class:`Subscription` whose ``deltas()`` feed the mutation verbs
``Session.update`` / ``Session.retract`` drive — see
``docs/subscriptions.md``.

Everything here is transport-agnostic: the same program produces the same
logical outcome whether messages travel by reference on the deterministic
simulator or over real localhost TCP sockets.  See ``docs/api.md``.
"""

from ..errors import APIError, PeerOffline, QueryCancelled, QueryTimeout
from ..mqp import QueryPreferences
from ..peers import DeltaRecord, QueryResult
from .cluster import Cluster
from .handle import DegradedResult, DeliveryFailure, QueryHandle
from .query import QueryBuilder
from .session import Session
from .subscription import AuthorityConflict, Subscription

__all__ = [
    "Cluster",
    "Session",
    "QueryBuilder",
    "QueryHandle",
    "QueryResult",
    "DegradedResult",
    "DeliveryFailure",
    "Subscription",
    "DeltaRecord",
    "AuthorityConflict",
    "QueryPreferences",
    "APIError",
    "QueryTimeout",
    "PeerOffline",
    "QueryCancelled",
]
