"""Query workload generation over a multi-hierarchic namespace.

Queries in the routing experiments are interest areas (optionally with a
price predicate).  The generator draws query cells with the same Zipf-skewed
popularity the data generator uses — the locality assumption of §3.1: "If
this address is in USA/OR/Portland, most prospective buyers will come from
Portland, or locations close to Portland in the location hierarchy."
"""

from __future__ import annotations

from dataclasses import dataclass

from ..namespace import CategoryPath, InterestArea, InterestCell, MultiHierarchicNamespace
from .distributions import make_rng, zipf_choice

__all__ = ["QuerySpec", "QueryWorkload"]


@dataclass(frozen=True)
class QuerySpec:
    """One generated query: its interest area and optional price ceiling."""

    area: InterestArea
    max_price: float | None = None

    def predicate_text(self) -> str | None:
        """The textual selection predicate, if the query has one."""
        if self.max_price is None:
            return None
        return f"price < {self.max_price:g}"


class QueryWorkload:
    """Generates interest-area queries with configurable granularity and skew."""

    def __init__(
        self,
        namespace: MultiHierarchicNamespace,
        location_level: int = 3,
        category_level: int = 1,
        location_skew: float = 1.1,
        category_skew: float = 0.9,
        price_ceiling_range: tuple[float, float] | None = (10.0, 200.0),
        seed: int = 99,
    ) -> None:
        self.namespace = namespace
        self.location_skew = location_skew
        self.category_skew = category_skew
        self.price_ceiling_range = price_ceiling_range
        self._rng = make_rng(seed)
        self._locations = self._categories_at(namespace.dimensions[0], location_level)
        self._categories = self._categories_at(namespace.dimensions[1], category_level)

    @staticmethod
    def _categories_at(hierarchy, level: int) -> list[CategoryPath]:
        exact = [category for category in hierarchy.categories() if category.depth == level]
        if exact:
            return exact
        return hierarchy.leaves()

    # -- generation ---------------------------------------------------------------------------- #

    def next_query(self) -> QuerySpec:
        """Draw one query."""
        location = zipf_choice(self._rng, self._locations, self.location_skew)
        category = zipf_choice(self._rng, self._categories, self.category_skew)
        area = InterestArea([InterestCell((location, category))])
        max_price = None
        if self.price_ceiling_range is not None:
            low, high = self.price_ceiling_range
            max_price = round(float(self._rng.uniform(low, high)), 2)
        return QuerySpec(area, max_price)

    def batch(self, count: int) -> list[QuerySpec]:
        """Draw ``count`` queries."""
        return [self.next_query() for _ in range(count)]
