"""The transport abstraction: who moves messages, and on whose clock.

Every distributed behaviour in the reproduction is expressed as peers
exchanging :class:`~repro.network.message.Message` objects through a
:class:`~repro.network.network.Network`.  The *network* owns policy —
membership, latency charging, metrics, drop/notice semantics — while the
*transport* owns mechanics: scheduling the delivery callback and (for real
backends) physically moving the bytes.

Two backends ship behind this interface:

* :class:`~repro.network.transport.sim.SimTransport` — the seed's
  deterministic discrete-event simulator, unchanged semantics;
* :class:`~repro.network.transport.aio.AsyncioTransport` — each peer is
  served by an asyncio task speaking length-prefixed wire frames over real
  TCP sockets on localhost, with connection pooling and bounded per-peer
  inboxes (backpressure).

Both are driven through the same logical clock (a
:class:`~repro.network.simulator.Simulator`), which is what keeps scenario
reports byte-identical across backends: simulated time is the coordination
authority, the wire is the execution substrate.  See ``docs/transport.md``
for the full model and how to add a backend.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable

from ...errors import SimulationError
from ..simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..message import Message
    from ..network import Network

__all__ = ["Transport", "TransportError", "TRANSPORT_KINDS", "build_transport"]

TRANSPORT_KINDS = ("sim", "aio")
"""Backends selectable from the harness and the experiment CLI."""


class TransportError(SimulationError):
    """A transport backend failed to move or deliver a frame."""


class Transport(ABC):
    """Delivery mechanics behind a :class:`Network`.

    Subclasses own a :class:`Simulator` instance (``self.simulator``) that
    provides the logical clock and the schedule for everything that is not
    a message — timers, churn events, batch-window flushes.  The network
    reaches the clock through :attr:`simulator`, so peer code never needs
    to know which backend is running.
    """

    name: str = "abstract"
    simulator: Simulator

    def __init__(self) -> None:
        self.simulator = Simulator()
        self._network: "Network | None" = None
        self._clock = None
        self._closed = False

    # -- lifecycle ------------------------------------------------------- #

    def bind(self, network: "Network") -> None:
        """Attach the owning network (called from ``Network.__init__``)."""
        if self._network is not None and self._network is not network:
            raise SimulationError(f"{self.name} transport is already bound to a network")
        self._network = network

    def attach_clock(self, clock) -> None:
        """Attach a hybrid logical clock (multicore runs only).

        Wire backends stamp every outgoing frame with ``clock.tick(now)``
        and merge received stamps with ``clock.observe(stamp, now)``; the
        clock also rides the simulator so local events advance it.  The
        default single-process configuration never calls this, and the
        ``sim`` backend ignores stamps entirely — frames there never leave
        the process.
        """
        self._clock = clock
        self.simulator.clock = clock

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run; the backend will move no more frames.

        The network consults this during teardown — work that would only
        ever run on a future drive of a closed backend (for example the
        ``peer-unreachable`` notice ``Network._drop`` schedules) is skipped
        instead of being stranded on the clock.
        """
        return self._closed

    def close(self) -> None:
        """Release backend resources (sockets, tasks, loops). Idempotent."""
        self._closed = True

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- delivery -------------------------------------------------------- #

    @abstractmethod
    def send(self, message: "Message", delay: float) -> None:
        """Arrange for ``message`` to reach ``Network._deliver`` after ``delay``.

        The network has already charged metrics and computed the modelled
        delay; the transport decides *how* the payload travels in the
        meantime.  Delivery must preserve the logical (time, sequence)
        order of the shared clock.
        """

    # -- execution ------------------------------------------------------- #

    @abstractmethod
    def run(
        self,
        until: float | None = None,
        stop: Callable[[], bool] | None = None,
    ) -> None:
        """Run scheduled work until idle or until the given simulated time.

        ``stop`` is an optional condition checked after every executed
        logical event; the run returns as soon as it reports true.  It is
        the lifecycle hook :class:`repro.api.QueryHandle` uses to wait for
        a result event-driven on the shared clock, identically on every
        backend.
        """

    def run_until_idle(self) -> None:
        """Run until no logical events remain."""
        self.run(until=None)

    # -- churn hooks ----------------------------------------------------- #

    def peer_offline(self, address: str, graceful: bool = False) -> None:
        """A peer departed.  ``graceful`` distinguishes leave from crash.

        Real backends recycle the peer's connections here; the simulator
        backend has nothing to tear down.  Either way the *logical* drop
        semantics live in the network, so backends stay equivalent.
        """

    def peer_online(self, address: str) -> None:
        """A peer rejoined after an outage (connections reopen lazily)."""

    # -- introspection --------------------------------------------------- #

    def stats(self) -> dict[str, int]:
        """Backend counters (frames, bytes, reconnects, ...); empty for sim."""
        return {}

    def describe(self) -> str:
        return f"{type(self).__name__}(now={self.simulator.now:.1f}ms)"


def build_transport(kind: str) -> Transport:
    """Instantiate a transport backend by name (``sim`` or ``aio``)."""
    if kind == "sim":
        from .sim import SimTransport

        return SimTransport()
    if kind == "aio":
        from .aio import AsyncioTransport

        return AsyncioTransport()
    raise SimulationError(
        f"unknown transport {kind!r}: use one of {TRANSPORT_KINDS}"
    )
