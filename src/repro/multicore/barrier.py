"""A reduction barrier: N parties enter with a payload, all leave with one decision.

This is the coordination primitive that replaces the single authoritative
simulator: at every window boundary each worker enters the barrier with its
local state (relay counts, next event time), the last entrant runs the
reducer over all payloads, and every party leaves with the reducer's
decision — run another window, drain in-flight relays, or stop.

The service is deliberately transport-agnostic: the launcher fronts it with
one thread per worker control connection, and the unit tests drive it with
plain threads.  Crash handling is first-class: :meth:`break_barrier` (called
when a worker's connection dies) wakes every parked party with
:class:`BarrierBroken` instead of leaving them blocked forever — the
regression tests park threads on the barrier and kill a participant.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from .errors import MulticoreError

__all__ = ["BarrierBroken", "BarrierService"]


class BarrierBroken(MulticoreError):
    """The barrier was torn down while parties were parked at it."""


class BarrierService:
    """A cyclic rendezvous of ``parties`` participants with a reduction.

    ``reducer`` receives ``{party: payload}`` for one complete round and
    returns the decision every participant's :meth:`enter` call reports.
    Rounds are numbered; a late or duplicate entry for the same round is a
    protocol error (it means two threads claim the same worker id).
    """

    def __init__(
        self,
        parties: int,
        reducer: Callable[[dict[int, Any]], Any],
        timeout_s: float | None = 120.0,
    ) -> None:
        if parties < 1:
            raise MulticoreError("a barrier needs at least one party")
        self.parties = parties
        self.reducer = reducer
        self.timeout_s = timeout_s
        self._cond = threading.Condition()
        self._entered: dict[int, Any] = {}
        self._round = 0
        self._decision: Any = None
        self._decision_round = -1
        self._broken: str | None = None
        self.rounds_completed = 0

    def enter(self, party: int, payload: Any) -> Any:
        """Park until the round completes; return the reducer's decision.

        Raises :class:`BarrierBroken` if the barrier is (or becomes) broken
        while parked, and :class:`MulticoreError` on a duplicate entry or
        when ``timeout_s`` expires — a worker that never shows up must not
        hang its peers forever.
        """
        with self._cond:
            self._check_broken()
            if party in self._entered:
                raise MulticoreError(
                    f"party {party} entered barrier round {self._round} twice"
                )
            self._entered[party] = payload
            my_round = self._round
            if len(self._entered) == self.parties:
                # Last one in runs the reduction and releases the round.
                try:
                    self._decision = self.reducer(dict(self._entered))
                except Exception as error:
                    self._broken = f"barrier reducer failed: {error}"
                    self._cond.notify_all()
                    raise BarrierBroken(self._broken) from error
                self._decision_round = my_round
                self._round += 1
                self._entered.clear()
                self.rounds_completed += 1
                self._cond.notify_all()
                return self._decision
            released = self._cond.wait_for(
                lambda: self._broken is not None or self._decision_round >= my_round,
                timeout=self.timeout_s,
            )
            self._check_broken()
            if not released:
                self._broken = (
                    f"barrier round {my_round} timed out after {self.timeout_s}s "
                    f"({self.parties - len(self._entered)} parties missing)"
                )
                self._cond.notify_all()
                raise BarrierBroken(self._broken)
            return self._decision

    def break_barrier(self, reason: str) -> None:
        """Tear the barrier down: every parked (and future) entry raises."""
        with self._cond:
            if self._broken is None:
                self._broken = reason
            self._cond.notify_all()

    @property
    def broken(self) -> str | None:
        """The break reason, if the barrier has been torn down."""
        with self._cond:
            return self._broken

    def _check_broken(self) -> None:
        if self._broken is not None:
            raise BarrierBroken(self._broken)
