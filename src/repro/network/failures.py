"""Failure injection: peers going offline and (optionally) coming back.

Fault tolerance is one of the paper's headline motivations for the P2P
model — "failure or unavailability of a single server ... does not disable
the system".  The :class:`FailureInjector` schedules crash and recovery
events on the shared simulator so experiments can measure completeness and
latency under churn.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .network import Network

__all__ = ["FailureEvent", "FailureInjector"]


@dataclass(frozen=True)
class FailureEvent:
    """A scheduled crash (and optional recovery) of one peer."""

    address: str
    fail_at: float
    recover_at: float | None = None


@dataclass
class FailureInjector:
    """Schedules failures on a network."""

    network: Network
    events: list[FailureEvent] = field(default_factory=list)

    def schedule(self, address: str, fail_at: float, recover_at: float | None = None) -> FailureEvent:
        """Take ``address`` offline at ``fail_at`` (and back online at ``recover_at``)."""
        event = FailureEvent(address, fail_at, recover_at)
        self.events.append(event)
        node = self.network.node(address)
        self.network.simulator.schedule_at(fail_at, node.go_offline)
        if recover_at is not None:
            if recover_at <= fail_at:
                raise ValueError("recovery must happen after the failure")
            self.network.simulator.schedule_at(recover_at, node.go_online)
        return event

    def schedule_random(
        self,
        addresses: list[str],
        failure_fraction: float,
        fail_window_ms: tuple[float, float],
        outage_ms: float | None = None,
        seed: int = 13,
    ) -> list[FailureEvent]:
        """Fail a random subset of ``addresses`` within a time window.

        ``outage_ms`` of ``None`` means the peers never come back.
        """
        rng = np.random.default_rng(seed)
        count = int(round(len(addresses) * failure_fraction))
        chosen = sorted(rng.choice(addresses, size=count, replace=False)) if count else []
        scheduled = []
        for address in chosen:
            fail_at = float(rng.uniform(*fail_window_ms))
            recover_at = fail_at + outage_ms if outage_ms is not None else None
            scheduled.append(self.schedule(address, fail_at, recover_at))
        return scheduled

    def failed_addresses(self) -> list[str]:
        """Addresses with at least one scheduled failure."""
        return sorted({event.address for event in self.events})
