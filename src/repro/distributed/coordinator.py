"""Traditional coordinator-based distributed query execution (paper §2, §5.2).

"Traditional distributed query processing depends on coordinators, servers
that must know all about data replication and statistics, to optimize a
query."  This baseline implements that model over the same simulated
network the MQP peers use:

* every base server registers its collections (with statistics) at the
  coordinator, giving it the global catalog MQPs deliberately avoid;
* a client sends its whole query to the coordinator;
* the coordinator decomposes the plan, pushes selections to the owning
  servers as sub-queries, collects all partial results centrally, finishes
  the join/aggregation work locally, and returns the answer to the client.

The comparison benchmark measures messages, bytes moved, and completion
time against MQP execution ([PM02a]'s preliminary comparison), and the
failure benchmark shows the coordinator as the single point whose loss
stalls every query.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..algebra import QueryPlan
from ..algebra.operators import PlanNode, Select, URLRef
from ..algebra.serialization import serialize_plan
from ..engine import QueryEngine
from ..network import Message, NetworkNode
from ..xmlmodel import XMLElement, serialize_xml

__all__ = ["CoordinatorServer", "SubordinateServer", "CoordinatorClient"]

_query_counter = itertools.count(1)


@dataclass
class _SubQuery:
    """A selection (or bare scan) pushed down to one subordinate."""

    query_id: str
    url: str
    path: str | None
    predicate_text: str | None


@dataclass
class _PendingQuery:
    """Coordinator-side bookkeeping for one in-flight query."""

    query_id: str
    client: str
    plan: QueryPlan
    outstanding: int = 0
    partials: dict[int, list[XMLElement]] = field(default_factory=dict)
    leaf_order: dict[int, PlanNode] = field(default_factory=dict)


class SubordinateServer(NetworkNode):
    """A base server in the coordinator model: stores data, answers sub-queries."""

    def __init__(self, address: str) -> None:
        super().__init__(address)
        self.collections: dict[str, list[XMLElement]] = {}

    def add_collection(self, path: str, items: list[XMLElement]) -> None:
        """Store a named collection."""
        key = path if path.startswith("/") else f"/{path}"
        self.collections[key] = list(items)

    def handle_message(self, message: Message) -> None:
        if message.kind != "subquery":
            return
        subquery: _SubQuery
        leaf_id, subquery = message.payload
        items = self._evaluate(subquery)
        size = sum(len(serialize_xml(item).encode()) for item in items) + 64
        trace = self.network.metrics.trace(subquery.query_id)  # type: ignore[union-attr]
        trace.visited.append(self.address)
        sent = self.send(message.sender, "subresult", (subquery.query_id, leaf_id, items), size_bytes=size)
        trace.messages += 1
        trace.bytes += sent.size_bytes

    def _evaluate(self, subquery: _SubQuery) -> list[XMLElement]:
        if subquery.path is not None:
            items = list(self.collections.get(subquery.path, []))
        else:
            items = [item for collection in self.collections.values() for item in collection]
        if subquery.predicate_text:
            from ..algebra.expressions import parse_predicate

            predicate = parse_predicate(subquery.predicate_text)
            items = [item for item in items if predicate.matches(item)]
        return [item.copy() for item in items]


class CoordinatorServer(NetworkNode):
    """The omniscient coordinator."""

    def __init__(self, address: str) -> None:
        super().__init__(address)
        self.pending: dict[str, _PendingQuery] = {}
        self.queries_completed = 0

    def handle_message(self, message: Message) -> None:
        if message.kind == "coord-query":
            self._handle_query(message)
        elif message.kind == "subresult":
            self._handle_subresult(message)

    # -- decomposition --------------------------------------------------------------- #

    def _handle_query(self, message: Message) -> None:
        query_id, plan_document = message.payload
        from ..algebra.serialization import parse_plan

        plan = parse_plan(plan_document)
        pending = _PendingQuery(query_id, message.sender, plan)
        self.pending[query_id] = pending
        trace = self.network.metrics.trace(query_id)  # type: ignore[union-attr]
        trace.visited.append(self.address)

        dispatched = self._dispatch_leaves(pending)
        if dispatched == 0:
            self._finish(pending)

    def _dispatch_leaves(self, pending: _PendingQuery) -> int:
        """Push every remote leaf (with any selection directly above it) down."""
        dispatched = 0
        for node in list(pending.plan.iter_nodes()):
            leaf, predicate_text = self._pushable_unit(pending.plan, node)
            if leaf is None:
                continue
            leaf_id = id(node)
            pending.leaf_order[leaf_id] = node
            subquery = _SubQuery(pending.query_id, leaf.url, leaf.path, predicate_text)
            server = leaf.url.removeprefix("http://")
            sent = self.send(server, "subquery", (leaf_id, subquery), size_bytes=240)
            trace = self.network.metrics.trace(pending.query_id)  # type: ignore[union-attr]
            trace.messages += 1
            trace.bytes += sent.size_bytes
            pending.outstanding += 1
            dispatched += 1
        return dispatched

    @staticmethod
    def _pushable_unit(plan: QueryPlan, node: PlanNode) -> tuple[URLRef | None, str | None]:
        """Return (leaf, predicate) when ``node`` is a URL leaf or Select-over-URL."""
        if isinstance(node, URLRef):
            parent = plan.parent_of(node)
            if isinstance(parent, Select):
                return None, None  # handled when we visit the Select itself
            return node, None
        if isinstance(node, Select) and isinstance(node.child, URLRef):
            return node.child, node.predicate.to_text()
        return None, None

    # -- collection & completion --------------------------------------------------------- #

    def _handle_subresult(self, message: Message) -> None:
        query_id, leaf_id, items = message.payload
        pending = self.pending.get(query_id)
        if pending is None:
            return
        pending.partials[leaf_id] = items
        pending.outstanding -= 1
        if pending.outstanding <= 0:
            self._finish(pending)

    def _finish(self, pending: _PendingQuery) -> None:
        # Substitute the collected partial results and evaluate the remainder here.
        for leaf_id, node in pending.leaf_order.items():
            items = pending.partials.get(leaf_id, [])
            pending.plan.substitute_result(node, items)
        engine = QueryEngine()
        items = engine.materialize(pending.plan)
        document = serialize_xml(
            XMLElement("result", {"query-id": pending.query_id}, [item.copy() for item in items])
        )
        trace = self.network.metrics.trace(pending.query_id)  # type: ignore[union-attr]
        sent = self.send(pending.client, "coord-result", (pending.query_id, document), size_bytes=len(document))
        trace.messages += 1
        trace.bytes += sent.size_bytes
        self.queries_completed += 1
        del self.pending[pending.query_id]


class CoordinatorClient(NetworkNode):
    """A client of the coordinator model."""

    def __init__(self, address: str, coordinator: str) -> None:
        super().__init__(address)
        self.coordinator = coordinator
        self.results: dict[str, list[XMLElement]] = {}

    def issue_query(self, plan: QueryPlan, query_id: str | None = None) -> str:
        """Ship the whole plan to the coordinator."""
        query_id = query_id or f"cq{next(_query_counter)}"
        document = serialize_plan(plan)
        trace = self.network.metrics.trace(query_id)  # type: ignore[union-attr]
        trace.issued_at = self.now
        trace.visited.append(self.address)
        sent = self.send(self.coordinator, "coord-query", (query_id, document), size_bytes=len(document))
        trace.messages += 1
        trace.bytes += sent.size_bytes
        return query_id

    def results_for(self, query_id: str) -> list[XMLElement]:
        """Result items received for a query."""
        return self.results.get(query_id, [])

    def handle_message(self, message: Message) -> None:
        if message.kind != "coord-result":
            return
        query_id, document = message.payload
        from ..xmlmodel import parse_xml

        parsed = parse_xml(document)
        self.results[query_id] = list(parsed.children)
        trace = self.network.metrics.trace(query_id)  # type: ignore[union-attr]
        trace.completed_at = self.now
        trace.answers = len(parsed.children)
