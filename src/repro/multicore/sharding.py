"""Deterministic peer-to-worker assignment.

Every worker computes the same assignment from the same spec — the
``shard-map`` handshake only has to exchange relay ports, never ownership.
Data peers are split into contiguous shards in population order (the
population generators are seeded, so the order is identical in every
process), and the strategy's infrastructure — the client, the meta-index,
the index servers — lives on worker 0, which also issues the query
schedule.
"""

from __future__ import annotations

from ..errors import SimulationError

__all__ = ["shard_assignment", "owner_of"]


def shard_assignment(addresses: list[str], workers: int) -> dict[str, int]:
    """Map each data-peer address to its owning worker (contiguous shards).

    The split follows the usual balanced-partition rule: the first
    ``len(addresses) % workers`` shards get one extra peer, so shard sizes
    never differ by more than one.
    """
    if workers < 1:
        raise SimulationError("shard_assignment needs at least one worker")
    count = len(addresses)
    base, extra = divmod(count, workers)
    assignment: dict[str, int] = {}
    position = 0
    for worker in range(workers):
        size = base + (1 if worker < extra else 0)
        for address in addresses[position : position + size]:
            assignment[address] = worker
        position += size
    return assignment


def owner_of(assignment: dict[str, int], address: str) -> int:
    """The worker owning ``address``; unassigned (infrastructure) is worker 0."""
    return assignment.get(address, 0)
