"""Base class for simulated peers."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..errors import SimulationError
from .message import Message

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from .network import Network
    from .simulator import Event

__all__ = ["NetworkNode"]


class NetworkNode:
    """A participant in the simulated network.

    Subclasses implement :meth:`handle_message`.  The important property the
    paper insists on is that roles are "not fixed or pre-assigned": any node
    can originate queries, serve data, or maintain indexes; the peer classes
    in :mod:`repro.peers` therefore all derive from this one base.
    """

    def __init__(self, address: str) -> None:
        if not address:
            raise SimulationError("node address must be non-empty")
        self.address = address
        self.online = True
        self.network: "Network | None" = None
        self.received_messages = 0
        self.sent_messages = 0

    # -- lifecycle ------------------------------------------------------------ #

    def attach(self, network: "Network") -> None:
        """Called by :meth:`Network.register`."""
        self.network = network

    def go_offline(self, graceful: bool = False) -> None:
        """Take the node off the network (messages to it are dropped).

        ``graceful`` marks an announced departure (a *leave*) rather than a
        crash; real transports use it to drain connections before closing
        them.  The logical drop semantics are identical either way.
        """
        self.online = False
        if self.network is not None:
            self.network.notify_peer_offline(self.address, graceful=graceful)

    def go_online(self) -> None:
        """Bring the node back."""
        self.online = True
        if self.network is not None:
            self.network.notify_peer_online(self.address)

    # -- messaging -------------------------------------------------------------- #

    @property
    def now(self) -> float:
        """Current simulated time (the transport's logical clock)."""
        self._require_network()
        return self.network.now  # type: ignore[union-attr]

    def send(
        self,
        recipient: str,
        kind: str,
        payload: Any = None,
        size_bytes: int = 256,
        hop: int = 0,
        transfer: str | None = None,
        attempt: int = 0,
    ) -> Message:
        """Send a message through the network fabric.

        ``transfer``/``attempt`` stamp the reliable-delivery envelope (see
        :class:`~repro.network.message.Message`); fire-and-forget senders
        leave them at their defaults.
        """
        self._require_network()
        message = Message(
            sender=self.address,
            recipient=recipient,
            kind=kind,
            payload=payload,
            size_bytes=size_bytes,
            hop=hop,
            transfer=transfer,
            attempt=attempt,
        )
        self.sent_messages += 1
        self.network.send(message)  # type: ignore[union-attr]
        return message

    def schedule(self, delay: float, callback) -> "Event":
        """Schedule local work on the shared logical clock.

        Returns the :class:`~repro.network.simulator.Event`, so callers
        holding state that may become moot (retry timers, detection
        timeouts) can cancel it instead of guarding the callback.
        """
        self._require_network()
        return self.network.schedule(delay, callback)  # type: ignore[union-attr]

    def receive(self, message: Message) -> None:
        """Entry point called by the network on delivery."""
        self.received_messages += 1
        self.handle_message(message)

    def handle_message(self, message: Message) -> None:
        """Process one delivered message (subclasses override)."""
        raise NotImplementedError

    def _require_network(self) -> None:
        if self.network is None:
            raise SimulationError(f"node {self.address!r} is not attached to a network")

    def __repr__(self) -> str:
        status = "online" if self.online else "offline"
        return f"{type(self).__name__}({self.address!r}, {status})"
