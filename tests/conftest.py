"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.namespace import garage_sale_namespace, gene_expression_namespace
from repro.xmlmodel import XMLElement, element, text_element


@pytest.fixture()
def namespace():
    """The garage-sale Location x Merchandise namespace."""
    return garage_sale_namespace()


@pytest.fixture()
def gene_namespace():
    """The Organism x CellType namespace of Figure 1."""
    return gene_expression_namespace()


def make_item(title: str, price: float, city: str = "USA/OR/Portland",
              category: str = "Music/CDs", seller: str = "seller:9020") -> XMLElement:
    """Build a garage-sale item bundle."""
    return element(
        "item",
        {"id": f"{seller}-{title}"},
        text_element("title", title),
        text_element("price", price),
        text_element("city", city),
        text_element("category", category),
        text_element("seller", seller),
    )


@pytest.fixture()
def cd_items():
    """A small collection of CD items with varied prices."""
    return [
        make_item("Abbey Road", 8.0),
        make_item("Kind of Blue", 12.5),
        make_item("Blue Train", 6.0),
        make_item("Giant Steps", 15.0),
        make_item("Green Onions", 9.5),
    ]


@pytest.fixture()
def furniture_items():
    """A small collection of furniture items in two cities."""
    return [
        make_item("Oak Table", 120.0, category="Furniture/Tables"),
        make_item("Armchair", 60.0, category="Furniture/Chairs/Armchairs"),
        make_item("Desk Chair", 45.0, city="USA/WA/Vancouver", category="Furniture/Chairs/OfficeChairs"),
        make_item("Sofa", 200.0, city="USA/WA/Seattle", category="Furniture/Sofas"),
    ]
