"""The mutant query plan itself: algebra plan + target + provenance + preferences.

A :class:`MutantQueryPlan` packages everything that travels between peers:

* the (partially evaluated) algebraic plan,
* the target address the final result must reach,
* the provenance log (§5.1),
* a copy of the original, unevaluated plan (§5.1: "maintaining the original
  query along with the partially evaluated query also allows a server to
  improve or enhance bindings, or even undo them"),
* the query preferences of §4.3 (time budget plus a binary preference for
  complete versus current answers).

The wire format wraps the plan's XML serialization, so shipping an MQP is
just shipping one XML document.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..algebra import QueryPlan, plan_from_xml, plan_to_xml
from ..errors import PlanError
from ..perf import flags
from ..xmlmodel import XMLElement, parse_xml, serialize_xml
from .provenance import ProvenanceLog

__all__ = ["QueryPreferences", "MutantQueryPlan"]

_query_counter = itertools.count(1)


@dataclass(frozen=True)
class QueryPreferences:
    """The simple tradeoff controls the paper proposes in §4.3.

    ``target_time_ms`` is the query's evaluation-time budget in simulated
    milliseconds (``None`` means unbounded), and ``prefer`` is the binary
    completeness-versus-currency preference, extended with ``fast`` for the
    latency-first behaviour used by several benchmarks.
    """

    target_time_ms: float | None = None
    prefer: str = "complete"

    VALID = ("complete", "current", "fast")

    def __post_init__(self) -> None:
        if self.prefer not in self.VALID:
            raise PlanError(f"preference must be one of {self.VALID}, got {self.prefer!r}")
        if self.target_time_ms is not None and self.target_time_ms <= 0:
            raise PlanError("target_time_ms must be positive")

    def to_xml(self) -> XMLElement:
        attributes: dict[str, object] = {"prefer": self.prefer}
        if self.target_time_ms is not None:
            attributes["target-time-ms"] = f"{self.target_time_ms:g}"
        return XMLElement("preferences", attributes)

    @classmethod
    def from_xml(cls, element: XMLElement) -> "QueryPreferences":
        target = element.get("target-time-ms")
        return cls(
            target_time_ms=float(target) if target is not None else None,
            prefer=element.get("prefer", "complete") or "complete",
        )


_DEFERRED_ORIGINAL = object()
"""Sentinel: the original plan exists only as its wire XML, parsed on demand."""


class MutantQueryPlan:
    """Everything a peer receives, mutates, and forwards.

    The original plan is immutable once issued (§5.1 keeps it so bindings
    can be audited or undone), yet the seed re-encoded it into XML at every
    forward and re-built plan nodes — predicates included — at every
    receive.  The wire form of the original is therefore carried alongside
    (``_original_xml``) and replayed verbatim on serialization, and the
    plan-node form is materialized lazily, only for the few consumers that
    need more than its URN strings.
    """

    def __init__(
        self,
        plan: QueryPlan,
        query_id: str | None = None,
        provenance: ProvenanceLog | None = None,
        original: QueryPlan | None | object = None,
        preferences: QueryPreferences | None = None,
        issued_at: float = 0.0,
    ) -> None:
        self.plan = plan
        self.query_id = query_id if query_id is not None else f"q{next(_query_counter)}"
        self.provenance = provenance if provenance is not None else ProvenanceLog()
        self.preferences = preferences if preferences is not None else QueryPreferences()
        self.issued_at = issued_at
        self._original_xml: XMLElement | None = None
        if original is _DEFERRED_ORIGINAL:
            self._original: QueryPlan | None = None
        elif original is None:
            self._original = plan.copy()
        else:
            self._original = original  # type: ignore[assignment]

    @property
    def original(self) -> QueryPlan | None:
        """The original, unevaluated plan (materialized from XML on demand)."""
        if self._original is None and self._original_xml is not None:
            self._original = plan_from_xml(self._original_xml)
        return self._original

    @original.setter
    def original(self, value: QueryPlan | None) -> None:
        self._original = value
        self._original_xml = None

    # -- convenience ------------------------------------------------------------ #

    @property
    def target(self) -> str | None:
        """The address the fully evaluated result must be sent to."""
        return self.plan.target

    def is_fully_evaluated(self) -> bool:
        """True when the plan is a constant piece of XML data."""
        return self.plan.is_fully_evaluated()

    def remaining_urns(self) -> list[str]:
        """URN strings still unresolved in the plan."""
        return [ref.urn for ref in self.plan.urn_refs()]

    def remaining_urls(self) -> list[str]:
        """URLs still unresolved in the plan."""
        return [ref.url for ref in self.plan.url_refs()]

    def original_resources(self) -> list[str]:
        """The resource names the original query referenced (for spoof checks)."""
        assert self.original is not None
        resources = [ref.urn for ref in self.original.urn_refs()]
        resources.extend(ref.url for ref in self.original.url_refs())
        return resources

    def original_urn_strings(self) -> list[str]:
        """URN strings of the original plan, without materializing it.

        The meta-index learning step (§5.1) inspects the original's URNs at
        every hop; reading them straight off the carried wire form skips
        rebuilding plan nodes (and re-parsing predicates) per hop.
        ``<collection>`` subtrees are skipped — they hold verbatim user
        data, where a ``<urn>`` tag would be payload, not a plan leaf.
        """
        if self._original is not None:
            return [ref.urn for ref in self._original.urn_refs()]
        if self._original_xml is None:
            return []
        found: list[str] = []
        stack = [self._original_xml]
        while stack:
            node = stack.pop()
            if node.tag == "collection":
                continue
            if node.tag == "urn":
                name = node.get("name")
                if name is not None:
                    found.append(name)
            stack.extend(reversed(node.children))
        return found

    def elapsed_ms(self, now: float) -> float:
        """Simulated time since the query was issued."""
        return max(0.0, now - self.issued_at)

    def over_budget(self, now: float) -> bool:
        """True when the query's time budget has been exhausted."""
        budget = self.preferences.target_time_ms
        return budget is not None and self.elapsed_ms(now) > budget

    # -- wire format --------------------------------------------------------------- #

    def to_xml(self) -> XMLElement:
        """Serialize the complete MQP (plan, original, provenance, preferences).

        The returned tree aliases the original's carried wire form (and,
        transitively, any verbatim result data); it is meant to be rendered
        to text immediately, not mutated.
        """
        children = [
            XMLElement("current", {}, [plan_to_xml(self.plan)]),
            self.preferences.to_xml(),
            self.provenance.to_xml(),
        ]
        if self._original_xml is not None and flags.lazy_original_plans:
            children.append(XMLElement("original", {}, [self._original_xml]))
        elif self.original is not None:
            children.append(XMLElement("original", {}, [plan_to_xml(self.original)]))
        return XMLElement(
            "mutant-query",
            {"id": self.query_id, "issued-at": f"{self.issued_at:.3f}"},
            children,
        )

    def serialize(self, indent: int | None = None) -> str:
        """The XML string shipped between peers."""
        return serialize_xml(self.to_xml(), indent=indent)

    def wire_size(self) -> int:
        """Size in bytes of the wire encoding (partial results included)."""
        return len(self.serialize().encode("utf-8"))

    @classmethod
    def from_xml(cls, element: XMLElement) -> "MutantQueryPlan":
        """Parse the element form produced by :meth:`to_xml`."""
        if element.tag != "mutant-query":
            raise PlanError(f"expected <mutant-query>, got <{element.tag}>")
        current = element.find("current")
        if current is None or not current.children:
            raise PlanError("<mutant-query> has no <current> plan")
        plan = plan_from_xml(current.children[0])
        original_wrapper = element.find("original")
        original_xml = (
            original_wrapper.children[0]
            if original_wrapper is not None and original_wrapper.children
            else None
        )
        preferences_element = element.find("preferences")
        preferences = (
            QueryPreferences.from_xml(preferences_element)
            if preferences_element is not None
            else QueryPreferences()
        )
        provenance_element = element.find("provenance")
        provenance = (
            ProvenanceLog.from_xml(provenance_element)
            if provenance_element is not None
            else ProvenanceLog()
        )
        defer = original_xml is not None and flags.lazy_original_plans
        mqp = cls(
            plan=plan,
            query_id=element.get("id", f"q{next(_query_counter)}"),
            provenance=provenance,
            original=_DEFERRED_ORIGINAL
            if defer
            else (plan_from_xml(original_xml) if original_xml is not None else None),
            preferences=preferences,
            issued_at=float(element.get("issued-at", "0") or 0.0),
        )
        if defer:
            mqp._original_xml = original_xml
        return mqp

    @classmethod
    def deserialize(cls, document: str) -> "MutantQueryPlan":
        """Parse the XML string form."""
        return cls.from_xml(parse_xml(document))

    def __repr__(self) -> str:
        return (
            f"MutantQueryPlan({self.query_id!r}, nodes={self.plan.size()}, "
            f"urns={len(self.remaining_urns())}, evaluated={self.is_fully_evaluated()})"
        )
