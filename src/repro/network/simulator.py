"""Deterministic discrete-event simulator.

All distributed behaviour in the reproduction — peers exchanging mutant
query plans, registrations propagating to authoritative servers, baseline
broadcasts — runs on this single-threaded event loop.  Time is simulated
milliseconds; events scheduled for the same instant run in scheduling
order, which keeps every experiment bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from ..errors import SimulationError

__all__ = ["Event", "Simulator"]

_SWEEP_MIN_CANCELLED = 64
"""Lazy-cancellation threshold: below this, skipping at pop time is cheaper."""


class Event:
    """A scheduled callback; ordering is (time, sequence number).

    A plain slots class rather than a dataclass: the event heap compares
    events on every push/pop, and the generated dataclass ordering builds a
    field tuple per comparison.  With a million-event cap per run, the
    allocation-free ``__lt__`` is measurable in end-to-end scenario time.
    """

    __slots__ = ("time", "sequence", "callback", "cancelled", "_simulator")

    def __init__(self, time: float, sequence: int, callback: Callable[[], None]) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False
        self._simulator: "Simulator | None" = None

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.sequence < other.sequence

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.time == other.time and self.sequence == other.sequence

    def cancel(self) -> None:
        """Prevent the event from running when its time comes.

        Cancellation is lazy: the event stays queued (flagged) and the
        owning simulator sweeps the heap only once cancelled events
        dominate it, so cancelling is O(1) and the heap never fills with
        dead weight under heavy churn.
        """
        if self.cancelled:
            return
        self.cancelled = True
        simulator = self._simulator
        if simulator is not None:
            simulator._note_cancelled()

    def __repr__(self) -> str:
        flag = ", cancelled" if self.cancelled else ""
        return f"Event(t={self.time:.3f}, seq={self.sequence}{flag})"


class Simulator:
    """A minimal but complete discrete-event loop.

    The simulator deliberately exposes only ``schedule`` / ``run`` /
    ``run_until_idle``; components that need periodic behaviour re-schedule
    themselves from their callbacks.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[Event] = []
        self._sequence = itertools.count()
        self._processed = 0
        self._cancelled_pending = 0
        # Multicore seam: an optional hybrid logical clock that must track
        # every advance of simulated time.  None on single-process runs, so
        # the hot loop pays one attribute load and a falsy branch.
        self.clock = None

    # -- clock ------------------------------------------------------------- #

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    # -- scheduling ---------------------------------------------------------- #

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` milliseconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event(self._now + delay, next(self._sequence), callback)
        event._simulator = self
        heapq.heappush(self._queue, event)
        return event

    def _note_cancelled(self) -> None:
        """Bookkeeping for lazy cancellation; sweeps when dead events dominate."""
        self._cancelled_pending += 1
        if (
            self._cancelled_pending >= _SWEEP_MIN_CANCELLED
            and self._cancelled_pending * 2 > len(self._queue)
        ):
            self._queue = [event for event in self._queue if not event.cancelled]
            heapq.heapify(self._queue)
            self._cancelled_pending = 0

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute simulated time."""
        return self.schedule(time - self._now, callback)

    # -- execution ------------------------------------------------------------ #

    def peek(self) -> Event | None:
        """Return the next live event without executing it (None when idle).

        Cancelled events at the head of the heap are discarded on the way,
        so a subsequent :meth:`step` pops exactly the returned event
        (provided nothing earlier is scheduled in between).  Transports use
        this to gate a delivery event on its frame's physical arrival.
        """
        while self._queue:
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                if self._cancelled_pending:
                    self._cancelled_pending -= 1
                continue
            return event
        return None

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time`` without running anything.

        Mirrors what :meth:`run` does when asked to run ``until`` a time
        past the last event; moving backwards is a no-op.
        """
        if time > self._now:
            self._now = time
            if self.clock is not None:
                self.clock.tick(self._now)

    def step(self) -> bool:
        """Run the next pending event; return False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                if self._cancelled_pending:
                    self._cancelled_pending -= 1
                continue
            self._now = event.time
            if self.clock is not None:
                self.clock.tick(self._now)
            event.callback()
            self._processed += 1
            return True
        return False

    def run(
        self,
        until: float | None = None,
        max_events: int = 1_000_000,
        stop: Callable[[], bool] | None = None,
    ) -> None:
        """Run events until the queue drains, ``until`` is reached, or the cap hits.

        ``max_events`` guards against accidental event storms in buggy
        protocols; hitting it raises :class:`SimulationError`.  ``stop`` is
        checked after every executed event (and once up front): the loop
        returns as soon as it reports true, leaving the clock at the event
        that satisfied it.  This is how future-like result handles wait for
        completion without polling — the condition is a flag flipped by a
        delivery callback, not a rescheduled check.
        """
        if stop is not None and stop():
            return
        executed = 0
        while self._queue:
            next_event = self._queue[0]
            if next_event.cancelled:
                heapq.heappop(self._queue)
                if self._cancelled_pending:
                    self._cancelled_pending -= 1
                continue
            if until is not None and next_event.time > until:
                self._now = until
                return
            if not self.step():
                return
            executed += 1
            if stop is not None and stop():
                return
            if executed >= max_events:
                raise SimulationError(f"simulation exceeded {max_events} events")
        if until is not None and until > self._now:
            self._now = until

    def run_until_idle(self, max_events: int = 1_000_000) -> None:
        """Run until no events remain."""
        self.run(until=None, max_events=max_events)

    def __repr__(self) -> str:
        return f"Simulator(now={self._now:.3f}ms, pending={self.pending_events})"
