"""Link latency and bandwidth model.

The paper never reports absolute timings, but the tradeoffs it discusses
(latency versus completeness, "their size matters") need a network model
that charges both a per-message propagation delay and a size-dependent
transfer time.  Pairwise latencies are drawn once per (sender, recipient)
pair from a seeded generator so repeated messages between the same peers
see consistent delays and every experiment is reproducible.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LatencyModel"]


class LatencyModel:
    """Per-link propagation delay plus bandwidth-based transfer time.

    Parameters
    ----------
    base_latency_ms:
        Mean one-way propagation delay between two peers.
    jitter_ms:
        Half-width of the uniform jitter added per link (sampled once per
        directed link, then fixed).
    bandwidth_bytes_per_ms:
        Link throughput used to convert message size into transfer time.
    local_latency_ms:
        Delay applied when a peer "sends" to itself (loopback work).
    seed:
        Seed for the per-link jitter.
    """

    def __init__(
        self,
        base_latency_ms: float = 20.0,
        jitter_ms: float = 10.0,
        bandwidth_bytes_per_ms: float = 1_000.0,
        local_latency_ms: float = 0.1,
        seed: int = 7,
    ) -> None:
        self.base_latency_ms = float(base_latency_ms)
        self.jitter_ms = float(jitter_ms)
        self.bandwidth_bytes_per_ms = float(bandwidth_bytes_per_ms)
        self.local_latency_ms = float(local_latency_ms)
        self._rng = np.random.default_rng(seed)
        self._link_latency: dict[tuple[str, str], float] = {}

    def propagation_delay(self, sender: str, recipient: str) -> float:
        """One-way propagation delay for the directed link, stable per pair."""
        if sender == recipient:
            return self.local_latency_ms
        key = (sender, recipient)
        if key not in self._link_latency:
            jitter = self._rng.uniform(-self.jitter_ms, self.jitter_ms)
            self._link_latency[key] = max(0.5, self.base_latency_ms + jitter)
        return self._link_latency[key]

    def transfer_time(self, size_bytes: int) -> float:
        """Serialization/transfer time for a message of the given size."""
        return size_bytes / self.bandwidth_bytes_per_ms

    def delivery_delay(self, sender: str, recipient: str, size_bytes: int) -> float:
        """Total delay charged for delivering one message."""
        return self.propagation_delay(sender, recipient) + self.transfer_time(size_bytes)
