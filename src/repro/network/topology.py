"""Overlay topologies for the unstructured-P2P baselines and scale-out runs.

Catalog-based routing (the paper's proposal) does not need an overlay graph:
peers contact the index / meta-index servers they know about.  The Gnutella
baseline, however, broadcasts along an unstructured overlay, and the routing
index baseline forwards along overlay edges, so both need neighbour graphs.
These builders produce deterministic graphs (seeded) over a list of peer
addresses using ``networkx``.

For thousand-peer experiments the parametric generators model the overlay
shapes observed in deployed P2P systems: ``scale_free_topology``
(Barabási–Albert preferential attachment — a few high-degree hubs, as in
measured Gnutella snapshots), ``small_world_topology`` (Watts–Strogatz),
and ``hierarchical_topology`` (an ISP-like core / point-of-presence / leaf
tiering).  ``build_topology`` dispatches on a kind name so the experiment
CLI can compose topology × workload × churn from strings.
"""

from __future__ import annotations

import networkx as nx

from ..errors import SimulationError

__all__ = [
    "Topology",
    "TOPOLOGY_KINDS",
    "build_topology",
    "random_topology",
    "scale_free_topology",
    "small_world_topology",
    "hierarchical_topology",
    "star_topology",
]


class Topology:
    """A neighbour graph over peer addresses."""

    def __init__(self, graph: nx.Graph) -> None:
        self.graph = graph

    @property
    def addresses(self) -> list[str]:
        """All peer addresses in the overlay, sorted."""
        return sorted(self.graph.nodes)

    def neighbors(self, address: str) -> list[str]:
        """Overlay neighbours of ``address``, sorted for determinism."""
        if address not in self.graph:
            raise SimulationError(f"{address!r} is not part of the overlay")
        return sorted(self.graph.neighbors(address))

    def degree(self, address: str) -> int:
        """Number of overlay neighbours."""
        return len(self.neighbors(address))

    def average_degree(self) -> float:
        """Mean degree of the overlay."""
        nodes = self.graph.number_of_nodes()
        if nodes == 0:
            return 0.0
        return 2.0 * self.graph.number_of_edges() / nodes

    def is_connected(self) -> bool:
        """True when every peer can reach every other peer."""
        return nx.is_connected(self.graph) if self.graph.number_of_nodes() else True

    def max_degree(self) -> int:
        """Largest degree in the overlay (hubs of scale-free graphs)."""
        degrees = [degree for _, degree in self.graph.degree]
        return max(degrees) if degrees else 0

    def summary(self) -> dict[str, object]:
        """Flat description of the overlay for experiment reports."""
        return {
            "nodes": self.graph.number_of_nodes(),
            "edges": self.graph.number_of_edges(),
            "average_degree": round(self.average_degree(), 3),
            "max_degree": self.max_degree(),
            "connected": self.is_connected(),
        }


def random_topology(addresses: list[str], degree: int = 4, seed: int = 11) -> Topology:
    """A connected random regular-ish overlay (Gnutella-style)."""
    count = len(addresses)
    if count < 2:
        graph = nx.Graph()
        graph.add_nodes_from(addresses)
        return Topology(graph)
    degree = max(1, min(degree, count - 1))
    if (degree * count) % 2 == 1:
        degree += 1
        degree = min(degree, count - 1)
    graph = nx.random_regular_graph(degree, count, seed=seed)
    graph = nx.relabel_nodes(graph, dict(enumerate(addresses)))
    _ensure_connected(graph, addresses)
    return Topology(graph)


def small_world_topology(
    addresses: list[str], neighbors: int = 4, rewire_probability: float = 0.2, seed: int = 11
) -> Topology:
    """A Watts–Strogatz small-world overlay."""
    count = len(addresses)
    if count < 3:
        return random_topology(addresses, seed=seed)
    neighbors = max(2, min(neighbors, count - 1))
    if neighbors % 2 == 1:
        neighbors += 1
    graph = nx.connected_watts_strogatz_graph(count, neighbors, rewire_probability, seed=seed)
    graph = nx.relabel_nodes(graph, dict(enumerate(addresses)))
    return Topology(graph)


def scale_free_topology(addresses: list[str], attachment: int = 3, seed: int = 11) -> Topology:
    """A Barabási–Albert preferential-attachment overlay.

    Each arriving peer attaches to ``attachment`` existing peers with
    probability proportional to their degree, producing the heavy-tailed
    degree distribution measured in real unstructured P2P networks.  The
    construction is connected by design and deterministic per seed.
    """
    count = len(addresses)
    if count < 3:
        return random_topology(addresses, seed=seed)
    attachment = max(1, min(attachment, count - 1))
    graph = nx.barabasi_albert_graph(count, attachment, seed=seed)
    graph = nx.relabel_nodes(graph, dict(enumerate(addresses)))
    return Topology(graph)


def hierarchical_topology(
    addresses: list[str],
    core_size: int = 4,
    pops_per_core: int = 4,
    redundancy: int = 2,
    seed: int = 11,
) -> Topology:
    """An ISP-like three-tier overlay: core ring, PoP routers, leaf peers.

    The first ``core_size`` addresses form a fully meshed transit core; the
    next ``core_size * pops_per_core`` addresses are points of presence,
    each homed to ``redundancy`` core nodes; every remaining address is a
    leaf attached to ``redundancy`` PoPs chosen round-robin (deterministic,
    so the same address list and parameters always yield the same graph).
    """
    count = len(addresses)
    core_size = max(1, core_size)
    if count < core_size + 2:
        return random_topology(addresses, seed=seed)
    core = addresses[:core_size]
    pop_count = min(core_size * pops_per_core, max(1, (count - core_size) // 2))
    pops = addresses[core_size : core_size + pop_count]
    leaves = addresses[core_size + pop_count :]

    graph = nx.Graph()
    graph.add_nodes_from(addresses)
    for index, first in enumerate(core):
        for second in core[index + 1 :]:
            graph.add_edge(first, second)
    for index, pop in enumerate(pops):
        for offset in range(max(1, redundancy)):
            graph.add_edge(pop, core[(index + offset) % len(core)])
    for index, leaf in enumerate(leaves):
        for offset in range(max(1, redundancy)):
            graph.add_edge(leaf, pops[(index + offset) % len(pops)])
    return Topology(graph)


def star_topology(center: str, leaves: list[str]) -> Topology:
    """A hub-and-spoke overlay (the Napster-style central index)."""
    graph = nx.Graph()
    graph.add_node(center)
    for leaf in leaves:
        graph.add_edge(center, leaf)
    return Topology(graph)


TOPOLOGY_KINDS = ("scale-free", "small-world", "random", "hierarchical", "star")
"""Topology kind names accepted by :func:`build_topology` (and the CLI)."""


def build_topology(kind: str, addresses: list[str], seed: int = 11, **params) -> Topology:
    """Build a named overlay over ``addresses`` — the CLI's dispatch point."""
    if kind == "scale-free":
        return scale_free_topology(addresses, seed=seed, **params)
    if kind == "small-world":
        return small_world_topology(addresses, seed=seed, **params)
    if kind == "random":
        return random_topology(addresses, seed=seed, **params)
    if kind == "hierarchical":
        return hierarchical_topology(addresses, seed=seed, **params)
    if kind == "star":
        if not addresses:
            raise SimulationError("star topology needs at least one address")
        return star_topology(addresses[0], addresses[1:], **params)
    raise SimulationError(
        f"unknown topology kind {kind!r}; expected one of {', '.join(TOPOLOGY_KINDS)}"
    )


def _ensure_connected(graph: nx.Graph, addresses: list[str]) -> None:
    """Patch a disconnected random graph by chaining its components."""
    if nx.is_connected(graph):
        return
    components = [sorted(component) for component in nx.connected_components(graph)]
    for first, second in zip(components, components[1:]):
        graph.add_edge(first[0], second[0])
