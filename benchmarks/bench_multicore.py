"""MULTICORE — process-parallel scale-out and the pickle-free wire codec.

Three measurements back the PR 10 gates:

* ``codec_vs_pickle_speedup`` — the isolated wire path (``encode_view`` into
  the reused buffer → ``decode_frame``, HLC stamp included, exactly what the
  relay does per frame) against the pickle baseline: one
  ``pickle.dumps((message, stamp))`` / ``pickle.loads`` per frame, which is
  what the v1 wire path did to a message.  Hard gate ≥1.5× on stamped MQP
  plan frames — the dominant traffic.  The generic control-payload path is
  recorded alongside without a gate: a pure-Python tagged codec does not
  outrun C pickle on arbitrary object graphs, and the honest number for
  that rare frame kind belongs in the report next to the reason the codec
  exists anyway (no arbitrary deserialization on the socket).
* ``encoder_reuse_speedup`` — steady-state framing against a fresh encoder
  (and thus a fresh buffer) per frame, isolating the buffer-reuse micro-opt.
* ``multicore_speedup`` — wall-clock run phase of an N-worker
  ``flags.multiprocess`` run against the single-process aio run of the same
  spec+seed, plus the sequence-identity gate (= 1.0) between 1-worker and
  N-worker runs.  The ≥2× speedup gate only attaches at its defining
  configuration — 4 workers, 1,000 peers, ``os.cpu_count() >= 4`` — because
  on a 1-core runner (or a barrier-dominated small scenario) process
  parallelism is all overhead and the honest value is recorded ungated.

``REPRO_BENCH_QUICK=1`` shrinks everything for CI smoke runs;
``REPRO_BENCH_MULTICORE_WORKERS`` / ``REPRO_BENCH_MULTICORE_PEERS`` size the
nightly full configuration (4 workers, 1,000 peers).
"""

from __future__ import annotations

import os
import pickle
import random
import statistics
import time
from dataclasses import replace

import benchjson
from conftest import emit
from repro.harness.scaleout import (
    ScaleoutSpec,
    build_scaleout_scenario,
    run_scaleout,
    schedule_queries,
)
from repro.multicore import HLCStamp, sequence_identity
from repro.network import build_transport
from repro.network.message import Message
from repro.network.transport.wire import FrameEncoder, decode_frame

QUICK = benchjson.quick_mode()
BENCH = "multicore"
CORES = os.cpu_count() or 1
WORKERS = int(os.environ.get("REPRO_BENCH_MULTICORE_WORKERS", "0")) or (2 if QUICK else 4)
PEERS = int(os.environ.get("REPRO_BENCH_MULTICORE_PEERS", "0")) or (60 if QUICK else 200)
QUERIES = 6 if QUICK else 12
CODEC_FRAMES = 400 if QUICK else 1500
CODEC_REPEATS = 5 if QUICK else 9

CODEC_SPEEDUP_FLOOR = 1.5
CODEC_FRAMES_PER_SEC_FLOOR = 10_000.0
MULTICORE_SPEEDUP_FLOOR = 2.0

SPEC = ScaleoutSpec(
    name="multicore-bench", topology="small-world", peers=PEERS,
    workload="garage-sale", churn="light", queries=QUERIES, seed=11,
)


# --------------------------------------------------------------------------- #
# Isolated codec path
# --------------------------------------------------------------------------- #


def _plan_frames(count: int) -> list[Message]:
    """Stamped MQP frames with plan-sized XML documents (exp-distributed)."""
    rng = random.Random(11)
    frames = []
    for index in range(count):
        operators = max(1, int(rng.expovariate(1.0 / 18)))
        document = (
            "<plan query='q%d'>" % index
            + "<op kind='select' source='peer%04d:9020'/>" % (index % 211) * operators
            + "</plan>"
        )
        frames.append(Message(
            sender="peer%04d:9020" % (index % 211),
            recipient="peer%04d:9020" % ((index * 7) % 211),
            kind="mqp", payload=document, size_bytes=len(document),
            message_id=index, sent_at=float(index), hop=2, attempt=0,
        ))
    return frames


def _control_frames(count: int) -> list[Message]:
    """Frames whose payloads ride the generic tagged-value path."""
    rng = random.Random(12)
    frames = []
    for index in range(count):
        payload = {
            "op": "register",
            "peers": ["peer%04d:9020" % rng.randrange(211) for _ in range(5)],
            "epoch": index,
            "graceful": bool(index % 2),
        }
        frames.append(Message(
            sender="peer%04d:9020" % (index % 211), recipient="meta-index:9020",
            kind="register", payload=payload, size_bytes=256,
            message_id=index, sent_at=float(index), hop=1, attempt=0,
        ))
    return frames


_STAMP = HLCStamp(physical=1250.5, logical=3, worker=1)


def _median_frames_per_sec(run, count: int) -> float:
    run()  # warm caches (struct formats, the encoder's buffer)
    rates = []
    for _ in range(CODEC_REPEATS):
        began = time.perf_counter()
        run()
        rates.append(count / (time.perf_counter() - began))
    return statistics.median(rates)


def _wire_roundtrip(encoder: FrameEncoder, frames: list[Message]):
    def run() -> None:
        for message in frames:
            view = encoder.encode_view(message, _STAMP)
            decode_frame(view[4:])
            view.release()
    return run


def _pickle_roundtrip(frames: list[Message]):
    # The baseline the v2 codec replaced: the v1 wire path pickled the
    # message for the socket; stamped multicore frames would carry the
    # stamp in the same blob.
    def run() -> None:
        for message in frames:
            pickle.loads(pickle.dumps((message, _STAMP), protocol=pickle.HIGHEST_PROTOCOL))
    return run


def test_codec_against_the_pickle_baseline():
    """The hard codec gate: stamped MQP frames ≥1.5× the pickle baseline."""
    plans = _plan_frames(CODEC_FRAMES)
    controls = _control_frames(max(CODEC_FRAMES // 4, 50))
    encoder = FrameEncoder()
    wire_fps = _median_frames_per_sec(_wire_roundtrip(encoder, plans), len(plans))
    pickle_fps = _median_frames_per_sec(_pickle_roundtrip(plans), len(plans))
    speedup = wire_fps / pickle_fps
    ctl_wire_fps = _median_frames_per_sec(_wire_roundtrip(encoder, controls), len(controls))
    ctl_pickle_fps = _median_frames_per_sec(_pickle_roundtrip(controls), len(controls))
    ctl_speedup = ctl_wire_fps / ctl_pickle_fps
    mean_bytes = sum(len(m.payload) for m in plans) / len(plans)
    emit(
        f"MULTICORE  Wire codec vs pickle ({len(plans)} stamped frames, "
        f"~{mean_bytes:,.0f}B plans)",
        f"mqp: codec {wire_fps:,.0f} frames/s vs pickle {pickle_fps:,.0f} "
        f"-> {speedup:.2f}x; control payloads (tagged values): "
        f"codec {ctl_wire_fps:,.0f} vs pickle {ctl_pickle_fps:,.0f} "
        f"-> {ctl_speedup:.2f}x (ungated; the tagged codec buys the socket "
        f"safety, the MQP fast path buys the throughput)",
    )
    context = {"frames": len(plans), "mean_payload_bytes": round(mean_bytes)}
    benchjson.record_metric(
        BENCH, "codec_frames_per_sec", wire_fps, unit="frames/s",
        gate_min=CODEC_FRAMES_PER_SEC_FLOOR, **context,
    )
    benchjson.record_metric(
        BENCH, "codec_vs_pickle_speedup", speedup, unit="x",
        gate_min=CODEC_SPEEDUP_FLOOR, **context,
    )
    benchjson.record_metric(
        BENCH, "codec_ctl_vs_pickle_speedup", ctl_speedup, unit="x",
        frames=len(controls),
    )
    assert speedup >= CODEC_SPEEDUP_FLOOR, (
        f"wire codec moved {wire_fps:,.0f} frames/s vs pickle's "
        f"{pickle_fps:,.0f} — {speedup:.2f}x is below the "
        f"{CODEC_SPEEDUP_FLOOR}x floor"
    )
    assert wire_fps >= CODEC_FRAMES_PER_SEC_FLOOR


def test_encode_buffer_reuse():
    """Reusing one encoder buffer vs a fresh allocation per frame."""
    plans = _plan_frames(CODEC_FRAMES)
    shared = FrameEncoder()
    backing = shared._writer.buf

    def reused() -> None:
        for message in plans:
            shared.encode(message, _STAMP)

    def fresh() -> None:
        for message in plans:
            FrameEncoder().encode(message, _STAMP)

    reused_fps = _median_frames_per_sec(reused, len(plans))
    fresh_fps = _median_frames_per_sec(fresh, len(plans))
    speedup = reused_fps / fresh_fps
    # The reuse claim itself: the backing buffer object never changed.
    assert shared._writer.buf is backing
    emit(
        f"MULTICORE  Encode-buffer reuse ({len(plans)} frames)",
        f"shared encoder {reused_fps:,.0f} frames/s vs fresh-per-frame "
        f"{fresh_fps:,.0f} -> {speedup:.2f}x; backing buffer unchanged "
        f"across the run ({len(backing):,} bytes)",
    )
    benchjson.record_metric(
        BENCH, "encoder_reuse_speedup", speedup, unit="x", frames=len(plans),
    )


# --------------------------------------------------------------------------- #
# Process-parallel run phase
# --------------------------------------------------------------------------- #


def _timed_single_run() -> tuple[float, int]:
    """Single-process aio: build, then time only the run phase."""
    transport = build_transport("aio")
    scenario = build_scaleout_scenario(SPEC, transport=transport)
    network = scenario.network
    try:
        schedule_queries(scenario)
        before = network.metrics.messages_sent
        began = time.perf_counter()
        network.run_until_idle()
        elapsed = time.perf_counter() - began
        return elapsed, network.metrics.messages_sent - before
    finally:
        network.close()


def test_multicore_run_phase():
    """N workers vs one process: identical sequences, wall-clock speedup."""
    single_wall, run_messages = _timed_single_run()
    one_worker = run_scaleout(replace(SPEC, workers=1))
    many_workers = run_scaleout(replace(SPEC, workers=WORKERS))
    identity = sequence_identity(one_worker, many_workers)
    block = many_workers["multicore"]
    multicore_wall = block["run_wall_s"]
    speedup = single_wall / multicore_wall
    throughput = run_messages / multicore_wall
    # The ≥2x gate is defined at the issue's configuration — 4 workers,
    # 1,000 peers, a box with the cores to run them — and stays advisory
    # below it: a barrier-dominated small scenario (or a 1-core runner)
    # measures coordination overhead, not parallelism.
    gated = CORES >= 4 and WORKERS >= 4 and PEERS >= 1000
    emit(
        f"MULTICORE  Run phase ({PEERS} peers, {QUERIES} queries, "
        f"{WORKERS} workers on {CORES} cores)",
        f"single aio {single_wall:.3f}s vs {WORKERS}-worker "
        f"{multicore_wall:.3f}s -> {speedup:.2f}x "
        f"({throughput:,.0f} msgs/s run phase); 1-vs-{WORKERS} worker "
        f"sequence identity {identity}; windows={block['windows']} "
        f"barriers={block['barriers']} relay_frames={block['relay_frames']}"
        + ("" if gated else f"; speedup ungated ({CORES} core(s), "
           f"{WORKERS} workers, {PEERS} peers — gate needs >=4/4/1000)"),
    )
    context = {"workers": WORKERS, "peers": PEERS, "queries": QUERIES, "cpu_count": CORES}
    benchjson.record_metric(
        BENCH, "sequence_identity", identity, unit="ratio",
        gate_min=1.0, **context,
    )
    benchjson.record_metric(
        BENCH, "single_aio_run_wall_s", single_wall, unit="s",
        direction="lower", **context,
    )
    benchjson.record_metric(
        BENCH, "multicore_run_wall_s", multicore_wall, unit="s",
        direction="lower", **context,
    )
    benchjson.record_metric(
        BENCH, "multicore_run_messages_per_sec", throughput, unit="msgs/s", **context,
    )
    benchjson.record_metric(
        BENCH, "multicore_speedup", speedup, unit="x",
        gate_min=MULTICORE_SPEEDUP_FLOOR if gated else None, **context,
    )
    assert identity == 1.0, (
        f"1-worker and {WORKERS}-worker runs diverged (identity {identity})"
    )
    if gated:
        assert speedup >= MULTICORE_SPEEDUP_FLOOR, (
            f"{WORKERS} workers only reached {speedup:.2f}x over single-process "
            f"aio on {CORES} cores (floor {MULTICORE_SPEEDUP_FLOOR}x)"
        )


if __name__ == "__main__":
    raise SystemExit(benchjson.run_as_script(__file__))
