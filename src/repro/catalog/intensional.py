"""Intensional statements: coordination formulas between servers (paper §4).

An intensional statement describes how the holdings of one server relate to
the holdings of others, at a given catalog *level* (base data or index
entries), restricted to an interest area, optionally with a staleness
*delay*:

    ``base[Portland, *]@R = base[Portland, *]@S``
    ``base[Portland, *]@R >= base[Portland, *]@S{30}``
    ``index[Oregon, GolfClubs]@R =
        base[Oregon, GolfClubs]@S | base[Oregon, GolfClubs]@T | ...``

The binder (:mod:`repro.catalog.binding`) uses these to produce conjoint
("or") bindings, prune redundant servers, and annotate alternatives with
currency bounds.  The textual form is parseable so statements can travel in
registration messages.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum

from ..errors import IntensionalStatementError
from ..namespace import InterestArea, decode_interest_area, encode_interest_area

__all__ = ["CatalogLevel", "Relation", "ServerHolding", "IntensionalStatement"]


class CatalogLevel(str, Enum):
    """Which level of holdings a statement talks about."""

    BASE = "base"
    INDEX = "index"
    META_INDEX = "meta-index"


class Relation(str, Enum):
    """The relation between the left side and the union of the right side."""

    EQUALS = "="
    SUPERSET = ">="


@dataclass(frozen=True)
class ServerHolding:
    """One side's term: ``level[area]@server{delay}``."""

    level: CatalogLevel
    area: InterestArea
    server: str
    delay_minutes: float = 0.0

    def __post_init__(self) -> None:
        if not self.server:
            raise IntensionalStatementError("a holding needs a server address")
        if self.delay_minutes < 0:
            raise IntensionalStatementError("delay must be non-negative")

    def restricted_to(self, area: InterestArea) -> "ServerHolding":
        """Return this holding restricted to the overlap with ``area``."""
        return ServerHolding(self.level, self.area.intersection(area), self.server, self.delay_minutes)

    def to_text(self) -> str:
        delay = f"{{{self.delay_minutes:g}}}" if self.delay_minutes else ""
        return f"{self.level.value}[{encode_interest_area(self.area)}]@{self.server}{delay}"

    def __str__(self) -> str:
        return self.to_text()


_HOLDING_RE = re.compile(
    r"^\s*(?P<level>base|index|meta-index)\[(?P<area>[^\]]+)\]@(?P<server>[^\s{]+)"
    r"(?:\{(?P<delay>[0-9.]+)\})?\s*$"
)


def _parse_holding(text: str) -> ServerHolding:
    match = _HOLDING_RE.match(text)
    if not match:
        raise IntensionalStatementError(f"malformed holding: {text!r}")
    area = decode_interest_area(match.group("area"))
    delay = float(match.group("delay")) if match.group("delay") else 0.0
    return ServerHolding(CatalogLevel(match.group("level")), area, match.group("server"), delay)


@dataclass(frozen=True)
class IntensionalStatement:
    """``lhs  relation  rhs_1 ∪ rhs_2 ∪ ...``.

    ``EQUALS`` says the left holding is exactly the union of the right
    holdings; ``SUPERSET`` says the left holding contains that union (and
    possibly more) — the ``≥`` form of §4.1.
    """

    lhs: ServerHolding
    relation: Relation
    rhs: tuple[ServerHolding, ...]

    def __post_init__(self) -> None:
        if not self.rhs:
            raise IntensionalStatementError("a statement needs at least one right-hand holding")

    # -- applicability ------------------------------------------------------ #

    def applies_to(self, level: CatalogLevel, area: InterestArea) -> bool:
        """True when the statement constrains holdings relevant to a query.

        The statement is usable for a query over ``area`` at ``level`` when
        its left-hand side is at that level and its left-hand area covers
        the query area: then, within the query area, the left server's
        holdings are equal to (or a superset of) the union of the right
        servers' holdings.
        """
        return self.lhs.level == level and self.lhs.area.covers(area)

    def rhs_servers(self) -> list[str]:
        """Addresses on the right-hand side, in statement order."""
        return [holding.server for holding in self.rhs]

    @property
    def max_rhs_delay(self) -> float:
        """The largest staleness bound on the right-hand side."""
        return max(holding.delay_minutes for holding in self.rhs)

    # -- textual form ----------------------------------------------------------- #

    def to_text(self) -> str:
        rhs = " | ".join(holding.to_text() for holding in self.rhs)
        return f"{self.lhs.to_text()} {self.relation.value} {rhs}"

    @classmethod
    def parse(cls, text: str) -> "IntensionalStatement":
        """Parse the textual form produced by :meth:`to_text`."""
        for relation in (Relation.SUPERSET, Relation.EQUALS):
            token = f" {relation.value} "
            if token in text:
                left_text, right_text = text.split(token, 1)
                lhs = _parse_holding(left_text)
                rhs = tuple(_parse_holding(part) for part in right_text.split("|"))
                return cls(lhs, relation, rhs)
        raise IntensionalStatementError(f"no relation found in statement: {text!r}")

    def __str__(self) -> str:
        return self.to_text()
