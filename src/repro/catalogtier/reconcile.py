"""Authoritative-set reconciliation for rejoining replicas.

A replica that crashed and rejoined holds a stale authoritative view; the
group's survivors kept registering and pruning while it was gone.  Rejoin
therefore runs a reconciliation pass: the rejoiner asks a surviving group
member for its authoritative entries and merges them, and any *conflicting
authority* — the BGP-MOAS analogue from the continuous-query layer — is
surfaced as an explicit conflict record instead of being silently merged
into double-answering.

Two situations count as conflicts (same shape as the ``sub-conflict``
records :class:`repro.api.subscription.AuthorityConflict` is built from):

* **divergent claim** — the same server address is authoritative locally
  and remotely with areas neither of which covers the other: the two
  catalogs genuinely disagree about what that server owns.
* **overlapping origin** — two *different* servers are both authoritative
  for overlapping areas and are not members of the same replica group
  (same-group overlap is replication working as designed, not MOAS).

The merge itself never loses knowledge (:meth:`Catalog.register_server`
unions areas), so after reconciliation the rejoiner answers from the
group's superset view while the conflict records tell the operator which
authority claims need adjudication.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..catalog import Catalog, ServerEntry, canonical_address

__all__ = ["ReconcileResult", "reconcile_authoritative"]


@dataclass
class ReconcileResult:
    """What one reconciliation pass against one surviving replica did."""

    adopted: int = 0
    conflicts: list[dict] = field(default_factory=list)


def _conflict(rejoiner: str, publisher: str, authorities: Sequence[str], now: float) -> dict:
    return {
        "sub": f"recon:{rejoiner}",
        "publisher": publisher,
        "authorities": sorted(set(authorities)),
        "at_ms": round(now, 3),
    }


def reconcile_authoritative(
    local: Catalog,
    remote_entries: Sequence[ServerEntry],
    *,
    rejoiner: str,
    source: str,
    same_group: Callable[[str, str], bool],
    now: float,
) -> ReconcileResult:
    """Merge a survivor's authoritative entries into ``local``.

    ``same_group`` answers whether two addresses are siblings in one
    replica group (their overlapping authority is by design).  Conflicts
    are detected *before* merging, because the merge unions the divergent
    claims away.
    """
    result = ReconcileResult()
    for entry in remote_entries:
        address = canonical_address(entry.address)
        existing = local.servers.get(entry.address)

        if (
            existing is not None
            and existing.authoritative
            and entry.authoritative
            and not existing.area.covers(entry.area)
            and not entry.area.covers(existing.area)
        ):
            result.conflicts.append(
                _conflict(rejoiner, entry.address, [rejoiner, source], now)
            )

        if entry.authoritative:
            for other in local.servers.values():
                if canonical_address(other.address) == address:
                    continue
                if not other.authoritative:
                    continue
                if same_group(other.address, entry.address):
                    continue
                if other.area.overlaps(entry.area):
                    result.conflicts.append(
                        _conflict(
                            rejoiner, entry.address, [other.address, entry.address], now
                        )
                    )

        if existing is None or not existing.area.covers(entry.area):
            local.register_server(entry)
            result.adopted += 1
    return result
