"""The experiment CLI: ``python -m repro`` (or the ``repro`` console script).

Composes a scale-out scenario from command-line flags — topology × workload
× churn profile × routing strategy — runs it on the deterministic
simulator, prints a summary table, and writes the full JSON report.

The CLI is a thin argument parser over :mod:`repro.harness.scaleout`, which
itself builds and drives scenarios through the public client API
(:mod:`repro.api`): one :class:`~repro.api.Cluster` per run, queries issued
through :class:`~repro.api.Session` handles.  Reports are byte-identical
across transport backends and across the API rebase.

Examples
--------
Run the thousand-peer gene-expression scenario under moderate churn::

    python -m repro --topology scale-free --peers 1000 \
        --workload gene-expression --churn moderate

Run a named preset and keep the report somewhere specific::

    python -m repro --scenario smoke --output reports/smoke.json

List presets, topologies, workloads and churn profiles::

    python -m repro --list
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace

from ..errors import ReproError
from ..network import CHURN_PROFILES, TOPOLOGY_KINDS, TRANSPORT_KINDS
from .report import format_summary, write_json_report
from .scaleout import ROUTING_KINDS, WORKLOAD_KINDS, ScaleoutSpec, run_scaleout

__all__ = ["SCENARIOS", "build_parser", "main"]


SCENARIOS: dict[str, ScaleoutSpec] = {
    # A fast end-to-end sanity run (CI smoke, demos).
    "smoke": ScaleoutSpec(
        name="smoke", topology="small-world", peers=60, workload="garage-sale",
        churn="light", queries=5,
    ),
    # The headline thousand-peer run of the scale-out subsystem.
    "thousand-peers": ScaleoutSpec(
        name="thousand-peers", topology="scale-free", peers=1000,
        workload="gene-expression", churn="moderate",
    ),
    # Heavy churn on an ISP-like hierarchy: stresses rerouting + rejoin.
    "churn-storm": ScaleoutSpec(
        name="churn-storm", topology="hierarchical", peers=500,
        workload="garage-sale", churn="heavy", queries=20,
    ),
    # The Gnutella baseline at scale, for routed-vs-broadcast comparisons.
    "broadcast-baseline": ScaleoutSpec(
        name="broadcast-baseline", topology="scale-free", peers=500,
        workload="garage-sale", churn="none", routing="gnutella", queries=20,
    ),
    # --- adversarial presets (repro.workloads.adversarial) ----------------- #
    # Zipf-skewed query popularity: a handful of hot queries replayed often.
    "zipf-hotspot": ScaleoutSpec(
        name="zipf-hotspot", topology="small-world", peers=200,
        workload="garage-sale", churn="none", queries=20, query_mix="zipf",
    ),
    # Flash crowd: the tail of the workload collapses onto one hot query.
    "flash-crowd": ScaleoutSpec(
        name="flash-crowd", topology="small-world", peers=200,
        workload="garage-sale", churn="none", queries=20, query_mix="flash-crowd",
    ),
    # Free riders forward mutant plans but never evaluate them locally.
    "free-riders": ScaleoutSpec(
        name="free-riders", topology="small-world", peers=200,
        workload="garage-sale", churn="none", queries=20, free_rider_fraction=0.3,
    ),
    # Stale catalogs: a slice of peers crashed at t~0, catalogs never told.
    "stale-catalog": ScaleoutSpec(
        name="stale-catalog", topology="small-world", peers=200,
        workload="garage-sale", churn="none", queries=20, catalog_mode="stale",
    ),
    # Lying catalogs: registrations advertise swapped interest areas.
    "lying-catalog": ScaleoutSpec(
        name="lying-catalog", topology="small-world", peers=200,
        workload="garage-sale", churn="none", queries=20, catalog_mode="lying",
    ),
    # Correlated regional failures: whole namespace regions fail together.
    "regional-outage": ScaleoutSpec(
        name="regional-outage", topology="hierarchical", peers=200,
        workload="garage-sale", churn="regional", queries=20,
    ),
    # --- resilience presets (repro.network.faults + reliable delivery) ------ #
    # Every link drops 10% of its frames; the delivery protocol retries.
    "lossy-links": ScaleoutSpec(
        name="lossy-links", topology="small-world", peers=120,
        workload="garage-sale", churn="none", queries=12,
        fault_loss=0.10, reliable=True,
    ),
    # A timed bipartite cut mid-run; traffic re-flows once it heals.
    "partition-heal": ScaleoutSpec(
        name="partition-heal", topology="small-world", peers=120,
        workload="garage-sale", churn="none", queries=12,
        fault_partition=(800.0, 2_400.0), reliable=True,
    ),
    # Loss + duplication + reordering at once: the ack/dedupe stress test.
    "ack-storm": ScaleoutSpec(
        name="ack-storm", topology="small-world", peers=120,
        workload="garage-sale", churn="none", queries=12,
        fault_loss=0.15, fault_duplicate=0.15, fault_reorder=0.2, reliable=True,
    ),
    # --- continuous queries (flags.continuous_queries) ----------------------- #
    # Standing queries over a churning marketplace: 40 subscribers, delta
    # feeds driven by publisher mutation rounds, reliable delivery on.
    "subscription-feed": ScaleoutSpec(
        name="subscription-feed", topology="small-world", peers=120,
        workload="garage-sale", churn="light", queries=8,
        subscribers=40, mutation_rounds=4, reliable=True,
    ),
    # --- catalog tier (flags.catalog_tier + repro.catalogtier) --------------- #
    # Sharded, replicated catalog under fire: 4 shards x 3 replicas, light
    # churn, 10% link loss with reliable delivery, and one replica of
    # group 0 crashing mid-query then rejoining (reconciliation).
    "sharded-catalog": ScaleoutSpec(
        name="sharded-catalog", topology="small-world", peers=120,
        workload="garage-sale", churn="light", queries=12,
        catalog_shards=4, catalog_replicas=3, catalog_outages=1,
        fault_loss=0.10, reliable=True,
    ),
    # --- multicore (flags.multiprocess + repro.multicore) -------------------- #
    # The scenario sharded across 4 worker processes: contiguous peer
    # shards, wire-v2 relay frames between them, barrier-coordinated
    # windows.  Gated on sequence identity against the in-process run.
    "multicore": ScaleoutSpec(
        name="multicore", topology="small-world", peers=120,
        workload="garage-sale", churn="light", queries=12, workers=4,
    ),
}


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run a scale-out P2P mutant-query-plan experiment.",
    )
    parser.add_argument("--scenario", choices=sorted(SCENARIOS), default=None,
                        help="start from a named preset (flags below override it)")
    parser.add_argument("--topology", choices=TOPOLOGY_KINDS, default=None,
                        help="overlay shape (default: scale-free)")
    parser.add_argument("--peers", type=int, default=None,
                        help="number of data-serving peers (default: 1000)")
    parser.add_argument("--workload", choices=WORKLOAD_KINDS, default=None,
                        help="synthetic population (default: gene-expression)")
    parser.add_argument("--churn", choices=sorted(CHURN_PROFILES), default=None,
                        help="churn profile applied to data peers (default: none)")
    parser.add_argument("--routing", choices=ROUTING_KINDS, default=None,
                        help="query routing strategy (default: mqp)")
    parser.add_argument("--transport", choices=TRANSPORT_KINDS, default="sim",
                        help="delivery backend: deterministic simulator or real "
                             "asyncio TCP sockets on localhost (default: sim; "
                             "reports are byte-identical across backends)")
    parser.add_argument("--queries", type=int, default=None,
                        help="number of queries to issue (default: 12)")
    parser.add_argument("--seed", type=int, default=None,
                        help="master seed for the whole scenario (default: 11)")
    batching = parser.add_mutually_exclusive_group()
    batching.add_argument("--batch", dest="batch", action="store_true", default=None,
                          help="batched MQP processing (default)")
    batching.add_argument("--no-batch", dest="batch", action="store_false",
                          help="per-plan MQP processing (the pre-scale-out path)")
    parser.add_argument("--prefer", choices=("complete", "current", "fast"), default=None,
                        help="query preference of paper §4.3 (default: complete)")
    reliability = parser.add_mutually_exclusive_group()
    reliability.add_argument("--reliable", dest="reliable", action="store_true",
                             default=None,
                             help="per-hop acks + retransmission for query traffic "
                                  "(default: off, fire-and-forget)")
    reliability.add_argument("--no-reliable", dest="reliable", action="store_false",
                             help="fire-and-forget delivery (override a preset)")
    parser.add_argument("--fault-loss", type=float, default=None, metavar="P",
                        help="per-link frame loss probability in [0, 1) (default: 0)")
    parser.add_argument("--fault-duplicate", type=float, default=None, metavar="P",
                        help="per-link duplication probability (default: 0)")
    parser.add_argument("--fault-delay", type=float, default=None, metavar="P",
                        help="per-link delay-spike probability (default: 0)")
    parser.add_argument("--fault-reorder", type=float, default=None, metavar="P",
                        help="per-link reordering probability (default: 0)")
    parser.add_argument("--fault-partition", type=float, nargs=2, default=None,
                        metavar=("START_MS", "END_MS"),
                        help="timed bipartite partition window in simulated ms")
    parser.add_argument("--subscribers", type=int, default=None, metavar="N",
                        help="standing-query clients armed over the query areas "
                             "(default: 0, continuous queries off)")
    parser.add_argument("--mutation-rounds", type=int, default=None, metavar="N",
                        help="publisher mutation rounds driving the delta feeds "
                             "(default: 0; requires --subscribers)")
    parser.add_argument("--catalog-shards", type=int, default=None, metavar="N",
                        help="shard the catalog tier into N replica groups "
                             "(default: 0, tier off; requires --catalog-replicas)")
    parser.add_argument("--catalog-replicas", type=int, default=None, metavar="N",
                        help="index servers per shard's replica group "
                             "(default: 0; set together with --catalog-shards)")
    parser.add_argument("--catalog-outages", type=int, default=None, metavar="N",
                        help="replicas of group 0 to crash mid-query and rejoin "
                             "(default: 0; must leave a survivor)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="run the scenario across N worker processes "
                             "(flags.multiprocess; default: 0, in-process; "
                             "reports are sequence-identical, not byte-identical)")
    parser.add_argument("--output", default=None,
                        help="JSON report path (default: reports/<name>.json)")
    parser.add_argument("--list", action="store_true", dest="list_options",
                        help="list presets, topologies, workloads, churn profiles and exit")
    return parser


def _spec_from_args(args: argparse.Namespace) -> ScaleoutSpec:
    spec = SCENARIOS[args.scenario] if args.scenario else ScaleoutSpec()
    overrides = {
        key: value
        for key, value in {
            "topology": args.topology,
            "peers": args.peers,
            "workload": args.workload,
            "churn": args.churn,
            "routing": args.routing,
            "queries": args.queries,
            "seed": args.seed,
            "batch": args.batch,
            "prefer": args.prefer,
            "reliable": args.reliable,
            "fault_loss": args.fault_loss,
            "fault_duplicate": args.fault_duplicate,
            "fault_delay": args.fault_delay,
            "fault_reorder": args.fault_reorder,
            "fault_partition": (
                tuple(args.fault_partition) if args.fault_partition is not None else None
            ),
            "subscribers": args.subscribers,
            "mutation_rounds": args.mutation_rounds,
            "catalog_shards": args.catalog_shards,
            "catalog_replicas": args.catalog_replicas,
            "catalog_outages": args.catalog_outages,
            "workers": args.workers,
        }.items()
        if value is not None
    }
    if args.scenario is None and overrides:
        overrides.setdefault("name", "custom")
    spec = replace(spec, **overrides)
    if spec.name == "custom":
        descriptor = f"{spec.workload}-{spec.topology}-{spec.peers}p-{spec.churn}-{spec.routing}"
        spec = replace(spec, name=descriptor)
    return spec


def _list_options() -> str:
    lines = ["Named scenarios:"]
    for name in sorted(SCENARIOS):
        preset = SCENARIOS[name]
        lines.append(
            f"  {name:<20} {preset.workload} on {preset.topology}, "
            f"{preset.peers} peers, churn={preset.churn}, routing={preset.routing}"
        )
    lines.append(f"Topologies:      {', '.join(TOPOLOGY_KINDS)}")
    lines.append(f"Workloads:       {', '.join(WORKLOAD_KINDS)}")
    lines.append(f"Churn profiles:  {', '.join(sorted(CHURN_PROFILES))}")
    lines.append(f"Routing:         {', '.join(ROUTING_KINDS)}")
    lines.append(f"Transports:      {', '.join(TRANSPORT_KINDS)}")
    lines.append("Subcommands:     experiment (scenario x seed x repeat grids; "
                 "`repro experiment --help`)")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    ``repro experiment ...`` dispatches to the experiment-matrix subcommand
    (:mod:`repro.experiments.cli`); everything else is the single-run parser.
    """
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "experiment":
        from ..experiments.cli import main as experiment_main

        return experiment_main(arguments[1:])
    parser = build_parser()
    args = parser.parse_args(arguments)
    if args.list_options:
        print(_list_options())
        return 0

    spec = _spec_from_args(args)
    started = time.perf_counter()
    try:
        report = run_scaleout(spec, transport=args.transport)
    except ReproError as error:
        parser.error(str(error))  # exits with status 2
        return 2  # pragma: no cover - parser.error raises SystemExit
    elapsed = time.perf_counter() - started

    output = args.output or f"reports/{spec.name}.json"
    path = write_json_report(output, report)

    print(f"scenario {spec.name}: {report['population']['total_nodes']} nodes, "
          f"{len(report['queries'])} queries, churn={spec.churn} "
          f"({report['churn']['events']} events), transport={args.transport}")
    print(format_summary(report["traffic"], title="traffic"))
    if "processing" in report:
        print(format_summary(report["processing"], title="mqp processing"))
    if "resilience" in report:
        counters = {
            key: value
            for key, value in report["resilience"].items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
        print(format_summary(counters, title="resilience"))
    if "subscriptions" in report:
        print(format_summary(report["subscriptions"], title="subscriptions"))
    if "catalog_tier" in report:
        tier = dict(report["catalog_tier"])
        cache = tier.pop("answer_cache", {})
        print(format_summary(tier, title="catalog tier"))
        print(format_summary(cache, title="answer cache"))
    if "multicore" in report:
        multicore = dict(report["multicore"])
        multicore.pop("hlc", None)
        print(format_summary(multicore, title="multicore"))
    print(f"report written to {path} ({elapsed:.1f}s wall clock)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
