"""Plan interpreter: evaluate a (sub-)plan over locally available data.

This is the "Query Engine" box of Figure 2.  It walks a logical plan tree
bottom-up and produces the result collection.  Data for URL / URN leaves is
supplied by a *resolver* callback — the engine itself has no notion of the
network; the mutant-query-plan processor only hands it sub-plans whose
leaves are locally available.

Two execution modes share one operator algebra:

* :meth:`QueryEngine.stream` composes the pull-based ``stream_*`` operators
  into one iterator — results flow out as they are produced, and blocking
  operators buffer against a per-evaluation :class:`BufferBudget`
  (``max_buffered_items``) instead of materializing unbounded lists;
* :meth:`QueryEngine.evaluate` / :meth:`QueryEngine.materialize` return the
  full item list.  With :data:`repro.perf.flags`\\ ``.streaming_engine`` on
  (the default) the list is drained from the streaming iterator; with it
  off the seed's recursive list evaluator runs instead — the correctness
  oracle the differential suite compares against.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from ..errors import EvaluationError
from ..perf import flags
from ..xmlmodel import XMLElement
from ..algebra.operators import (
    Aggregate,
    ConjointOr,
    Difference,
    Display,
    Join,
    OrderBy,
    PlanNode,
    Project,
    Select,
    TopN,
    Union,
    URLRef,
    URNRef,
    VerbatimData,
)
from ..algebra.plan import QueryPlan
from . import operators as physical
from .operators import BufferBudget

__all__ = ["LeafResolver", "QueryEngine"]


LeafResolver = Callable[[PlanNode], Sequence[XMLElement] | None]
"""Callback mapping a URL/URN leaf to its local data items (or ``None``)."""


class QueryEngine:
    """Evaluates plan trees whose leaves are locally available.

    Parameters
    ----------
    resolver:
        Optional callback consulted for :class:`URLRef` and :class:`URNRef`
        leaves.  Returning ``None`` means the leaf is not available locally
        and evaluation fails with :class:`EvaluationError`.
    max_buffered_items:
        Memory budget shared by every pipeline-breaking operator of one
        evaluation (``None`` = unbounded).  A streaming evaluation that
        would buffer more raises
        :class:`~repro.errors.ResourceBudgetExceeded`.

    Cross-plan result caching lives one level up: the batched MQP pipeline
    keys sub-plans with :class:`~repro.engine.memo.EvaluationMemo` and only
    calls the engine on memo misses.
    """

    def __init__(
        self,
        resolver: LeafResolver | None = None,
        max_buffered_items: int | None = None,
    ) -> None:
        self.resolver = resolver
        self.max_buffered_items = max_buffered_items
        self.operators_evaluated = 0
        self.items_produced = 0
        self.budget: BufferBudget | None = None

    # -- public API ---------------------------------------------------------- #

    def stream(self, plan: QueryPlan | PlanNode) -> Iterator[XMLElement]:
        """Return a pull-based iterator over the plan's result items.

        The iterator tree is composed eagerly (leaves are resolved now, so
        an unavailable leaf fails here, exactly like :meth:`evaluate`), but
        items flow only as the caller pulls.  Each call installs a fresh
        :class:`BufferBudget` on :attr:`budget`; after (or during) the
        drain, ``budget.peak`` reports the high-water mark of buffered
        items across the plan's pipeline breakers.
        """
        node = plan.root if isinstance(plan, QueryPlan) else plan
        self.budget = BufferBudget(self.max_buffered_items)
        return self._drain(self._stream(node, self.budget))

    def _drain(self, iterator: Iterator[XMLElement]) -> Iterator[XMLElement]:
        for item in iterator:
            self.items_produced += 1
            yield item

    def evaluate(self, plan: QueryPlan | PlanNode) -> list[XMLElement]:
        """Evaluate a plan (or bare node) and return the result items.

        With ``flags.streaming_engine`` on, the list is drained from the
        streaming operators (skipping :meth:`stream`'s per-item counting
        wrapper — the length is known once the drain completes); with it
        off, the seed's recursive list evaluator runs.  Both produce
        identical item sequences.
        """
        node = plan.root if isinstance(plan, QueryPlan) else plan
        if flags.streaming_engine:
            self.budget = BufferBudget(self.max_buffered_items)
            items = list(self._stream(node, self.budget))
        else:
            items = self._evaluate(node)
        self.items_produced += len(items)
        return items

    def materialize(self, plan: QueryPlan | PlanNode) -> list[XMLElement]:
        """Alias of :meth:`evaluate` — the list-shaped shim consumed where a
        complete result set is required at once: the MQP sub-plan pipeline
        (batched or not, so :class:`~repro.engine.memo.EvaluationMemo` stores
        lists) and the centralized coordinator baseline."""
        return self.evaluate(plan)

    @property
    def peak_buffered_items(self) -> int:
        """High-water mark of pipeline-breaker buffers in the last stream."""
        return self.budget.peak if self.budget is not None else 0

    def evaluate_collection(self, plan: QueryPlan | PlanNode, tag: str = "result") -> XMLElement:
        """Evaluate and wrap the result items in a single collection element."""
        return XMLElement(tag, {}, [item.copy() for item in self.evaluate(plan)])

    # -- recursive evaluation -------------------------------------------------- #

    def _evaluate(self, node: PlanNode) -> list[XMLElement]:
        self.operators_evaluated += 1
        if isinstance(node, VerbatimData):
            return node.items
        if isinstance(node, (URLRef, URNRef)):
            return self._resolve_leaf(node)
        if isinstance(node, Select):
            return physical.evaluate_select(self._evaluate(node.child), node.predicate)
        if isinstance(node, Project):
            return physical.evaluate_project(self._evaluate(node.child), node.columns, node.item_tag)
        if isinstance(node, Join):
            return physical.evaluate_join(
                self._evaluate(node.left),
                self._evaluate(node.right),
                node.left_path,
                node.right_path,
                node.join_type,
                node.output_tag,
            )
        if isinstance(node, Union):
            return physical.evaluate_union([self._evaluate(child) for child in node.children])
        if isinstance(node, ConjointOr):
            # An unrewritten conjoint union falls back to its first branch
            # (the rewrite rules A | B -> A / A | B -> B make any branch valid).
            return self._evaluate(node.children[0])
        if isinstance(node, Difference):
            return physical.evaluate_difference(
                self._evaluate(node.left), self._evaluate(node.right), node.key_path
            )
        if isinstance(node, Aggregate):
            return physical.evaluate_aggregate(
                self._evaluate(node.child),
                node.function,
                node.value_path,
                node.group_path,
                node.output_tag,
            )
        if isinstance(node, OrderBy):
            return physical.evaluate_order_by(self._evaluate(node.child), node.path, node.descending)
        if isinstance(node, TopN):
            return physical.evaluate_top_n(
                self._evaluate(node.child), node.limit, node.path, node.descending
            )
        if isinstance(node, Display):
            return self._evaluate(node.child)
        raise EvaluationError(f"cannot evaluate plan node {type(node).__name__}")

    # -- streaming composition -------------------------------------------------- #

    def _stream(self, node: PlanNode, budget: BufferBudget) -> Iterator[XMLElement]:
        self.operators_evaluated += 1
        if isinstance(node, VerbatimData):
            # Iterate the collection in place: the pull pipeline never
            # mutates its input, so the defensive copy ``node.items`` makes
            # is pure overhead here.
            return iter(node.collection.children)
        if isinstance(node, (URLRef, URNRef)):
            return iter(self._resolve_leaf(node))
        if isinstance(node, Select):
            return physical.stream_select(self._stream(node.child, budget), node.predicate)
        if isinstance(node, Project):
            return physical.stream_project(
                self._stream(node.child, budget), node.columns, node.item_tag
            )
        if isinstance(node, Join):
            return physical.stream_join(
                self._stream(node.left, budget),
                self._stream(node.right, budget),
                node.left_path,
                node.right_path,
                node.join_type,
                node.output_tag,
                budget=budget,
            )
        if isinstance(node, Union):
            return physical.stream_union([self._stream(child, budget) for child in node.children])
        if isinstance(node, ConjointOr):
            # Same fallback as the materialized path: take the first branch.
            return self._stream(node.children[0], budget)
        if isinstance(node, Difference):
            return physical.stream_difference(
                self._stream(node.left, budget),
                self._stream(node.right, budget),
                node.key_path,
                budget=budget,
            )
        if isinstance(node, Aggregate):
            return physical.stream_aggregate(
                self._stream(node.child, budget),
                node.function,
                node.value_path,
                node.group_path,
                node.output_tag,
                budget=budget,
            )
        if isinstance(node, OrderBy):
            return physical.stream_order_by(
                self._stream(node.child, budget), node.path, node.descending, budget=budget
            )
        if isinstance(node, TopN):
            return physical.stream_top_n(
                self._stream(node.child, budget),
                node.limit,
                node.path,
                node.descending,
                budget=budget,
            )
        if isinstance(node, Display):
            return self._stream(node.child, budget)
        raise EvaluationError(f"cannot evaluate plan node {type(node).__name__}")

    def _resolve_leaf(self, leaf: PlanNode) -> list[XMLElement]:
        if self.resolver is not None:
            items = self.resolver(leaf)
            if items is not None:
                return list(items)
        description = getattr(leaf, "url", None) or getattr(leaf, "urn", None)
        raise EvaluationError(f"leaf {description!r} is not available locally")
