"""The multicore launcher: spawn workers, coordinate windows, merge reports.

:func:`run_multicore` is the parent side of ``flags.multiprocess``: it
spawns ``spec.workers`` processes of :mod:`repro.multicore.worker`, runs
the ``worker-hello`` / ``shard-map`` handshake over a control socket
(speaking the same wire-v2 frames as the relay path), then fronts a
:class:`~repro.multicore.barrier.BarrierService` whose reducer advances all
workers through bounded simulated-time windows:

* **drain** — relay frames are still in flight (Σsent ≠ Σreceived across
  workers); everyone re-polls their inbox and re-enters.
* **run until T** — all inboxes agree with all outboxes; T is the globally
  earliest pending event plus the conservative window (at most the minimum
  cross-link delay, so nothing sent inside the window can be due within it).
* **stop** — every worker is idle with nothing in flight.

Teardown is unconditional: whatever happens — a worker crashing mid-query,
a protocol error, a broken barrier — every child process is terminated,
waited on, and killed if it lingers, before the typed error propagates.
``tests/test_multicore.py`` holds the regression that kills a worker mid-run
and asserts a :class:`WorkerCrashed` instead of a hang.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import threading
from dataclasses import asdict
from typing import TYPE_CHECKING, Any

from ..network.latency import LatencyModel
from ..network.message import Message
from ..network.transport.wire import FrameEncoder
from .barrier import BarrierBroken, BarrierService
from .errors import MulticoreError, WorkerCrashed
from .relay import read_frame, send_frame
from .report import assemble_report

if TYPE_CHECKING:
    from ..harness.scaleout import ScaleoutSpec
    from ..network.transport.base import Transport

__all__ = ["run_multicore", "window_ms_for"]

_HANDSHAKE_TIMEOUT_S = 60.0
_REAP_TIMEOUT_S = 5.0


def window_ms_for(spec: "ScaleoutSpec") -> float:
    """The conservative lookahead window for ``spec``, in simulated ms.

    Safety argument: a window may run only events strictly before its end,
    and any message sent during it is delivered no sooner than the minimum
    cross-link propagation delay (``max(0.5, base - jitter)`` — link jitter
    is drawn in ``[-jitter, +jitter]`` and fault injection only ever *adds*
    delay).  MQP scenarios also synthesize ``peer-unreachable`` notices
    after the cluster's detection delay, so the window is capped there too.
    Hence every cross-shard frame sent in window k is due in window k+1 or
    later, and barrier-point injection never misses a delivery time.
    """
    latency = LatencyModel(seed=spec.seed)
    window = max(0.5, latency.base_latency_ms - latency.jitter_ms)
    if spec.routing == "mqp":
        # Cluster(notify_unreachable=True) default detection delay (5 ms).
        window = min(window, 5.0)
    return window


def run_multicore(
    spec: "ScaleoutSpec", transport: "Transport | str | None" = None
) -> dict[str, Any]:
    """Run ``spec`` across ``spec.workers`` processes; return the merged report."""
    workers = spec.workers
    if workers < 1:
        raise MulticoreError("run_multicore needs spec.workers >= 1")
    if transport is None:
        transport_kind = "sim"
    elif isinstance(transport, str):
        transport_kind = transport
    else:
        raise MulticoreError(
            "multicore runs select transports by name ('sim' or 'aio'); "
            "a live transport instance cannot be shipped to worker processes"
        )
    spec.validate()
    window = window_ms_for(spec)

    barrier_stats = {"windows": 0, "drains": 0}

    def reducer(payloads: dict[int, Any]) -> dict[str, Any]:
        total_sent = sum(entry["sent"] for entry in payloads.values())
        total_received = sum(entry["received"] for entry in payloads.values())
        if total_sent != total_received:
            barrier_stats["drains"] += 1
            return {"action": "drain"}
        nexts = [
            entry["next"] for entry in payloads.values() if entry["next"] is not None
        ]
        if not nexts:
            return {"action": "stop"}
        barrier_stats["windows"] += 1
        return {"action": "run", "until": min(nexts) + window}

    barrier = BarrierService(workers, reducer)
    results: dict[int, dict[str, Any]] = {}
    errors: dict[int, str] = {}
    lock = threading.Lock()

    def serve(wid: int, conn: socket.socket) -> None:
        encoder = FrameEncoder()
        try:
            while True:
                message, _ = read_frame(conn)
                if message.kind == "barrier-enter":
                    decision = barrier.enter(wid, message.payload)
                    send_frame(
                        conn,
                        Message(sender="launcher", recipient=f"mc:{wid}",
                                kind="barrier-release", payload=decision,
                                size_bytes=1),
                        None,
                        encoder,
                    )
                elif message.kind == "worker-report":
                    with lock:
                        results[wid] = message.payload
                    return
                elif message.kind == "worker-error":
                    with lock:
                        errors[wid] = "{error}\n{traceback}".format(**message.payload)
                    barrier.break_barrier(f"worker {wid} reported an error")
                    return
                else:
                    raise MulticoreError(
                        f"unexpected control frame {message.kind!r} from worker {wid}"
                    )
        except BarrierBroken:
            return  # another worker's failure tore the round down
        except (EOFError, OSError, MulticoreError) as failure:
            with lock:
                if wid not in results:
                    errors.setdefault(wid, f"control connection lost: {failure}")
            barrier.break_barrier(f"worker {wid} control connection lost")

    server = socket.create_server(("127.0.0.1", 0))
    server.settimeout(_HANDSHAKE_TIMEOUT_S)
    control_port = server.getsockname()[1]
    environment = dict(os.environ)
    source_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    existing = environment.get("PYTHONPATH")
    environment["PYTHONPATH"] = (
        source_root if not existing else source_root + os.pathsep + existing
    )

    processes: list[subprocess.Popen] = []
    connections: dict[int, socket.socket] = {}
    threads: list[threading.Thread] = []
    try:
        for wid in range(workers):
            processes.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro.multicore.worker",
                        "--worker", str(wid),
                        "--workers", str(workers),
                        "--control", f"127.0.0.1:{control_port}",
                    ],
                    env=environment,
                )
            )

        relay_ports: dict[int, int] = {}
        for _ in range(workers):
            try:
                conn, _ = server.accept()
            except socket.timeout:
                raise MulticoreError(
                    f"only {len(connections)}/{workers} workers reported in "
                    f"within {_HANDSHAKE_TIMEOUT_S:.0f}s"
                ) from None
            hello, _ = read_frame(conn)
            if hello.kind != "worker-hello":
                raise MulticoreError(f"expected worker-hello, got {hello.kind!r}")
            wid = hello.payload["worker"]
            connections[wid] = conn
            relay_ports[wid] = hello.payload["relay_port"]

        shard_map = {
            "ports": relay_ports,
            "window": window,
            "spec": asdict(spec),
            "transport": transport_kind,
        }
        handshake_encoder = FrameEncoder()
        for wid, conn in sorted(connections.items()):
            send_frame(
                conn,
                Message(sender="launcher", recipient=f"mc:{wid}",
                        kind="shard-map", payload=shard_map, size_bytes=1),
                None,
                handshake_encoder,
            )

        for wid, conn in sorted(connections.items()):
            thread = threading.Thread(
                target=serve, args=(wid, conn), name=f"mc-serve-{wid}", daemon=True
            )
            threads.append(thread)
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        for conn in connections.values():
            try:
                conn.close()
            except OSError:
                pass
        server.close()
        _reap(processes)

    if errors:
        first = min(errors)
        raise WorkerCrashed(first, errors[first])
    missing = [wid for wid in range(workers) if wid not in results]
    if missing:
        raise WorkerCrashed(missing[0], "exited without a report or an error")

    fragments = [results[wid] for wid in range(workers)]
    static = fragments[0].get("static")
    if static is None:
        raise MulticoreError("worker 0's fragment is missing the static blocks")
    multicore_block = {
        "workers": workers,
        "window_ms": round(window, 3),
        "windows": barrier_stats["windows"],
        "drains": barrier_stats["drains"],
        "barriers": barrier.rounds_completed,
        "relay_frames": sum(f["relay"]["frames_sent"] for f in fragments),
        "relay_bytes": sum(f["relay"]["bytes_sent"] for f in fragments),
        "late_injections": sum(f["relay"]["late_injections"] for f in fragments),
        "run_wall_s": round(max(f["run_wall_s"] for f in fragments), 3),
        "hlc": {
            "physical": round(max(f["hlc"]["physical"] for f in fragments), 3),
            "logical": max(f["hlc"]["logical"] for f in fragments),
        },
    }
    return assemble_report(static, fragments, multicore_block)


def _reap(processes: list[subprocess.Popen]) -> None:
    """Terminate, wait, and if necessary kill every child.  Never raises."""
    for process in processes:
        if process.poll() is None:
            try:
                process.terminate()
            except OSError:
                pass
    for process in processes:
        try:
            process.wait(timeout=_REAP_TIMEOUT_S)
        except subprocess.TimeoutExpired:
            try:
                process.kill()
            except OSError:
                pass
            process.wait()
        except OSError:
            pass
