"""Setuptools entry point.

All metadata lives here (rather than in ``pyproject.toml``) so that
editable installs work in offline environments whose setuptools predates
full PEP 660 support (no ``wheel`` package available).
"""

import pathlib

from setuptools import find_packages, setup

ROOT = pathlib.Path(__file__).parent
README = ROOT / "README.md"

setup(
    name="repro-p2p-mqp",
    version="1.5.0",
    description=(
        "Reproduction of 'Distributed Query Processing and Catalogs for "
        "Peer-to-Peer Systems' (CIDR 2003): mutant query plans, "
        "multi-hierarchic namespaces, a thousand-peer simulation harness, "
        "a pluggable transport layer with a real asyncio TCP backend, and "
        "a first-class client API (repro.api)"
    ),
    long_description=README.read_text(encoding="utf-8") if README.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    # PEP 561: the package ships inline types (py.typed marker).
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=[
        "numpy",
        "networkx",
    ],
    extras_require={
        "test": ["pytest", "hypothesis"],
        "bench": ["pytest", "pytest-benchmark"],
        # CI toolchain: pinned so lint/typecheck failures mean code
        # changes, not tool drift.  pytest-timeout guards the real-socket
        # transport tests against hung sockets wedging the suite.
        "dev": [
            "pytest",
            "pytest-benchmark",
            "pytest-timeout==2.3.1",
            "hypothesis",
            "ruff==0.8.4",
            "mypy==1.13.0",
        ],
    },
    entry_points={
        "console_scripts": [
            "repro = repro.harness.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Programming Language :: Python :: 3.13",
        "Topic :: Database",
        "Topic :: System :: Distributed Computing",
    ],
)
