"""SUBSCRIPTIONS — delta feeds vs snapshot re-query polling.

Two claims from the continuous-query layer (``flags.continuous_queries``),
both measured in *simulated* milliseconds on the scale-out harness:

* **Publish-to-delta latency** — at the thousand-peer configuration, a
  mutation at a publisher reaches an armed subscriber as a ``delta-chunk``
  in propagation time (one direct reliable transfer).  The alternative —
  polling the same plan as a snapshot re-query at the harness's default
  cadence — pays half the polling interval in expected staleness *plus*
  the full routed round-trip (index hops, batching window, result
  delivery).  Gate: deltas arrive >= 5x sooner than the poller observes
  the change.  The raw re-query round-trip is recorded alongside as
  context (``snapshot_requery_ms``), so the figure separates the staleness
  term from the routing term.
* **Fan-out throughput** — delivering mutation rounds to 100 armed
  subscribers, each delta its own acked transfer, keeps aggregate
  items-per-simulated-ms within 0.9x of the streamed one-shot baseline
  (``flags.streaming_results``: every subscriber drains the same plan as
  chunked result frames).  Deltas skip the plan-routing leg, streams
  amortize framing over multi-item chunks; the gate checks the trade
  never costs the standing-query path more than 10%.

Both cells run with ``flags.reliable_delivery`` on (subscription control
and delta traffic ride the ack/retry protocol), matching how the feature
is meant to be deployed.

``REPRO_BENCH_QUICK=1`` shrinks both populations for CI smoke runs.
"""

from __future__ import annotations

import pytest

import benchjson
from conftest import emit
from repro.algebra.serialization import parse_plan
from repro.api.subscription import Subscription
from repro.harness.report import format_table
from repro.harness.scaleout import ScaleoutSpec, build_scaleout_scenario
from repro.perf import overrides

QUICK = benchjson.quick_mode()
BENCH = "subscriptions"

LATENCY_PEERS = 200 if QUICK else 1000
LATENCY_ROUNDS = 3 if QUICK else 5
FANOUT_PEERS = 60 if QUICK else 120
FANOUT_SUBSCRIBERS = 40 if QUICK else 100
FANOUT_ROUNDS = 3 if QUICK else 6
POLL_INTERVAL_MS = 400.0  # the harness's default query cadence

SPEEDUP_GATE = 5.0
FANOUT_GATE = 0.9


def _delivered(scenario) -> int:
    """Total deltas recorded across every subscriber in the scenario."""
    total = 0
    cluster = scenario.cluster
    for address, sub_id in zip(
        scenario.subscriber_addresses, scenario.subscription_ids
    ):
        state = cluster.session(address).peer.subscription_state(sub_id)
        if state is not None:
            total += len(state.deltas)
    return total


def _publish_round(scenario) -> int:
    """One mutation round: every hot publisher upserts its first item."""
    cluster = scenario.cluster
    items_by_address = {peer.address: peer.items for peer in scenario.data_peers}
    mutated = 0
    for address in scenario.hot_publishers:
        items = items_by_address[address]
        if items:
            cluster.session(address).update("items", [items[0].copy()])
            mutated += 1
    return mutated


@pytest.fixture(scope="module")
def latency_cell():
    """One subscriber inside the big population; measure delta vs re-query."""
    with overrides(continuous_queries=True, reliable_delivery=True):
        spec = ScaleoutSpec(
            name="sub-latency", topology="small-world", peers=LATENCY_PEERS,
            workload="garage-sale", churn="none", queries=4,
            subscribers=1, reliable=True,
        )
        scenario = build_scaleout_scenario(spec)
        try:
            assert scenario.hot_publishers, "no data peer overlaps the subscribed area"
            cluster, network = scenario.cluster, scenario.network
            session = cluster.session(scenario.subscriber_addresses[0])
            sub_id = scenario.subscription_ids[0]

            delta_latencies: list[float] = []
            for _ in range(LATENCY_ROUNDS):
                seen = len(session.peer.subscription_state(sub_id).deltas)
                published_at = network.now
                assert _publish_round(scenario) > 0
                cluster.run_until_idle()
                deltas = session.peer.subscription_state(sub_id).deltas
                assert len(deltas) > seen, "mutation produced no delta"
                delta_latencies.append(deltas[-1].received_at - published_at)

            # The subscribed plan is the predicate-less area shape; as a
            # one-shot query it needs ``flags.eager_area_plans`` (leaf
            # pinning) to complete instead of bouncing to max_hops.  The
            # poller gets the flag — the comparison should not lean on the
            # baseline's known worst case.
            subscription = Subscription(session, sub_id)
            snapshot_latencies: list[float] = []
            with overrides(eager_area_plans=True):
                for _ in range(LATENCY_ROUNDS):
                    issued_at = network.now
                    result = subscription.snapshot()
                    assert result.count > 0
                    snapshot_latencies.append(network.now - issued_at)

            yield {
                "delta_ms": sum(delta_latencies) / len(delta_latencies),
                "snapshot_ms": sum(snapshot_latencies) / len(snapshot_latencies),
                "rounds": LATENCY_ROUNDS,
                "deltas": len(session.peer.subscription_state(sub_id).deltas),
            }
        finally:
            scenario.cluster.close()


@pytest.fixture(scope="module")
def fanout_cell():
    """Mutation rounds fanned out to the full subscriber population, then
    the same plans drained once as streamed one-shot queries."""
    with overrides(continuous_queries=True, reliable_delivery=True):
        spec = ScaleoutSpec(
            name="sub-fanout", topology="small-world", peers=FANOUT_PEERS,
            workload="garage-sale", churn="none", queries=4,
            subscribers=FANOUT_SUBSCRIBERS, reliable=True,
        )
        scenario = build_scaleout_scenario(spec)
        try:
            assert scenario.hot_publishers, "no data peer overlaps the subscribed areas"
            cluster, network = scenario.cluster, scenario.network

            # All rounds go in flight together and the clock runs once to
            # drain — the feed pipelines (per-publisher frames are ordered
            # by sequence number, distinct publishers deliver in parallel),
            # mirroring how the streamed baseline below drains all its
            # queries concurrently.
            before = _delivered(scenario)
            started = network.now
            for _ in range(FANOUT_ROUNDS):
                _publish_round(scenario)
            cluster.run_until_idle()
            delta_items = _delivered(scenario) - before
            delta_ms = network.now - started

            # streaming_results: chunked result frames (the baseline under
            # test); eager_area_plans: lets the predicate-less area shape
            # complete as a one-shot query (see the latency cell).
            with overrides(streaming_results=True, eager_area_plans=True):
                started = network.now
                handles = []
                for address, sub_id in zip(
                    scenario.subscriber_addresses, scenario.subscription_ids
                ):
                    session = cluster.session(address)
                    document = session.peer.subscription_state(sub_id).document
                    handles.append(session.submit(parse_plan(document)))
                cluster.run_until_idle()
                streamed_items = sum(handle.result().count for handle in handles)
                streamed_ms = network.now - started

            yield {
                "delta_items": delta_items,
                "delta_ms": delta_ms,
                "streamed_items": streamed_items,
                "streamed_ms": streamed_ms,
            }
        finally:
            scenario.cluster.close()


def test_publish_to_delta_beats_polling(latency_cell):
    """Gate: deltas beat snapshot re-query polling by >= 5x."""
    delta_ms = latency_cell["delta_ms"]
    snapshot_ms = latency_cell["snapshot_ms"]
    # A poller at cadence T observes a mutation T/2 late on average, then
    # pays the re-query round-trip before it holds the changed answer.
    poll_ms = POLL_INTERVAL_MS / 2.0 + snapshot_ms
    speedup = poll_ms / delta_ms

    emit(
        f"SUBSCRIPTIONS: publish-to-delta vs snapshot re-query polling "
        f"({LATENCY_PEERS} peers, {latency_cell['rounds']} mutation rounds)",
        format_table(
            [
                {"path": "delta-chunk push", "latency_ms": round(delta_ms, 3)},
                {"path": "snapshot re-query (round-trip)", "latency_ms": round(snapshot_ms, 3)},
                {"path": f"polling @ {POLL_INTERVAL_MS:g}ms cadence", "latency_ms": round(poll_ms, 3)},
                {"path": "speedup", "latency_ms": round(speedup, 2)},
            ],
            ["path", "latency_ms"],
            precision=3,
        ),
    )

    benchjson.record_metric(
        BENCH, "publish_to_delta_ms", delta_ms, unit="sim_ms", direction="lower",
        compare=True, peers=LATENCY_PEERS, rounds=latency_cell["rounds"],
    )
    benchjson.record_metric(
        BENCH, "snapshot_requery_ms", snapshot_ms, unit="sim_ms",
        direction="lower", compare=False, peers=LATENCY_PEERS,
    )
    benchjson.record_metric(
        BENCH, "publish_to_delta_speedup", speedup, unit="ratio",
        direction="higher", compare=True, gate_min=SPEEDUP_GATE,
        peers=LATENCY_PEERS, poll_interval_ms=POLL_INTERVAL_MS,
    )

    assert speedup >= SPEEDUP_GATE


def test_fanout_keeps_pace_with_streaming(fanout_cell):
    """Gate: per-delta delivery stays within 0.9x of streamed throughput."""
    delta_rate = fanout_cell["delta_items"] / fanout_cell["delta_ms"]
    streamed_rate = fanout_cell["streamed_items"] / fanout_cell["streamed_ms"]
    ratio = delta_rate / streamed_rate

    emit(
        f"SUBSCRIPTIONS: delta fan-out to {FANOUT_SUBSCRIBERS} subscribers vs "
        f"streamed one-shot delivery ({FANOUT_PEERS} peers)",
        format_table(
            [
                {
                    "path": "delta fan-out",
                    "items": fanout_cell["delta_items"],
                    "sim_ms": round(fanout_cell["delta_ms"], 1),
                    "items_per_ms": round(delta_rate, 4),
                },
                {
                    "path": "streamed one-shot",
                    "items": fanout_cell["streamed_items"],
                    "sim_ms": round(fanout_cell["streamed_ms"], 1),
                    "items_per_ms": round(streamed_rate, 4),
                },
                {"path": "ratio", "items_per_ms": round(ratio, 3)},
            ],
            ["path", "items", "sim_ms", "items_per_ms"],
            precision=4,
        ),
    )

    benchjson.record_metric(
        BENCH, "delta_fanout_items_per_ms", delta_rate, unit="items/sim_ms",
        direction="higher", compare=True, subscribers=FANOUT_SUBSCRIBERS,
        peers=FANOUT_PEERS, rounds=FANOUT_ROUNDS,
    )
    benchjson.record_metric(
        BENCH, "streamed_baseline_items_per_ms", streamed_rate,
        unit="items/sim_ms", direction="higher", compare=False,
        subscribers=FANOUT_SUBSCRIBERS, peers=FANOUT_PEERS,
    )
    benchjson.record_metric(
        BENCH, "fanout_throughput_ratio", ratio, unit="ratio",
        direction="higher", compare=True, gate_min=FANOUT_GATE,
        subscribers=FANOUT_SUBSCRIBERS, peers=FANOUT_PEERS,
    )

    assert ratio >= FANOUT_GATE


def test_cells_are_nondegenerate(latency_cell, fanout_cell):
    # The latency cell must actually deliver one delta per round, and the
    # fan-out cell must reach a real fraction of the subscriber population
    # — otherwise the ratios above gate noise, not the delivery path.
    assert latency_cell["deltas"] >= latency_cell["rounds"]
    assert latency_cell["delta_ms"] > 0
    assert fanout_cell["delta_items"] >= FANOUT_SUBSCRIBERS
    assert fanout_cell["streamed_items"] >= FANOUT_SUBSCRIBERS


if __name__ == "__main__":
    raise SystemExit(benchjson.run_as_script(__file__))
