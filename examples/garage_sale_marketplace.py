"""A larger garage-sale marketplace: strategy comparison and QoS tradeoffs.

Run with::

    python examples/garage_sale_marketplace.py

Generates a synthetic marketplace (sellers with Zipf-skewed city and
category specialties), runs the same query batch under catalog-routed
mutant query plans, Gnutella-style broadcast, a Napster-style central
index, and routing indices, and prints the comparison table.  It then shows
the §4.3 completeness/currency/latency tradeoff for a replicated deployment
under different time budgets.
"""

from __future__ import annotations

from repro.catalog import (
    Binder,
    Catalog,
    CollectionRef,
    IntensionalStatement,
    ServerEntry,
    ServerRole,
)
from repro.harness import compare_routing_strategies, format_table
from repro.mqp import QueryPreferences
from repro.qos import TradeoffPlanner
from repro.workloads import GarageSaleConfig, GarageSaleWorkload, QueryWorkload


def strategy_comparison() -> None:
    workload = GarageSaleWorkload(GarageSaleConfig(sellers=20, mean_items_per_seller=8, seed=7))
    queries = QueryWorkload(workload.namespace, seed=19).batch(5)
    print(f"Marketplace: {len(workload.sellers)} sellers, {len(workload.all_items())} items, 5 queries\n")
    rows = compare_routing_strategies(workload, queries, gnutella_horizon=3)
    print(
        format_table(
            rows,
            ["strategy", "messages", "bytes", "mean_peers_per_query", "mean_latency_ms", "mean_recall"],
            title="Routing strategy comparison",
        )
    )


def qos_tradeoffs() -> None:
    workload = GarageSaleWorkload(GarageSaleConfig(sellers=4, seed=7))
    namespace = workload.namespace
    portland = namespace.area(["USA/OR/Portland", "*"])
    catalog = Catalog("client")
    for address in ("archive:9020", "mirror-a:9020", "mirror-b:9020"):
        catalog.register_server(
            ServerEntry(address, ServerRole.BASE, portland, collections=[CollectionRef(address, "/items")])
        )
    catalog.register_statement(
        IntensionalStatement.parse(
            "base[(USA.OR.Portland,*)]@archive:9020 >= base[(USA.OR.Portland,*)]@mirror-a:9020{30}"
        )
    )
    catalog.register_statement(
        IntensionalStatement.parse(
            "base[(USA.OR.Portland,*)]@archive:9020 >= base[(USA.OR.Portland,*)]@mirror-b:9020{30}"
        )
    )
    binding = Binder(catalog).bind_area(namespace.area(["USA/OR/Portland", "Music/CDs"]))
    planner = TradeoffPlanner(per_server_latency_ms=60, base_latency_ms=40)

    rows = []
    for budget in (120, 250, None):
        for prefer in ("complete", "current", "fast"):
            option = planner.choose(binding, QueryPreferences(target_time_ms=budget, prefer=prefer))
            rows.append(
                {
                    "budget_ms": budget if budget is not None else "unbounded",
                    "prefer": prefer,
                    "servers": option.alternative.server_count,
                    "latency_ms": option.predicted_latency_ms,
                    "staleness_min": option.staleness_minutes,
                    "completeness": option.completeness,
                }
            )
    print()
    print(format_table(rows, title="Completeness / currency / latency tradeoffs (section 4.3)"))


def main() -> None:
    strategy_comparison()
    qos_tradeoffs()


if __name__ == "__main__":
    main()
