"""Traffic accounting for simulated experiments.

Every benchmark reports some subset of: messages sent, bytes moved, how many
distinct peers a query touched, and end-to-end latency.  The
:class:`NetworkMetrics` object collects these as messages flow through the
:class:`~repro.network.network.Network`, and offers simple reductions used
by the experiment harness.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .faults import FaultOutcome

__all__ = ["NetworkMetrics", "QueryTrace"]


@dataclass
class QueryTrace:
    """Per-query record of the peers visited and the outcome."""

    query_id: str
    issued_at: float = 0.0
    completed_at: float | None = None
    visited: list[str] = field(default_factory=list)
    messages: int = 0
    bytes: int = 0
    answers: int = 0
    expected_answers: int | None = None
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def latency_ms(self) -> float | None:
        """End-to-end simulated latency, when the query completed."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.issued_at

    @property
    def distinct_peers(self) -> int:
        """Number of distinct peers that handled the query."""
        return len(set(self.visited))

    @property
    def recall(self) -> float | None:
        """Fraction of the expected answers actually returned."""
        if self.expected_answers is None:
            return None
        if self.expected_answers == 0:
            return 1.0
        return min(1.0, self.answers / self.expected_answers)


@dataclass
class NetworkMetrics:
    """Global counters plus per-kind and per-query breakdowns."""

    messages_sent: int = 0
    bytes_sent: int = 0
    messages_by_kind: Counter = field(default_factory=Counter)
    bytes_by_kind: Counter = field(default_factory=Counter)
    messages_by_sender: Counter = field(default_factory=Counter)
    traces: dict[str, QueryTrace] = field(default_factory=dict)
    dropped_messages: int = 0
    # Fault-injection accounting (repro.network.faults).  All zero — and
    # absent from summary() — when no FaultPlan is active, so flag-off
    # reports stay byte-identical to pre-fault builds.
    fault_losses_by_kind: Counter = field(default_factory=Counter)
    fault_partitioned: int = 0
    fault_duplicates: int = 0
    fault_delays: int = 0
    fault_reorders: int = 0
    # Dead-letter accounting: undeliverable messages a peer retained for
    # inspection, broken down by kind.  Counts survive buffer eviction
    # (the per-peer buffers are capped), so they stay exact on long runs.
    dead_letters_by_kind: Counter = field(default_factory=Counter)

    def record_send(self, message: Message) -> None:
        """Account for one message entering the network."""
        self.messages_sent += 1
        self.bytes_sent += message.size_bytes
        self.messages_by_kind[message.kind] += 1
        self.bytes_by_kind[message.kind] += message.size_bytes
        self.messages_by_sender[message.sender] += 1

    def record_drop(self, message: Message) -> None:
        """Account for a message that could not be delivered."""
        self.dropped_messages += 1

    def record_fault(self, message: Message, outcome: "FaultOutcome") -> None:
        """Account for an injected link fault (loss, duplication, delay)."""
        if outcome.partitioned:
            self.fault_partitioned += 1
        elif outcome.lost:
            self.fault_losses_by_kind[message.kind] += 1
        if outcome.duplicated:
            self.fault_duplicates += 1
        if outcome.delayed:
            self.fault_delays += 1
        if outcome.reordered:
            self.fault_reorders += 1

    def record_dead_letter(self, message: Message) -> None:
        """Account for a message a peer dead-lettered, by kind."""
        self.dead_letters_by_kind[message.kind] += 1

    def fault_summary(self) -> dict[str, object]:
        """The injected-fault block of a scenario report (deterministic order)."""
        return {
            "lost": int(sum(self.fault_losses_by_kind.values())),
            "lost_by_kind": {
                kind: int(count)
                for kind, count in sorted(self.fault_losses_by_kind.items())
            },
            "partitioned": self.fault_partitioned,
            "duplicated": self.fault_duplicates,
            "delayed": self.fault_delays,
            "reordered": self.fault_reorders,
        }

    # -- per-query traces ---------------------------------------------------- #

    def trace(self, query_id: str) -> QueryTrace:
        """Return (creating if needed) the trace for ``query_id``."""
        if query_id not in self.traces:
            self.traces[query_id] = QueryTrace(query_id)
        return self.traces[query_id]

    def completed_traces(self) -> list[QueryTrace]:
        """Traces whose query produced a result."""
        return [trace for trace in self.traces.values() if trace.completed_at is not None]

    # -- reductions ------------------------------------------------------------ #

    def mean_latency_ms(self) -> float:
        """Mean end-to-end latency across completed queries (0 when none)."""
        latencies = [trace.latency_ms for trace in self.completed_traces()]
        values = [latency for latency in latencies if latency is not None]
        return sum(values) / len(values) if values else 0.0

    def mean_messages_per_query(self) -> float:
        """Mean number of messages per traced query."""
        if not self.traces:
            return 0.0
        return sum(trace.messages for trace in self.traces.values()) / len(self.traces)

    def mean_peers_per_query(self) -> float:
        """Mean number of distinct peers contacted per traced query."""
        if not self.traces:
            return 0.0
        return sum(trace.distinct_peers for trace in self.traces.values()) / len(self.traces)

    def mean_recall(self) -> float:
        """Mean recall across traces that declared an expected answer count."""
        recalls = [trace.recall for trace in self.traces.values() if trace.recall is not None]
        return sum(recalls) / len(recalls) if recalls else 0.0

    def per_peer_load(self) -> dict[str, int]:
        """Messages sent per peer — used for the load-skew comparisons."""
        return dict(self.messages_by_sender)

    def summary(self) -> dict[str, float]:
        """A flat summary dictionary used by the report tables."""
        return {
            "messages": float(self.messages_sent),
            "bytes": float(self.bytes_sent),
            "dropped": float(self.dropped_messages),
            "queries": float(len(self.traces)),
            "mean_latency_ms": self.mean_latency_ms(),
            "mean_messages_per_query": self.mean_messages_per_query(),
            "mean_peers_per_query": self.mean_peers_per_query(),
            "mean_recall": self.mean_recall(),
        }
