"""Conventional role classes built on :class:`QueryPeer` (paper §3.2)."""

from __future__ import annotations

from ..catalog import ServerRole
from ..namespace import InterestArea, MultiHierarchicNamespace
from .peer import QueryPeer

__all__ = ["BaseServer", "IndexServer", "MetaIndexServer", "ClientPeer"]


class BaseServer(QueryPeer):
    """A peer that "maintains or replicates named collections of data within an interest area"."""

    def __init__(
        self,
        address: str,
        namespace: MultiHierarchicNamespace,
        interest_area: InterestArea,
    ) -> None:
        super().__init__(address, namespace, roles=(ServerRole.BASE,), interest_area=interest_area)


class IndexServer(QueryPeer):
    """A peer that "keeps track of base servers, and other index servers
    with interest areas overlapping its own"."""

    def __init__(
        self,
        address: str,
        namespace: MultiHierarchicNamespace,
        interest_area: InterestArea,
        authoritative: bool = True,
    ) -> None:
        super().__init__(
            address,
            namespace,
            roles=(ServerRole.INDEX,),
            interest_area=interest_area,
            authoritative=authoritative,
        )


class MetaIndexServer(QueryPeer):
    """An index server that maintains only multi-hierarchic namespace indices.

    Meta-index servers "can afford to cover much larger interest areas than
    index servers, because they only maintain multi-hierarchic namespace
    indices": when registrations arrive, the detailed collection lists are
    dropped and only the (address, role, interest area) triple is retained.
    """

    def __init__(
        self,
        address: str,
        namespace: MultiHierarchicNamespace,
        interest_area: InterestArea | None = None,
        authoritative: bool = True,
    ) -> None:
        super().__init__(
            address,
            namespace,
            roles=(ServerRole.META_INDEX,),
            interest_area=interest_area or namespace.top_area(),
            authoritative=authoritative,
        )

    def _handle_register(self, message) -> None:  # noqa: D401 - see class docstring
        payload = message.payload
        payload.entry.collections = []
        super()._handle_register(message)


class ClientPeer(QueryPeer):
    """A peer used (primarily) to issue queries and receive results."""

    def __init__(
        self,
        address: str,
        namespace: MultiHierarchicNamespace,
        interest_area: InterestArea | None = None,
    ) -> None:
        super().__init__(
            address,
            namespace,
            roles=(ServerRole.CLIENT,),
            interest_area=interest_area or namespace.top_area(),
        )
