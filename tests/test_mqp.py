"""Tests for mutant query plans: provenance, wire format, policy, processor."""

import pytest

from repro.algebra import PlanBuilder
from repro.catalog import (
    Catalog,
    CollectionRef,
    NamedResourceEntry,
    ServerEntry,
    ServerRole,
)
from repro.errors import PlanError
from repro.mqp import (
    MQPProcessor,
    MutantQueryPlan,
    PolicyManager,
    ProcessingAction,
    ProvenanceAction,
    ProvenanceLog,
    QueryPreferences,
)
from repro.namespace import InterestAreaURN


class TestProvenance:
    def test_records_and_queries(self):
        log = ProvenanceLog()
        log.add("a:1", ProvenanceAction.BOUND, 1.0, detail="urn:ForSale:Portland-CDs")
        log.add("b:1", ProvenanceAction.EVALUATED, 2.0, detail="select->3 items")
        log.add("b:1", ProvenanceAction.FORWARDED, 3.0, detail="c:1")
        assert log.visited_servers() == ["a:1", "b:1"]
        assert len(log.actions_by("b:1")) == 2
        assert log.hop_count() == 1
        assert len(log.evaluations()) == 1
        assert log.servers_that_bound("urn:ForSale:Portland-CDs") == ["a:1"]

    def test_staleness_tracking(self):
        log = ProvenanceLog()
        log.add("a:1", ProvenanceAction.BOUND, 1.0, staleness_minutes=30)
        log.add("b:1", ProvenanceAction.BOUND, 2.0, staleness_minutes=5)
        assert log.max_staleness() == 30

    def test_xml_roundtrip(self):
        log = ProvenanceLog()
        log.add("a:1", ProvenanceAction.BOUND, 1.5, detail="urn:X:y", staleness_minutes=10)
        log.add("b:1", ProvenanceAction.DELIVERED, 2.25, detail="client:1")
        restored = ProvenanceLog.from_xml(log.to_xml())
        assert len(restored) == 2
        assert restored.records[0].staleness_minutes == 10
        assert restored.records[1].action is ProvenanceAction.DELIVERED

    def test_spoof_detection(self):
        """§5.1: a resource never bound by anyone is suspicious."""
        log = ProvenanceLog()
        log.add("S:1", ProvenanceAction.BOUND, 1.0, detail="urn:ForSale:A")
        suspicious = log.suspicious_resources(["urn:ForSale:A", "urn:ForSale:B"])
        assert suspicious == ["urn:ForSale:B"]


class TestPreferencesAndWireFormat:
    def test_preferences_validation(self):
        with pytest.raises(PlanError):
            QueryPreferences(prefer="cheapest")
        with pytest.raises(PlanError):
            QueryPreferences(target_time_ms=0)

    def test_over_budget(self):
        preferences = QueryPreferences(target_time_ms=100)
        mqp = MutantQueryPlan(PlanBuilder.urn("urn:A:b").display("c:1"), preferences=preferences, issued_at=50)
        assert not mqp.over_budget(100)
        assert mqp.over_budget(200)

    def test_mqp_serialization_roundtrip(self, cd_items):
        plan = PlanBuilder.data(cd_items, name="cds").select("price < 10").display("client:9020")
        mqp = MutantQueryPlan(plan, preferences=QueryPreferences(target_time_ms=500, prefer="current"), issued_at=12.5)
        mqp.provenance.add("a:1", ProvenanceAction.EVALUATED, 13.0, detail="select->3 items")
        restored = MutantQueryPlan.deserialize(mqp.serialize())
        assert restored.query_id == mqp.query_id
        assert restored.plan.root == mqp.plan.root
        assert restored.original.root == mqp.original.root
        assert restored.preferences == mqp.preferences
        assert restored.issued_at == pytest.approx(12.5)
        assert len(restored.provenance) == 1

    def test_wire_size_includes_partial_results(self, cd_items):
        empty = MutantQueryPlan(PlanBuilder.urn("urn:A:b").display("c:1"))
        loaded = MutantQueryPlan(PlanBuilder.data(cd_items, name="cds").display("c:1"))
        assert loaded.wire_size() > empty.wire_size()

    def test_original_resources(self):
        plan = (
            PlanBuilder.urn("urn:ForSale:Portland-CDs")
            .join(PlanBuilder.url("tracklist:9020", "/tl"), on=("a", "b"))
            .display("c:1")
        )
        mqp = MutantQueryPlan(plan)
        assert set(mqp.original_resources()) == {"urn:ForSale:Portland-CDs", "tracklist:9020"}


class TestPolicyManager:
    def test_next_hop_prefers_unvisited(self):
        policy = PolicyManager()
        assert policy.choose_next_hop(["a", "b"], visited=["a"]) == "b"
        assert policy.choose_next_hop(["a", "b"], visited=["a", "b"]) is None
        assert policy.choose_next_hop(["a"], visited=["a"], revisitable=["a"]) == "a"
        assert policy.choose_next_hop([], visited=[]) is None


def _processor_for(namespace, address, collections=None, catalog=None):
    return MQPProcessor(address, catalog or Catalog(address), namespace, collections=collections or {})


class TestProcessor:
    def test_local_evaluation_delivers(self, namespace, cd_items):
        processor = _processor_for(namespace, "here:9020", {"/cds": cd_items})
        plan = PlanBuilder.url("here:9020", "/cds").select("price < 10").display("client:9020")
        result = processor.process(MutantQueryPlan(plan))
        assert result.action is ProcessingAction.DELIVER
        assert result.evaluated_subplans == 1
        assert result.mqp.is_fully_evaluated()
        assert len(result.mqp.plan.result().children) == 3

    def test_binding_interest_area_urn(self, namespace, cd_items):
        catalog = Catalog("index")
        area = namespace.area(["USA/OR/Portland", "Music/CDs"])
        catalog.register_server(
            ServerEntry(
                "seller:9020",
                ServerRole.BASE,
                area,
                collections=[CollectionRef("seller:9020", "/cds", "cds", 5)],
            )
        )
        processor = _processor_for(namespace, "index:9020", catalog=catalog)
        urn = str(InterestAreaURN.for_area(area))
        plan = PlanBuilder.urn(urn).select("price < 10").display("client:9020")
        result = processor.process(MutantQueryPlan(plan))
        assert result.action is ProcessingAction.FORWARD
        assert result.next_hop == "seller:9020"
        assert result.bound_urns == 1
        assert result.mqp.remaining_urns() == []
        bound_actions = [r for r in result.mqp.provenance.records if r.action is ProvenanceAction.BOUND]
        assert len(bound_actions) == 1

    def test_named_urn_binding(self, namespace, cd_items):
        catalog = Catalog("peer")
        catalog.register_named_resource(
            NamedResourceEntry("urn:ForSale:Portland-CDs", [CollectionRef("seller:9020", "/cds")])
        )
        processor = _processor_for(namespace, "peer:9020", catalog=catalog)
        plan = PlanBuilder.urn("urn:ForSale:Portland-CDs").display("client:9020")
        result = processor.process(MutantQueryPlan(plan))
        assert result.action is ProcessingAction.FORWARD
        assert result.next_hop == "seller:9020"

    def test_unresolvable_plan_is_stuck(self, namespace):
        processor = _processor_for(namespace, "peer:9020")
        plan = PlanBuilder.urn("urn:ForSale:Portland-CDs").display("client:9020")
        result = processor.process(MutantQueryPlan(plan))
        assert result.action is ProcessingAction.STUCK

    def test_over_budget_delivers_partial(self, namespace, cd_items):
        processor = _processor_for(namespace, "here:9020", {"/cds": cd_items})
        plan = (
            PlanBuilder.url("here:9020", "/cds")
            .select("price < 10")
            .join(PlanBuilder.url("remote:9020", "/tl"), on=("//title", "//title"))
            .display("client:9020")
        )
        mqp = MutantQueryPlan(plan, preferences=QueryPreferences(target_time_ms=10), issued_at=0.0)
        result = processor.process(mqp, now=100.0)
        assert result.action is ProcessingAction.DELIVER_PARTIAL

    def test_hop_limit_stops_forwarding(self, namespace):
        processor = _processor_for(namespace, "here:9020")
        processor.max_hops = 2
        plan = PlanBuilder.url("remote:9020", "/cds").display("client:9020")
        mqp = MutantQueryPlan(plan)
        for hop in range(3):
            mqp.provenance.add(f"peer{hop}:1", ProvenanceAction.FORWARDED, float(hop))
        result = processor.process(mqp, now=5.0)
        assert result.action is ProcessingAction.DELIVER_PARTIAL

    def test_statistics_annotations_added(self, namespace, cd_items):
        processor = _processor_for(namespace, "here:9020", {"/cds": cd_items})
        plan = (
            PlanBuilder.url("here:9020", "/cds")
            .select("price < 10")
            .join(PlanBuilder.url("remote:9020", "/tl"), on=("//title", "//title"))
            .display("client:9020")
        )
        result = processor.process(MutantQueryPlan(plan))
        leaves = result.mqp.plan.verbatim_leaves()
        assert leaves and any("stats.cardinality" in leaf.annotations for leaf in leaves)

    def test_learn_from_populates_cache(self, namespace):
        area = namespace.area(["USA/OR/Portland", "Music/CDs"])
        urn = str(InterestAreaURN.for_area(area))
        plan = PlanBuilder.urn(urn).display("client:9020")
        mqp = MutantQueryPlan(plan)
        mqp.provenance.add("index-or:9020", ProvenanceAction.BOUND, 1.0, detail=urn)
        processor = _processor_for(namespace, "client:9020")
        processor.learn_from(mqp)
        assert processor.cache.best(area).server == "index-or:9020"
