"""Exception hierarchy shared by every subsystem of the reproduction.

All library errors derive from :class:`ReproError` so that callers can catch
one base class at API boundaries while still being able to discriminate the
failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class XMLParseError(ReproError):
    """Raised when an XML document or fragment cannot be parsed."""


class PathSyntaxError(ReproError):
    """Raised when an XPath-lite expression cannot be parsed."""


class NamespaceError(ReproError):
    """Raised for malformed categories, hierarchies, or interest areas."""


class URNError(NamespaceError):
    """Raised when a URN cannot be encoded or decoded."""


class PlanError(ReproError):
    """Raised for structurally invalid query plans."""


class PlanSerializationError(PlanError):
    """Raised when a plan cannot be serialized to or parsed from XML."""


class EvaluationError(ReproError):
    """Raised when the local query engine cannot evaluate a plan."""


class ResourceBudgetExceeded(EvaluationError):
    """Raised when a pipeline-breaking operator overruns its memory budget.

    The streaming engine bounds the number of items a blocking operator
    (Join, OrderBy, TopN, Aggregate, Difference) may buffer at once.  When
    the bound would be exceeded the engine fails with this error instead of
    growing without limit — callers choose between raising the budget,
    rewriting the plan, or falling back to a partial answer.
    """


class CatalogError(ReproError):
    """Raised for invalid catalog registrations or lookups."""


class IntensionalStatementError(CatalogError):
    """Raised when an intensional statement is malformed or inconsistent."""


class BindingError(CatalogError):
    """Raised when a resource name cannot be bound to any source."""


class RoutingError(ReproError):
    """Raised when a mutant query plan cannot be routed any further."""


class PeerError(ReproError):
    """Raised for protocol violations between peers."""


class RegistrationError(PeerError):
    """Raised when a peer cannot register with the servers it needs."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event network simulator."""


class APIError(ReproError):
    """Raised for misuse of the public :mod:`repro.api` surface."""


class QueryTimeout(APIError):
    """Raised when a query produced no answer within its wait window.

    Covers both an explicit deadline passing on the logical clock and the
    network going idle with the answer provably never arriving.
    """


class PeerOffline(APIError):
    """Raised when an operation requires a peer that is not online.

    Issuing a query from an offline peer — or waiting on a result whose
    target peer went offline mid-query — fails loudly with this error
    instead of silently producing no result.
    """


class QueryCancelled(APIError):
    """Raised when a result is requested for a query that was cancelled.

    ``QueryHandle.cancel()`` tears down the handle's watchers, marks the
    query dead at the issuing peer, and propagates a cancel notice along
    the plan's forwarding chain; any later ``result()`` call fails with
    this error instead of waiting for an answer that will be discarded.
    """


class WorkloadError(ReproError):
    """Raised when a workload generator receives invalid parameters."""


class QoSError(ReproError):
    """Raised when query preferences cannot be satisfied or are invalid."""


class ProvenanceError(ReproError):
    """Raised for malformed provenance records or failed verification."""
