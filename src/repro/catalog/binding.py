"""Binding resource names to sources, using intensional statements (paper §4.2).

Given a query interest area, the binder produces a *binding*: a conjoint
union ("or") of alternatives, where each alternative is a set of sources
whose union covers the requested data.  Without intensional statements the
only alternative is the union of every known overlapping base server (the
"implicit semantics" of §4.1).  Intensional statements add alternatives
that:

* drop redundant servers (Example 1 — ``R = S`` over the query area means
  the plan "could be routed to either R or S, but it need not go to both"),
* trade an index server for the base servers it covers (Example 2),
* trade currency for latency (Example 3 / §4.3 — a single, possibly stale
  replica versus the complete, current union).

Each alternative records the number of servers it contacts and its
staleness bound so the QoS planner can choose under the query preferences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algebra.operators import ConjointOr, PlanNode, Union as UnionOp, URLRef, URNRef
from ..errors import BindingError
from ..namespace import InterestArea
from .catalog import Catalog
from .entries import CollectionRef, ServerRole, WHOLE_SERVER
from .intensional import CatalogLevel, IntensionalStatement, Relation

__all__ = ["BoundSource", "BindingAlternative", "Binding", "Binder"]


@dataclass(frozen=True)
class BoundSource:
    """One source inside a binding alternative.

    ``collection`` is set for concrete data collections at base servers;
    when it is ``None`` the source means "route the plan to ``server`` for
    further resolution" (an index or meta-index server).
    """

    server: str
    collection: CollectionRef | None = None
    delay_minutes: float = 0.0

    @property
    def is_concrete(self) -> bool:
        """True for a directly fetchable collection."""
        return self.collection is not None

    def __str__(self) -> str:
        where = str(self.collection) if self.collection else "(route)"
        delay = f" {{{self.delay_minutes:g}}}" if self.delay_minutes else ""
        return f"{where}@{self.server}{delay}"


@dataclass
class BindingAlternative:
    """A set of sources whose union answers the query (one "or" branch)."""

    sources: list[BoundSource]
    description: str = ""

    @property
    def servers(self) -> list[str]:
        """Distinct servers this alternative contacts, sorted."""
        return sorted({source.server for source in self.sources})

    @property
    def server_count(self) -> int:
        """Number of distinct servers contacted."""
        return len(self.servers)

    @property
    def max_delay_minutes(self) -> float:
        """Staleness bound of the alternative (max across sources)."""
        if not self.sources:
            return 0.0
        return max(source.delay_minutes for source in self.sources)

    @property
    def is_concrete(self) -> bool:
        """True when every source is a directly fetchable collection."""
        return bool(self.sources) and all(source.is_concrete for source in self.sources)

    def to_plan_node(self, fallback_urn: str | None = None) -> PlanNode:
        """Render the alternative as a plan fragment (union of URL leaves).

        Routing sources (no concrete collection) are rendered as the
        original URN so the plan stays resolvable downstream; this needs
        ``fallback_urn``.
        """
        leaves: list[PlanNode] = []
        for source in self.sources:
            if source.collection is not None:
                path = source.collection.path
                # WHOLE_SERVER refs fetch the union of the server's local
                # collections (the catalog only knew the server, not its
                # collection layout).
                leaves.append(URLRef(source.collection.url, None if path == WHOLE_SERVER else path))
            else:
                if fallback_urn is None:
                    raise BindingError(
                        "routing source in alternative but no fallback URN provided"
                    )
                leaves.append(URNRef(fallback_urn))
        if not leaves:
            raise BindingError("cannot render an empty binding alternative")
        if len(leaves) == 1:
            return leaves[0]
        return UnionOp(leaves)


@dataclass
class Binding:
    """The conjoint union of alternatives produced for one resource name."""

    area: InterestArea
    alternatives: list[BindingAlternative] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.alternatives:
            raise BindingError(f"no binding alternatives for area {self.area}")

    @property
    def default(self) -> BindingAlternative:
        """The complete/current alternative (always first)."""
        return self.alternatives[0]

    def fewest_servers(self) -> BindingAlternative:
        """The alternative contacting the fewest servers (ties: most current)."""
        return min(self.alternatives, key=lambda alt: (alt.server_count, alt.max_delay_minutes))

    def most_current(self) -> BindingAlternative:
        """The alternative with the smallest staleness bound (ties: fewest servers)."""
        return min(self.alternatives, key=lambda alt: (alt.max_delay_minutes, alt.server_count))

    def to_plan_node(self, fallback_urn: str | None = None) -> PlanNode:
        """Render the whole binding as a plan fragment.

        A single alternative becomes its union; several alternatives become
        a :class:`ConjointOr` so downstream servers (or the QoS planner)
        can still pick a branch.
        """
        nodes = [alternative.to_plan_node(fallback_urn) for alternative in self.alternatives]
        if len(nodes) == 1:
            return nodes[0]
        return ConjointOr(nodes)


class Binder:
    """Builds bindings from a catalog, applying intensional statements."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    # -- public API ------------------------------------------------------------ #

    def bind_area(self, area: InterestArea) -> Binding | None:
        """Bind a query interest area to sources known by this catalog.

        Returns ``None`` when the catalog knows nothing relevant (the
        caller should then route the plan toward an authoritative server).
        """
        default = self._default_alternative(area)
        if default is None:
            return None
        alternatives = [default]
        alternatives.extend(self._statement_alternatives(area, default))
        return Binding(area, self._deduplicate(alternatives))

    # -- building blocks ---------------------------------------------------------- #

    def _default_alternative(self, area: InterestArea) -> BindingAlternative | None:
        sources: list[BoundSource] = []
        for entry in self.catalog.servers_overlapping(area, roles=(ServerRole.BASE,)):
            for collection in entry.collections:
                sources.append(BoundSource(entry.address, collection))
            if not entry.collections:
                sources.append(
                    BoundSource(entry.address, CollectionRef(entry.address, WHOLE_SERVER))
                )
        if not sources:
            return None
        return BindingAlternative(sources, description="union of all overlapping base servers")

    def _statement_alternatives(
        self, area: InterestArea, default: BindingAlternative
    ) -> list[BindingAlternative]:
        alternatives: list[BindingAlternative] = []
        default_servers = set(default.servers)

        for statement in self.catalog.statements_for(CatalogLevel.BASE, area):
            alternatives.extend(
                self._base_level_alternatives(statement, default, default_servers)
            )

        # The level+area statement index answers exactly the "INDEX-level
        # statement whose lhs area covers the query" question, so the seed's
        # full-list scan is replaced by an indexed lookup (same order).
        for statement in self.catalog.statements_for(CatalogLevel.INDEX, area):
            if any(holding.level != CatalogLevel.BASE for holding in statement.rhs):
                continue
            alternatives.extend(self._index_level_alternatives(statement, area))
        return alternatives

    def _base_level_alternatives(
        self,
        statement: IntensionalStatement,
        default: BindingAlternative,
        default_servers: set[str],
    ) -> list[BindingAlternative]:
        lhs_server = statement.lhs.server
        rhs_servers = set(statement.rhs_servers())
        alternatives: list[BindingAlternative] = []

        # Keeping only the left-hand server for the data the rhs would have
        # contributed is valid for both '=' and '>=' statements.
        if rhs_servers & default_servers:
            reduced = [
                source for source in default.sources if source.server not in rhs_servers
            ]
            if not any(source.server == lhs_server for source in reduced):
                reduced.append(self._source_for_server(lhs_server, statement.max_rhs_delay))
            else:
                reduced = [
                    BoundSource(
                        source.server,
                        source.collection,
                        max(source.delay_minutes, statement.max_rhs_delay),
                    )
                    if source.server == lhs_server
                    else source
                    for source in reduced
                ]
            alternatives.append(
                BindingAlternative(
                    reduced,
                    description=f"prefer {lhs_server} over {sorted(rhs_servers)} ({statement.relation.value})",
                )
            )

        # For equality statements the converse also holds: drop the lhs
        # server and keep the right-hand servers (Example 1's "either R or S").
        if statement.relation is Relation.EQUALS and lhs_server in default_servers:
            reduced = [source for source in default.sources if source.server != lhs_server]
            missing = rhs_servers - {source.server for source in reduced}
            for server in sorted(missing):
                reduced.append(self._source_for_server(server, 0.0))
            if reduced:
                alternatives.append(
                    BindingAlternative(
                        reduced,
                        description=f"prefer {sorted(rhs_servers)} over {lhs_server} (=)",
                    )
                )
        return alternatives

    def _index_level_alternatives(
        self, statement: IntensionalStatement, area: InterestArea
    ) -> list[BindingAlternative]:
        # Example 2: the resource can be bound to the index server (routing
        # source) or directly to the base servers it covers.
        route = BindingAlternative(
            [BoundSource(statement.lhs.server, None, statement.lhs.delay_minutes)],
            description=f"route to index server {statement.lhs.server}",
        )
        direct = BindingAlternative(
            [
                self._source_for_server(holding.server, holding.delay_minutes)
                for holding in statement.rhs
            ],
            description=f"directly contact base servers {statement.rhs_servers()}",
        )
        return [route, direct]

    def _source_for_server(self, address: str, delay_minutes: float) -> BoundSource:
        entry = self.catalog.servers.get(address)
        if entry is not None and entry.collections:
            return BoundSource(address, entry.collections[0], delay_minutes)
        return BoundSource(address, CollectionRef(address, WHOLE_SERVER), delay_minutes)

    @staticmethod
    def _deduplicate(alternatives: list[BindingAlternative]) -> list[BindingAlternative]:
        seen: set[tuple] = set()
        unique: list[BindingAlternative] = []
        for alternative in alternatives:
            key = tuple(sorted((source.server, str(source.collection)) for source in alternative.sources))
            if key in seen:
                continue
            seen.add(key)
            unique.append(alternative)
        return unique
