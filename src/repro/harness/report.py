"""Plain-text tables and series for the benchmark harness.

Every benchmark prints the rows or series it reproduces (the paper has no
numeric tables, so these are the measurable versions of its qualitative
claims); ``EXPERIMENTS.md`` records the same output.  The formatting here is
deliberately dependency-free: aligned monospace tables that survive being
pasted into Markdown code blocks.
"""

from __future__ import annotations

import json
import pathlib
from typing import Mapping, Sequence

__all__ = ["format_table", "format_series", "format_summary", "to_json", "write_json_report"]


def _render(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    precision: int = 2,
) -> str:
    """Render a list of row dictionaries as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [[_render(row.get(column, ""), precision) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    header = " | ".join(column.ljust(width) for column, width in zip(columns, widths))
    separator = "-+-".join("-" * width for width in widths)
    body = [
        " | ".join(value.rjust(width) for value, width in zip(line, widths))
        for line in rendered
    ]
    lines = ([title] if title else []) + [header, separator] + body
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str | None = None,
    precision: int = 2,
) -> str:
    """Render one or more y-series against a shared x-axis (a figure as text)."""
    rows = []
    for index, x_value in enumerate(x_values):
        row: dict[str, object] = {x_label: x_value}
        for name, values in series.items():
            row[name] = values[index]
        rows.append(row)
    return format_table(rows, [x_label, *series.keys()], title=title, precision=precision)


def format_summary(summary: Mapping[str, float], title: str | None = None, precision: int = 2) -> str:
    """Render a flat metric dictionary as a two-column table."""
    rows = [{"metric": key, "value": value} for key, value in summary.items()]
    return format_table(rows, ["metric", "value"], title=title, precision=precision)


def to_json(payload: Mapping[str, object]) -> str:
    """Serialize a report payload as stable, human-diffable JSON.

    Keys keep their insertion order (reports are built in narrative order)
    and floats are rounded at source by the builders, so two runs of the
    same seeded scenario produce byte-identical documents.
    """
    return json.dumps(payload, indent=2, sort_keys=False, default=str) + "\n"


def write_json_report(path: str | pathlib.Path, payload: Mapping[str, object]) -> pathlib.Path:
    """Write a JSON report, creating parent directories as needed."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(to_json(payload), encoding="utf-8")
    return target
