"""Self-healing delivery: fault injection, ack/retry forwarding, degradation.

Covers the resilience contract ``docs/resilience.md`` documents:

* :class:`repro.network.faults.FaultPlan` decisions are pure functions of
  (seed, link, ordinal) — deterministic across injectors and processes;
* scenario reports stay byte-equivalent across the ``sim`` and ``aio``
  backends *under active faults* (loss, duplication, partition-heal);
* with every knob at its default, reports keep the pre-resilience schema
  byte-for-byte (no new keys, no elided-field drift);
* the reliable-delivery protocol (``flags.reliable_delivery``) acks,
  retransmits with backoff, dedupes at the receiver, and degrades —
  reroute / teardown / dead-letter — when the retry budget is exhausted;
* ``QueryHandle.result(deadline=...)`` returns a :class:`DegradedResult`
  instead of raising :class:`QueryTimeout`;
* the ``peer-unreachable`` notice is a guarded no-op once the transport
  has closed, and the dead-letter buffer is capped with exact accounting.
"""

from __future__ import annotations

import pytest

from repro.api import Cluster, DegradedResult
from repro.errors import SimulationError
from repro.harness.report import to_json
from repro.harness.scaleout import ScaleoutSpec, run_scaleout
from repro.mqp import RetryPolicy
from repro.namespace import garage_sale_namespace
from repro.network import (
    FaultInjector,
    FaultPlan,
    Message,
    Network,
    stable_unit,
)
from repro.perf import flags, overrides
from tests.conftest import make_item
from tests.test_api import small_cluster


def _message(sender="a:9020", recipient="b:9020", kind="mqp", **kwargs) -> Message:
    return Message(sender=sender, recipient=recipient, kind=kind, payload="x", **kwargs)


# --------------------------------------------------------------------------- #
# The fault plan: deterministic draws, validation, outcomes
# --------------------------------------------------------------------------- #


class TestFaultPlan:
    def test_stable_unit_is_deterministic_and_in_range(self):
        draws = [stable_unit(7, "loss", "a", "b", n) for n in range(64)]
        assert draws == [stable_unit(7, "loss", "a", "b", n) for n in range(64)]
        assert all(0.0 <= draw < 1.0 for draw in draws)
        # Distinct keys give distinct draws (no accidental aliasing between
        # e.g. ("ab", "c") and ("a", "bc")).
        assert stable_unit("ab", "c") != stable_unit("a", "bc")

    def test_none_plan_is_inactive(self):
        assert not FaultPlan.none().active
        assert FaultPlan(loss=0.1).active
        assert FaultPlan(partition=(10.0, 20.0)).active

    def test_validate_rejects_bad_values(self):
        with pytest.raises(SimulationError):
            FaultPlan(loss=1.0).validate()
        with pytest.raises(SimulationError):
            FaultPlan(duplicate=-0.1).validate()
        with pytest.raises(SimulationError):
            FaultPlan(delay_ms=-1.0).validate()
        with pytest.raises(SimulationError):
            FaultPlan(partition=(20.0, 10.0)).validate()
        FaultPlan(loss=0.5, partition=(0.0, 10.0)).validate()  # fine

    def test_injectors_replay_the_same_decisions(self):
        plan = FaultPlan(seed=3, loss=0.3, duplicate=0.2, delay=0.2, reorder=0.2)
        first = FaultInjector(plan)
        second = FaultInjector(plan)
        for ordinal in range(50):
            message = _message()
            assert first.intercept(message, 5.0, 0.0) == second.intercept(
                message, 5.0, 0.0
            )

    def test_loss_draws_vary_with_the_ordinal(self):
        injector = FaultInjector(FaultPlan(seed=1, loss=0.5))
        outcomes = [injector.intercept(_message(), 5.0, 0.0).lost for _ in range(40)]
        assert any(outcomes) and not all(outcomes)

    def test_duplicate_yields_two_delays(self):
        injector = FaultInjector(FaultPlan(seed=1, duplicate=0.999))
        outcome = injector.intercept(_message(), 7.0, 0.0)
        assert outcome.duplicated and outcome.delays == (7.0, 7.0)

    def test_partition_drops_only_crossing_traffic_during_the_window(self):
        plan = FaultPlan(seed=2, partition=(100.0, 200.0))
        sides = {addr: plan.side_of(addr) for addr in (f"p{i}:9020" for i in range(8))}
        crossing = [a for a in sides if sides[a] != sides["p0:9020"]]
        same = [a for a in sides if sides[a] == sides["p0:9020"] and a != "p0:9020"]
        assert crossing and same  # the hash splits a small population too
        injector = FaultInjector(plan)
        cut = injector.intercept(_message("p0:9020", crossing[0]), 5.0, 150.0)
        assert cut.partitioned and cut.lost and cut.delays == ()
        kept = injector.intercept(_message("p0:9020", same[0]), 5.0, 150.0)
        assert not kept.lost
        healed = injector.intercept(_message("p0:9020", crossing[0]), 5.0, 250.0)
        assert not healed.lost  # the partition healed at end


# --------------------------------------------------------------------------- #
# Backend equivalence under active faults — and flag-off byte-identity
# --------------------------------------------------------------------------- #


FAULT_SPECS = [
    ScaleoutSpec(name="faults-loss", topology="small-world", peers=24,
                 workload="garage-sale", churn="none", queries=6, seed=9,
                 fault_loss=0.25, reliable=True),
    ScaleoutSpec(name="faults-dup", topology="small-world", peers=24,
                 workload="garage-sale", churn="none", queries=3, seed=9,
                 fault_duplicate=0.20, reliable=True),
    ScaleoutSpec(name="faults-partition", topology="scale-free", peers=30,
                 workload="garage-sale", churn="none", queries=4, seed=11,
                 fault_partition=(100.0, 900.0), reliable=True),
]

PRE_RESILIENCE_SCENARIO_KEYS = {
    "name", "topology", "peers", "workload", "churn", "routing", "queries",
    "seed", "batch", "batch_window_ms", "churn_window_ms", "query_interval_ms",
    "prefer", "max_hops",
}


class TestFaultEquivalence:
    @pytest.mark.parametrize("spec", FAULT_SPECS, ids=lambda spec: spec.name)
    def test_reports_byte_identical_across_backends(self, spec):
        sim_report = run_scaleout(spec, transport="sim")
        aio_report = run_scaleout(spec, transport="aio")
        assert to_json(sim_report) == to_json(aio_report)
        assert sim_report["resilience"]["reliable"] is True

    def test_recovery_under_loss(self):
        report = run_scaleout(FAULT_SPECS[0])
        resilience = report["resilience"]
        assert resilience["faults"]["lost"] > 0
        assert resilience["retries_sent"] > 0
        assert report["traffic"]["mean_recall"] == 1.0

    def test_duplicates_are_deduped_not_double_counted(self):
        report = run_scaleout(FAULT_SPECS[1])
        resilience = report["resilience"]
        assert resilience["faults"]["duplicated"] > 0
        assert resilience["duplicates_dropped"] > 0
        for row in report["queries"]:
            assert row["recall"] is None or row["recall"] <= 1.0

    def test_flags_off_report_keeps_the_pre_resilience_schema(self):
        spec = ScaleoutSpec(name="baseline", topology="small-world", peers=20,
                            workload="garage-sale", churn="none", queries=3, seed=9)
        report = run_scaleout(spec)
        assert set(report) == {
            "scenario", "population", "topology", "churn", "traffic", "queries",
            "processing",
        }
        assert set(report["scenario"]) == PRE_RESILIENCE_SCENARIO_KEYS
        # The explicit fault-free plan and the implicit default are the same
        # run, byte for byte — the elision convention at work.
        explicit = ScaleoutSpec(name="baseline", topology="small-world", peers=20,
                                workload="garage-sale", churn="none", queries=3,
                                seed=9, fault_loss=0.0, reliable=False)
        assert to_json(run_scaleout(explicit)) == to_json(report)
        assert "failures" not in to_json(report)

    def test_flags_are_off_by_default(self):
        assert flags.reliable_delivery is False
        assert FaultPlan.none() == ScaleoutSpec().fault_plan().__class__.none()


# --------------------------------------------------------------------------- #
# The reliable-delivery protocol: acks, retries, dedupe, failure handling
# --------------------------------------------------------------------------- #


def _result_envelope(query_id: str) -> dict:
    return {
        "document": f'<result query-id="{query_id}"/>',
        "query_id": query_id,
        "partial": False,
        "hops": 1,
        "staleness": 0.0,
    }


class TestReliableDelivery:
    def test_acks_clear_the_retransmit_queue(self):
        with overrides(reliable_delivery=True):
            with small_cluster() as cluster:
                handle = (
                    cluster.session("client:9020")
                    .query()
                    .area(cluster.namespace.area(["USA/OR/Portland", "Music/CDs"]))
                    .where("price < 100")
                    .submit()
                )
                result = handle.result(timeout=60_000)
                assert result.count == 3
                cluster.run_until_idle()
                for peer in cluster.peers():
                    assert peer._pending_transfers == {}
                assert sum(peer.acks_sent for peer in cluster.peers()) > 0
                assert sum(peer.retries_sent for peer in cluster.peers()) == 0

    def test_exhausted_budget_dead_letters_results(self):
        with overrides(reliable_delivery=True):
            namespace = garage_sale_namespace()
            with Cluster("sim", namespace=namespace, notify_unreachable=False) as cluster:
                area = namespace.area(["USA/OR/Portland", "Music/CDs"])
                sender = cluster.base_server("sender:9020", area).peer
                receiver = cluster.base_server("receiver:9020", area).peer
                receiver.go_offline()
                sender._send_query_traffic(
                    receiver.address, "result", _result_envelope("q-dead"), 64, "q-dead"
                )
                cluster.run_until_idle()
                assert sender.transfers_failed == 1
                assert sender.retries_sent == sender.retry_policy.budget
                assert receiver.address in sender.suspected_dead
                assert len(sender.dead_letters) == 1
                assert sender.dead_letters[-1].kind == "result"
                [record] = sender.delivery_failures["q-dead"]
                assert record["peer"] == receiver.address
                assert record["attempts"] == sender.retry_policy.budget + 1
                assert cluster.network.metrics.dead_letters_by_kind["result"] == 1

    def test_cancel_stops_pending_retransmissions(self):
        with overrides(reliable_delivery=True):
            namespace = garage_sale_namespace()
            with Cluster("sim", namespace=namespace, notify_unreachable=False) as cluster:
                area = namespace.area(["USA/OR/Portland", "Music/CDs"])
                sender = cluster.base_server("sender:9020", area).peer
                receiver = cluster.base_server("receiver:9020", area).peer
                receiver.go_offline()
                sender._send_query_traffic(
                    receiver.address, "result", _result_envelope("q-x"), 64, "q-x"
                )
                sender.cancel_query("q-x")
                assert sender._pending_transfers == {}
                cluster.run_until_idle()
                assert sender.transfers_failed == 0
                assert sender.retries_sent == 0

    def test_receiver_dedupes_and_reacks_every_attempt(self):
        with overrides(reliable_delivery=True):
            with small_cluster() as cluster:
                seller = cluster.session("seller1:9020").peer
                client = cluster.session("client:9020").peer
                seller._send_query_traffic(
                    client.address, "result", _result_envelope("q-dup"), 64, "q-dup"
                )
                transfer = next(iter(seller._pending_transfers))
                # Replay the same transfer as a retransmission would.
                seller.send(
                    client.address, "result", _result_envelope("q-dup"),
                    size_bytes=64, transfer=transfer, attempt=1,
                )
                cluster.run_until_idle()
                assert client.duplicates_dropped == 1
                assert client.acks_sent == 2  # every attempt is acknowledged
                assert seller._pending_transfers == {}

    def test_retry_policy_backoff_is_monotone_and_jittered(self):
        policy = RetryPolicy()
        delays = [policy.delay_for("t#1", attempt) for attempt in range(policy.budget)]
        assert delays == sorted(delays)
        assert delays != [policy.delay_for("t#2", attempt) for attempt in range(policy.budget)]
        assert policy.exhausted(policy.budget)
        assert not policy.exhausted(policy.budget - 1)

    def test_fire_and_forget_sends_no_protocol_traffic_when_flag_off(self):
        with small_cluster() as cluster:
            handle = (
                cluster.session("client:9020")
                .query()
                .area(cluster.namespace.area(["USA/OR/Portland", "Music/CDs"]))
                    .where("price < 100")
                .submit()
            )
            handle.result(timeout=60_000)
            cluster.run_until_idle()
            for peer in cluster.peers():
                assert peer.acks_sent == 0
                assert peer._pending_transfers == {}
                assert peer._seen_transfers == {}


# --------------------------------------------------------------------------- #
# Graceful degradation: result(deadline=...) and DegradedResult
# --------------------------------------------------------------------------- #


class TestDegradedResults:
    def test_deadline_returns_degraded_result_instead_of_raising(self):
        with small_cluster() as cluster:
            handle = (
                cluster.session("client:9020")
                .query()
                .area(cluster.namespace.area(["USA/OR/Portland", "Music/CDs"]))
                    .where("price < 100")
                .expecting(3)
                .submit()
            )
            degraded = handle.result(deadline=0.05)  # far below one-hop latency
            assert isinstance(degraded, DegradedResult)
            assert degraded.partial and degraded.reason == "deadline"
            assert degraded.completeness == 0.0
            assert degraded.failures == []
            # The deadline cancelled the upstream work: the query is dead at
            # the issuer and the network drains without delivering it.
            client = cluster.session("client:9020").peer
            assert handle.query_id in client.cancelled_queries
            cluster.run_until_idle()
            assert client.results.get(handle.query_id) is None

    def test_complete_answer_before_deadline_is_returned_untouched(self):
        with small_cluster() as cluster:
            handle = (
                cluster.session("client:9020")
                .query()
                .area(cluster.namespace.area(["USA/OR/Portland", "Music/CDs"]))
                    .where("price < 100")
                .submit()
            )
            result = handle.result(deadline=60_000)
            assert not isinstance(result, DegradedResult)
            assert result.count == 3 and not result.partial

    def test_deadline_and_timeout_are_mutually_exclusive(self):
        from repro.api import APIError

        with small_cluster() as cluster:
            handle = (
                cluster.session("client:9020")
                .query()
                .area(cluster.namespace.area(["USA/OR/Portland", "Music/CDs"]))
                    .where("price < 100")
                .submit()
            )
            with pytest.raises(APIError):
                handle.result(timeout=1_000, deadline=1_000)
            handle.result(timeout=60_000)

    def test_idle_network_degrades_with_reason_idle(self):
        # Every frame is (deterministically) lost: the plan dies on its
        # first hop, the network drains, and the deadline path reports the
        # degradation as "idle" rather than waiting the full budget out.
        namespace = garage_sale_namespace()
        plan = FaultPlan(seed=5, loss=0.999999)
        with Cluster("sim", namespace=namespace, faults=plan) as cluster:
            area = namespace.area(["USA/OR/Portland", "Music/CDs"])
            seller = cluster.base_server("seller:9020", area)
            seller.publish("cds", [make_item("Abbey Road", 8)])
            cluster.meta_index("meta:9020")
            cluster.client("client:9020")
            cluster.connect()
            handle = cluster.session("client:9020").query().area(area).submit()
            degraded = handle.result(deadline=120_000)
            assert isinstance(degraded, DegradedResult)
            assert degraded.reason == "idle"
            assert degraded.items == []


# --------------------------------------------------------------------------- #
# Satellites: the closed-transport notice guard and the dead-letter cap
# --------------------------------------------------------------------------- #


class TestUnreachableNoticeAfterClose:
    def _network_with_offline_target(self) -> tuple[Network, Message]:
        network = Network(notify_unreachable=True)
        from repro.network import NetworkNode

        class _Sink(NetworkNode):
            def handle_message(self, message):  # pragma: no cover - never delivered
                pass

        sender = _Sink("sender:9020")
        target = _Sink("target:9020")
        network.register(sender)
        network.register(target)
        target.online = False
        message = Message(
            sender="sender:9020", recipient="target:9020", kind="mqp", payload="x"
        )
        return network, message

    def test_drop_schedules_the_notice_while_the_transport_is_open(self):
        network, message = self._network_with_offline_target()
        network._drop(message)
        assert network.simulator.peek() is not None  # the notice is scheduled

    def test_drop_is_a_no_op_once_the_transport_closed(self):
        network, message = self._network_with_offline_target()
        network.transport.close()
        assert network.transport.closed
        network._drop(message)  # must not schedule on a closed transport
        assert network.simulator.peek() is None
        assert network.metrics.dropped_messages == 1  # the drop is still counted


class TestDeadLetterBuffer:
    def test_cap_with_exact_accounting(self):
        with small_cluster() as cluster:
            peer = cluster.session("seller1:9020").peer
            peer.dead_letters.cap = 3
            messages = [
                Message(sender="x:9020", recipient=peer.address,
                        kind="result" if position % 2 else "register-ack",
                        payload=position)
                for position in range(5)
            ]
            for message in messages:
                peer._dead_letter(message)
            assert len(peer.dead_letters) == 5  # exact total, not the window
            assert list(peer.dead_letters) == messages[-3:]  # capped retention
            assert peer.dead_letters[-1] is messages[-1]
            assert peer.dead_letters.by_kind == {"register-ack": 3, "result": 2}
            by_kind = cluster.network.metrics.dead_letters_by_kind
            assert by_kind["register-ack"] == 3 and by_kind["result"] == 2
