"""Peer roles: base servers, index and meta-index servers, clients, registration."""

from .peer import QueryPeer, QueryResult, RegistrationPayload
from .subscriptions import (
    ArmedSubscription,
    DeltaRecord,
    PublisherFeed,
    SubscriberState,
)
from .registration import (
    covering_indexers,
    register_offline,
    register_online,
    registration_plan,
    seed_with_meta_index,
)
from .roles import BaseServer, ClientPeer, IndexServer, MetaIndexServer

__all__ = [
    "QueryPeer",
    "QueryResult",
    "RegistrationPayload",
    "ArmedSubscription",
    "DeltaRecord",
    "PublisherFeed",
    "SubscriberState",
    "BaseServer",
    "IndexServer",
    "MetaIndexServer",
    "ClientPeer",
    "covering_indexers",
    "registration_plan",
    "register_offline",
    "register_online",
    "seed_with_meta_index",
]
