"""Random-distribution helpers shared by the workload generators.

All randomness in the reproduction flows through seeded
``numpy.random.Generator`` instances so every dataset and query workload is
exactly reproducible from its parameters.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

import numpy as np

from ..errors import WorkloadError

__all__ = ["zipf_weights", "zipf_choice", "make_rng"]

T = TypeVar("T")


def make_rng(seed: int) -> np.random.Generator:
    """A seeded generator (one per workload object, never shared globally)."""
    return np.random.default_rng(seed)


def zipf_weights(count: int, skew: float = 1.0) -> np.ndarray:
    """Normalized Zipf weights for ranks ``1..count``.

    ``skew`` of 0 gives a uniform distribution; larger values concentrate
    probability on the first ranks.  File-sharing-style popularity (a few
    very popular categories, a long tail) is the regime the paper's
    locality argument assumes.
    """
    if count < 1:
        raise WorkloadError("zipf_weights needs count >= 1")
    ranks = np.arange(1, count + 1, dtype=float)
    weights = ranks ** (-float(skew))
    return weights / weights.sum()


def zipf_choice(
    rng: np.random.Generator,
    items: Sequence[T],
    skew: float = 1.0,
    size: int | None = None,
) -> T | list[T]:
    """Draw from ``items`` with Zipf-distributed popularity over their order."""
    if not items:
        raise WorkloadError("cannot draw from an empty sequence")
    weights = zipf_weights(len(items), skew)
    indexes = rng.choice(len(items), size=size, p=weights)
    if size is None:
        return items[int(indexes)]
    return [items[int(index)] for index in np.atleast_1d(indexes)]
