"""Category servers: answering queries about the dimensions themselves (paper §3.5).

A category server maintains data about the categorization hierarchies,
answers questions such as "what are the immediate subcategories of
Furniture?", approximates references to unknown categories by known
ancestors, and can delegate portions of the namespace it manages to other
category servers, "much like the way DNS servers can delegate sub-domains".

:class:`CategoryService` is the protocol-free core used both directly by
tests and wrapped by the :class:`repro.peers.category_peer.CategoryServerPeer`
network peer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import NamespaceError
from .hierarchy import CategoryPath, Hierarchy

__all__ = ["Delegation", "CategoryService"]


@dataclass(frozen=True)
class Delegation:
    """A sub-tree of a dimension handed off to another category service."""

    dimension: str
    root: CategoryPath
    delegate: str  # identifier (address) of the delegate service


@dataclass
class CategoryService:
    """Manages one or more dimensions and supports DNS-style delegation."""

    hierarchies: dict[str, Hierarchy] = field(default_factory=dict)
    delegations: list[Delegation] = field(default_factory=list)

    # -- administration -------------------------------------------------- #

    def manage(self, hierarchy: Hierarchy) -> None:
        """Start managing (a copy of the reference to) ``hierarchy``."""
        self.hierarchies[hierarchy.name] = hierarchy

    def delegate(self, dimension: str, root: CategoryPath | str, delegate: str) -> Delegation:
        """Delegate the subtree under ``root`` of ``dimension`` to another service."""
        hierarchy = self._hierarchy(dimension)
        path = hierarchy.validate(root)
        delegation = Delegation(dimension, path, delegate)
        self.delegations.append(delegation)
        return delegation

    def delegation_for(self, dimension: str, category: CategoryPath | str) -> Delegation | None:
        """Return the most specific delegation covering ``category``, if any."""
        path = CategoryPath.parse(category) if isinstance(category, str) else category
        best: Delegation | None = None
        for delegation in self.delegations:
            if delegation.dimension != dimension:
                continue
            if delegation.root.covers(path):
                if best is None or delegation.root.depth > best.root.depth:
                    best = delegation
        return best

    # -- queries ---------------------------------------------------------- #

    def dimensions(self) -> list[str]:
        """Names of the dimensions this service manages."""
        return sorted(self.hierarchies)

    def subcategories(self, dimension: str, category: CategoryPath | str) -> list[CategoryPath]:
        """Immediate subcategories of ``category`` (the paper's example query)."""
        return self._hierarchy(dimension).children(category)

    def parent(self, dimension: str, category: CategoryPath | str) -> CategoryPath:
        """The parent category of ``category``."""
        hierarchy = self._hierarchy(dimension)
        return hierarchy.validate(category).parent

    def contains(self, dimension: str, category: CategoryPath | str) -> bool:
        """True when ``category`` is a known category of ``dimension``."""
        return category in self._hierarchy(dimension)

    def approximate(self, dimension: str, category: CategoryPath | str) -> CategoryPath:
        """Rewrite an unknown category to its deepest known ancestor (§3.5)."""
        return self._hierarchy(dimension).approximate(category)

    def _hierarchy(self, dimension: str) -> Hierarchy:
        try:
            return self.hierarchies[dimension]
        except KeyError:
            raise NamespaceError(f"category service does not manage dimension {dimension!r}") from None
