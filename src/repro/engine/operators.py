"""Physical operator implementations of the local XML query engine.

The paper uses NIAGARA as its local query engine; this module is the
reproduction's substitute.  Each function consumes and produces Python
lists of :class:`XMLElement` items (a *collection*), which keeps the
evaluator simple and makes intermediate results directly embeddable into
mutant query plans as verbatim XML.

Joins are hash-based when the join paths yield hashable scalar values and
fall back to nested loops otherwise; both strategies produce identical
output ordering (left-input order, then right-input order) so evaluation is
deterministic.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from ..errors import EvaluationError
from ..xmlmodel import XMLElement, evaluate_path_values, text_element
from ..algebra.expressions import Expression

__all__ = [
    "evaluate_select",
    "evaluate_project",
    "evaluate_join",
    "evaluate_union",
    "evaluate_difference",
    "evaluate_aggregate",
    "evaluate_order_by",
    "evaluate_top_n",
]


def _first_value(item: XMLElement, path: str) -> str | None:
    values = evaluate_path_values(item, path)
    return values[0] if values else None


def _sort_key(value: str | None) -> tuple[int, float | str]:
    """Total order over optional, possibly-numeric strings.

    Missing values sort last; numeric values sort before strings, among
    themselves numerically.
    """
    if value is None:
        return (2, "")
    try:
        return (0, float(value))
    except ValueError:
        return (1, value)


def evaluate_select(items: Sequence[XMLElement], predicate: Expression) -> list[XMLElement]:
    """Keep the items satisfying ``predicate``."""
    return [item for item in items if predicate.matches(item)]


def evaluate_project(
    items: Sequence[XMLElement],
    columns: Sequence[tuple[str, str]],
    item_tag: str = "item",
) -> list[XMLElement]:
    """Build new items containing only the projected fields."""
    projected: list[XMLElement] = []
    for item in items:
        fields: list[XMLElement] = []
        for path, tag in columns:
            for value in evaluate_path_values(item, path):
                fields.append(text_element(tag, value))
        projected.append(XMLElement(item_tag, {}, fields))
    return projected


def evaluate_join(
    left: Sequence[XMLElement],
    right: Sequence[XMLElement],
    left_path: str,
    right_path: str,
    join_type: str = "inner",
    output_tag: str = "tuple",
) -> list[XMLElement]:
    """Equality join; ``left_outer`` keeps unmatched left items.

    Items may have several values at the join path (XML is multi-valued);
    two items join when their value sets intersect, which matches the
    favourite-songs / track-listing join of Figure 3.
    """
    if join_type not in ("inner", "left_outer"):
        raise EvaluationError(f"unsupported join type {join_type!r}")

    index: dict[str, list[XMLElement]] = defaultdict(list)
    for right_item in right:
        for value in set(evaluate_path_values(right_item, right_path)):
            index[value].append(right_item)

    joined: list[XMLElement] = []
    for left_item in left:
        matches: list[XMLElement] = []
        seen: set[int] = set()
        for value in evaluate_path_values(left_item, left_path):
            for right_item in index.get(value, ()):
                if id(right_item) not in seen:
                    seen.add(id(right_item))
                    matches.append(right_item)
        if matches:
            for right_item in matches:
                joined.append(
                    XMLElement(output_tag, {}, [left_item.copy(), right_item.copy()])
                )
        elif join_type == "left_outer":
            joined.append(XMLElement(output_tag, {}, [left_item.copy()]))
    return joined


def evaluate_union(collections: Sequence[Sequence[XMLElement]]) -> list[XMLElement]:
    """Bag union: concatenate the input collections."""
    merged: list[XMLElement] = []
    for collection in collections:
        merged.extend(collection)
    return merged


def evaluate_difference(
    left: Sequence[XMLElement],
    right: Sequence[XMLElement],
    key_path: str | None = None,
) -> list[XMLElement]:
    """Items of ``left`` not present in ``right``.

    With ``key_path`` given, membership compares the first value at that
    path; otherwise it compares whole items structurally.
    """
    if key_path is None:
        right_keys = {hash(item) for item in right}
        return [item for item in left if hash(item) not in right_keys]
    right_values = {_first_value(item, key_path) for item in right}
    return [item for item in left if _first_value(item, key_path) not in right_values]


def _aggregate_value(function: str, values: list[float]) -> float:
    if function == "sum":
        return sum(values)
    if function == "min":
        return min(values)
    if function == "max":
        return max(values)
    if function == "avg":
        return sum(values) / len(values)
    raise EvaluationError(f"unsupported aggregate function {function!r}")


def evaluate_aggregate(
    items: Sequence[XMLElement],
    function: str,
    value_path: str | None = None,
    group_path: str | None = None,
    output_tag: str = "aggregate",
) -> list[XMLElement]:
    """Grouped or global aggregation.

    Output items carry a ``<group>`` child (when grouping) and a
    ``<value>`` child holding the aggregate.
    """
    groups: dict[str | None, list[XMLElement]] = defaultdict(list)
    for item in items:
        key = _first_value(item, group_path) if group_path else None
        groups[key].append(item)
    if group_path and not items:
        groups = {}
    if not group_path and not groups:
        groups = {None: []}

    results: list[XMLElement] = []
    for key in sorted(groups, key=lambda value: (value is None, value)):
        members = groups[key]
        if function == "count":
            value: float = float(len(members))
        else:
            assert value_path is not None  # validated at plan construction
            numbers: list[float] = []
            for member in members:
                raw = _first_value(member, value_path)
                if raw is None:
                    continue
                try:
                    numbers.append(float(raw))
                except ValueError as exc:
                    raise EvaluationError(
                        f"non-numeric value {raw!r} for aggregate {function!r}"
                    ) from exc
            if not numbers:
                continue
            value = _aggregate_value(function, numbers)
        children = []
        if group_path and key is not None:
            children.append(text_element("group", key))
        rendered = int(value) if float(value).is_integer() else value
        children.append(text_element("value", rendered))
        results.append(XMLElement(output_tag, {"function": function}, children))
    return results


def evaluate_order_by(
    items: Sequence[XMLElement], path: str, descending: bool = False
) -> list[XMLElement]:
    """Stable sort by the (possibly numeric) value at ``path``."""
    return sorted(items, key=lambda item: _sort_key(_first_value(item, path)), reverse=descending)


def evaluate_top_n(
    items: Sequence[XMLElement], limit: int, path: str, descending: bool = True
) -> list[XMLElement]:
    """The first ``limit`` items when ordered by ``path``."""
    return evaluate_order_by(items, path, descending)[:limit]
