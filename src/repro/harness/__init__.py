"""Experiment harness: scenario builders, strategy runners, and report formatting."""

from .cli import main as cli_main
from .experiment import (
    MQPScenario,
    build_gnutella_scenario,
    build_mqp_scenario,
    build_napster_scenario,
    build_routing_index_scenario,
    compare_routing_strategies,
    item_cell,
    query_plan_for,
    run_cd_query_coordinator,
    run_cd_query_mqp,
    run_gnutella_queries,
    run_mqp_queries,
    run_napster_queries,
    run_routing_index_queries,
)
from .report import format_series, format_summary, format_table, to_json, write_json_report
from .scaleout import (
    ROUTING_KINDS,
    ScaleoutScenario,
    ScaleoutSpec,
    WORKLOAD_KINDS,
    build_scaleout_scenario,
    run_scaleout,
)

__all__ = [
    "cli_main",
    "ScaleoutSpec",
    "ScaleoutScenario",
    "WORKLOAD_KINDS",
    "ROUTING_KINDS",
    "build_scaleout_scenario",
    "run_scaleout",
    "to_json",
    "write_json_report",
    "MQPScenario",
    "build_mqp_scenario",
    "run_mqp_queries",
    "build_gnutella_scenario",
    "run_gnutella_queries",
    "build_napster_scenario",
    "run_napster_queries",
    "build_routing_index_scenario",
    "run_routing_index_queries",
    "compare_routing_strategies",
    "run_cd_query_mqp",
    "run_cd_query_coordinator",
    "item_cell",
    "query_plan_for",
    "format_table",
    "format_series",
    "format_summary",
]
