"""Shared fixtures for the test suite, plus flaky-test hardening hooks.

``REPRO_TEST_ORDER`` reorders collection to smoke out order-dependent
tests: ``reverse`` runs the suite backwards, ``shuffle`` (or
``shuffle:<seed>``) runs a seeded random permutation.  CI runs the tier-1
suite both ways.  Every failing test also gets a ``repro seeds`` section
naming the RNG seeds its scenario consumed, so a flake reproduces from the
failure output alone.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.namespace import garage_sale_namespace, gene_expression_namespace
from repro.workloads.distributions import clear_recent_seeds, recent_seeds
from repro.xmlmodel import XMLElement, element, text_element


def pytest_collection_modifyitems(config, items):
    """Honor REPRO_TEST_ORDER=reverse|shuffle[:seed] for order-dependence hunts."""
    order = os.environ.get("REPRO_TEST_ORDER", "")
    if not order:
        return
    if order == "reverse":
        items.reverse()
    elif order.startswith("shuffle"):
        seed = int(order.split(":", 1)[1]) if ":" in order else 0
        random.Random(seed).shuffle(items)
    else:
        raise pytest.UsageError(
            f"REPRO_TEST_ORDER must be 'reverse' or 'shuffle[:seed]', got {order!r}"
        )


@pytest.fixture(autouse=True)
def _fresh_seed_registry():
    """Scope the harness seed registry to one test."""
    clear_recent_seeds()
    yield


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Attach the harness RNG seeds to every failed-test report."""
    outcome = yield
    report = outcome.get_result()
    if report.when == "call" and report.failed:
        seeds = recent_seeds()
        if seeds:
            report.sections.append(
                ("repro seeds", f"make_rng seeds consumed (oldest first): {seeds}")
            )


@pytest.fixture()
def namespace():
    """The garage-sale Location x Merchandise namespace."""
    return garage_sale_namespace()


@pytest.fixture()
def gene_namespace():
    """The Organism x CellType namespace of Figure 1."""
    return gene_expression_namespace()


def make_item(title: str, price: float, city: str = "USA/OR/Portland",
              category: str = "Music/CDs", seller: str = "seller:9020") -> XMLElement:
    """Build a garage-sale item bundle."""
    return element(
        "item",
        {"id": f"{seller}-{title}"},
        text_element("title", title),
        text_element("price", price),
        text_element("city", city),
        text_element("category", category),
        text_element("seller", seller),
    )


@pytest.fixture()
def cd_items():
    """A small collection of CD items with varied prices."""
    return [
        make_item("Abbey Road", 8.0),
        make_item("Kind of Blue", 12.5),
        make_item("Blue Train", 6.0),
        make_item("Giant Steps", 15.0),
        make_item("Green Onions", 9.5),
    ]


@pytest.fixture()
def furniture_items():
    """A small collection of furniture items in two cities."""
    return [
        make_item("Oak Table", 120.0, category="Furniture/Tables"),
        make_item("Armchair", 60.0, category="Furniture/Chairs/Armchairs"),
        make_item("Desk Chair", 45.0, city="USA/WA/Vancouver", category="Furniture/Chairs/OfficeChairs"),
        make_item("Sofa", 200.0, city="USA/WA/Seattle", category="Furniture/Sofas"),
    ]
