"""XML wire format for query plans (the MQP encoding, paper §2).

Plans travel between peers serialized as XML.  Every operator becomes an
element named after the operator, with its parameters as attributes, its
input sub-plans as child elements, and any accumulated annotations inside a
reserved ``<annotations>`` child.  Verbatim data is embedded under a
reserved ``<collection>`` child so that arbitrary XML payloads never clash
with the operator vocabulary.

``plan_to_xml``/``plan_from_xml`` convert between :class:`QueryPlan` and
:class:`XMLElement`; ``serialize_plan``/``parse_plan`` go all the way to
strings, which is what the network layer ships around.
"""

from __future__ import annotations

from ..errors import PlanSerializationError
from ..perf import flags
from ..xmlmodel import XMLElement, parse_xml, serialize_xml
from .expressions import parse_predicate
from .operators import (
    Aggregate,
    ConjointOr,
    Difference,
    Display,
    Join,
    OrderBy,
    PlanNode,
    Project,
    Select,
    TopN,
    Union,
    URLRef,
    URNRef,
    VerbatimData,
)
from .plan import QueryPlan

__all__ = ["plan_to_xml", "plan_from_xml", "serialize_plan", "parse_plan", "plan_wire_size"]

_RESERVED_TAGS = {"annotations", "column", "collection"}


# --------------------------------------------------------------------------- #
# Serialization
# --------------------------------------------------------------------------- #


def _annotations_element(node: PlanNode) -> XMLElement | None:
    if not node.annotations:
        return None
    children = [
        XMLElement("annotation", {"key": key, "value": value})
        for key, value in sorted(node.annotations.items())
    ]
    return XMLElement("annotations", {}, children)


def _node_to_xml(node: PlanNode) -> XMLElement:
    attributes: dict[str, object] = {}
    extra_children: list[XMLElement] = []

    if isinstance(node, VerbatimData):
        if node.name:
            attributes["name"] = node.name
        # The serialized tree aliases the plan's constant data rather than
        # deep-copying it: every caller renders the returned tree to text
        # immediately, and partial results carried in a thousand-peer run
        # make this copy the single largest per-hop cost.  Treat the
        # returned tree as read-only.
        collection = (
            node.collection if flags.shared_wire_trees else node.collection.copy()
        )
        extra_children.append(XMLElement("collection", {}, [collection]))
    elif isinstance(node, URLRef):
        attributes["href"] = node.url
        if node.path:
            attributes["path"] = node.path
    elif isinstance(node, URNRef):
        attributes["name"] = node.urn
    elif isinstance(node, Select):
        attributes["predicate"] = node.predicate.to_text()
    elif isinstance(node, Project):
        attributes["item-tag"] = node.item_tag
        extra_children.extend(
            XMLElement("column", {"path": path, "tag": tag}) for path, tag in node.columns
        )
    elif isinstance(node, Join):
        attributes.update(
            {
                "left-path": node.left_path,
                "right-path": node.right_path,
                "type": node.join_type,
                "output-tag": node.output_tag,
            }
        )
    elif isinstance(node, Difference):
        if node.key_path:
            attributes["key-path"] = node.key_path
    elif isinstance(node, Aggregate):
        attributes["function"] = node.function
        if node.value_path:
            attributes["value-path"] = node.value_path
        if node.group_path:
            attributes["group-path"] = node.group_path
        attributes["output-tag"] = node.output_tag
    elif isinstance(node, OrderBy):
        attributes["path"] = node.path
        attributes["descending"] = str(node.descending).lower()
    elif isinstance(node, TopN):
        attributes["limit"] = node.limit
        attributes["path"] = node.path
        attributes["descending"] = str(node.descending).lower()
    elif isinstance(node, Display):
        attributes["target"] = node.target
    elif isinstance(node, (Union, ConjointOr)):
        pass
    else:
        raise PlanSerializationError(f"cannot serialize plan node {type(node).__name__}")

    annotation_element = _annotations_element(node)
    if annotation_element is not None:
        extra_children.append(annotation_element)

    children = extra_children + [_node_to_xml(child) for child in node.children]
    return XMLElement(node.operator, attributes, children)


def node_to_xml(node: PlanNode) -> XMLElement:
    """Serialize a bare plan node (used as a canonical cache key for nodes)."""
    return _node_to_xml(node)


def plan_to_xml(plan: QueryPlan) -> XMLElement:
    """Serialize a plan to its XML element form, wrapped in ``<mqp>``."""
    return XMLElement("mqp", {}, [_node_to_xml(plan.root)])


def serialize_plan(plan: QueryPlan, indent: int | None = None) -> str:
    """Serialize a plan to the XML string shipped between peers."""
    return serialize_xml(plan_to_xml(plan), indent=indent)


def plan_wire_size(plan: QueryPlan) -> int:
    """Size in bytes of the plan's wire encoding (partial results included)."""
    return len(serialize_plan(plan).encode("utf-8"))


# --------------------------------------------------------------------------- #
# Parsing
# --------------------------------------------------------------------------- #


def _require(element: XMLElement, attribute: str) -> str:
    value = element.get(attribute)
    if value is None:
        raise PlanSerializationError(
            f"<{element.tag}> is missing required attribute {attribute!r}"
        )
    return value


def _operator_children(element: XMLElement) -> list[XMLElement]:
    return [child for child in element.children if child.tag not in _RESERVED_TAGS]


def _node_from_xml(element: XMLElement) -> PlanNode:
    children = [_node_from_xml(child) for child in _operator_children(element)]
    tag = element.tag

    node: PlanNode
    if tag == "data":
        collection_wrapper = element.find("collection")
        if collection_wrapper is None or not collection_wrapper.children:
            raise PlanSerializationError("<data> node has no embedded collection")
        # The plan adopts the parsed subtree instead of deep-copying it;
        # parsing produces a fresh tree per document, so the only aliasing
        # is with the input element — callers must not mutate it afterwards.
        embedded = collection_wrapper.children[0]
        if not flags.shared_wire_trees:
            embedded = embedded.copy()
        node = VerbatimData(embedded, element.get("name"))
    elif tag == "url":
        node = URLRef(_require(element, "href"), element.get("path"))
    elif tag == "urn":
        node = URNRef(_require(element, "name"))
    elif tag == "select":
        node = Select(_single(children, tag), parse_predicate(_require(element, "predicate")))
    elif tag == "project":
        columns = [
            (_require(column, "path"), _require(column, "tag"))
            for column in element.find_all("column")
        ]
        node = Project(_single(children, tag), columns, element.get("item-tag", "item"))
    elif tag == "join":
        if len(children) != 2:
            raise PlanSerializationError("<join> needs exactly two inputs")
        node = Join(
            children[0],
            children[1],
            _require(element, "left-path"),
            _require(element, "right-path"),
            element.get("type", "inner"),
            element.get("output-tag", "tuple"),
        )
    elif tag == "union":
        node = Union(children)
    elif tag == "or":
        node = ConjointOr(children)
    elif tag == "difference":
        if len(children) != 2:
            raise PlanSerializationError("<difference> needs exactly two inputs")
        node = Difference(children[0], children[1], element.get("key-path"))
    elif tag == "aggregate":
        node = Aggregate(
            _single(children, tag),
            _require(element, "function"),
            element.get("value-path"),
            element.get("group-path"),
            element.get("output-tag", "aggregate"),
        )
    elif tag == "orderby":
        node = OrderBy(
            _single(children, tag),
            _require(element, "path"),
            element.get("descending", "false") == "true",
        )
    elif tag == "topn":
        node = TopN(
            _single(children, tag),
            int(_require(element, "limit")),
            _require(element, "path"),
            element.get("descending", "true") == "true",
        )
    elif tag == "display":
        node = Display(_single(children, tag), _require(element, "target"))
    else:
        raise PlanSerializationError(f"unknown plan operator <{tag}>")

    annotations = element.find("annotations")
    if annotations is not None:
        for annotation in annotations.find_all("annotation"):
            node.annotate(_require(annotation, "key"), _require(annotation, "value"))
    return node


def _single(children: list[PlanNode], tag: str) -> PlanNode:
    if len(children) != 1:
        raise PlanSerializationError(f"<{tag}> needs exactly one input, got {len(children)}")
    return children[0]


def plan_from_xml(root: XMLElement) -> QueryPlan:
    """Parse the ``<mqp>`` element form back into a :class:`QueryPlan`."""
    if root.tag != "mqp" or len(root.children) != 1:
        raise PlanSerializationError("expected a single-child <mqp> element")
    return QueryPlan(_node_from_xml(root.children[0]))


def parse_plan(document: str) -> QueryPlan:
    """Parse the XML string form of a plan."""
    return plan_from_xml(parse_xml(document))
