"""Multicore execution: HLC laws, barrier service, sharding, identity, e2e."""

from __future__ import annotations

import threading
import time
from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.harness.scaleout import ScaleoutSpec, run_scaleout
from repro.multicore import (
    BarrierBroken,
    BarrierService,
    HLCStamp,
    HybridLogicalClock,
    MulticoreError,
    WorkerCrashed,
    sequence_identity,
    shard_assignment,
)
from repro.multicore.launcher import window_ms_for
from repro.multicore.sharding import owner_of

# Derandomized so property failures reproduce in CI without a seed database.
derandomized = settings(derandomize=True, deadline=None, max_examples=60)

_SPEC = ScaleoutSpec(
    name="mc-test", topology="small-world", peers=24,
    workload="garage-sale", churn="light", queries=3, seed=11,
)


# --------------------------------------------------------------------------- #
# Hybrid logical clocks
# --------------------------------------------------------------------------- #


class TestHybridLogicalClock:
    @derandomized
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=2, max_size=40))
    def test_ticks_are_strictly_increasing(self, times):
        # Even when simulated time stalls or regresses (window replay), the
        # stamp sequence is strictly monotone.
        clock = HybridLogicalClock(worker=0)
        stamps = [clock.tick(now) for now in times]
        assert all(a < b for a, b in zip(stamps, stamps[1:]))

    @derandomized
    @given(
        st.floats(min_value=0.0, max_value=1e6),
        st.integers(min_value=0, max_value=50),
        st.floats(min_value=0.0, max_value=1e6),
    )
    def test_observe_respects_happened_before(self, remote_physical, remote_logical, now):
        clock = HybridLogicalClock(worker=1)
        before = clock.tick(now)
        remote = HLCStamp(remote_physical, remote_logical, worker=0)
        merged = clock.observe(remote, now)
        # The receive stamp is strictly greater than both the carried stamp
        # and every stamp this clock issued earlier.
        assert merged > remote
        assert merged > before
        assert clock.tick(now) > merged

    def test_stamp_never_runs_behind_simulated_time(self):
        clock = HybridLogicalClock()
        assert clock.tick(5.0).physical == 5.0
        assert clock.tick(3.0).physical == 5.0  # regression absorbed
        assert clock.observe(HLCStamp(1.0, 9, 3), now=7.5).physical == 7.5

    def test_total_order_across_workers(self):
        # Same physical, same logical, different workers: never equal.
        assert HLCStamp(1.0, 0, 0) < HLCStamp(1.0, 0, 1)
        assert HLCStamp(1.0, 0, 1) != HLCStamp(1.0, 0, 2)


# --------------------------------------------------------------------------- #
# Barrier service
# --------------------------------------------------------------------------- #


class TestBarrierService:
    def test_single_party_rounds(self):
        barrier = BarrierService(1, lambda payloads: sum(payloads.values()))
        assert barrier.enter(0, 5) == 5
        assert barrier.enter(0, 7) == 7
        assert barrier.rounds_completed == 2

    def test_all_parties_see_one_reduction(self):
        barrier = BarrierService(3, lambda payloads: dict(sorted(payloads.items())))
        decisions = {}

        def party(wid: int) -> None:
            decisions[wid] = barrier.enter(wid, wid * 10)

        threads = [threading.Thread(target=party, args=(wid,)) for wid in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert decisions == {wid: {0: 0, 1: 10, 2: 20} for wid in range(3)}
        assert barrier.rounds_completed == 1

    def test_duplicate_entry_is_a_protocol_error(self):
        barrier = BarrierService(2, lambda payloads: None)

        def first_entry() -> None:
            with pytest.raises(BarrierBroken):  # released by the teardown below
                barrier.enter(0, "x")

        thread = threading.Thread(target=first_entry)
        thread.start()
        time.sleep(0.05)
        with pytest.raises(MulticoreError, match="twice"):
            barrier.enter(0, "again")
        barrier.break_barrier("test teardown")
        thread.join(timeout=10)

    def test_reducer_failure_breaks_the_barrier(self):
        def exploding(payloads):
            raise ValueError("boom")

        barrier = BarrierService(2, exploding)
        failures: list[Exception] = []

        def parked() -> None:
            try:
                barrier.enter(0, None)
            except Exception as error:  # noqa: BLE001 - collected for assertion
                failures.append(error)

        thread = threading.Thread(target=parked)
        thread.start()
        time.sleep(0.05)
        with pytest.raises(BarrierBroken, match="reducer failed"):
            barrier.enter(1, None)
        thread.join(timeout=10)
        assert len(failures) == 1 and isinstance(failures[0], BarrierBroken)

    def test_worker_crash_while_parked(self):
        # The regression the launcher depends on: a party is parked at the
        # barrier, another party's connection dies, break_barrier must wake
        # the parked thread with BarrierBroken instead of leaving it forever.
        barrier = BarrierService(2, lambda payloads: "never")
        failures: list[Exception] = []
        parked_event = threading.Event()

        def parked() -> None:
            parked_event.set()
            try:
                barrier.enter(0, None)
            except Exception as error:  # noqa: BLE001 - collected for assertion
                failures.append(error)

        thread = threading.Thread(target=parked)
        thread.start()
        assert parked_event.wait(timeout=5)
        time.sleep(0.05)
        barrier.break_barrier("worker 1 control connection lost")
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert len(failures) == 1 and isinstance(failures[0], BarrierBroken)
        assert "connection lost" in str(failures[0])
        # The barrier stays broken for any future entrant.
        with pytest.raises(BarrierBroken):
            barrier.enter(1, None)
        assert barrier.broken is not None

    def test_timeout_raises_instead_of_hanging(self):
        barrier = BarrierService(2, lambda payloads: None, timeout_s=0.2)
        began = time.perf_counter()
        with pytest.raises(BarrierBroken, match="timed out"):
            barrier.enter(0, None)
        assert time.perf_counter() - began < 5.0


# --------------------------------------------------------------------------- #
# Shard assignment
# --------------------------------------------------------------------------- #


class TestShardAssignment:
    @derandomized
    @given(st.integers(min_value=0, max_value=200), st.integers(min_value=1, max_value=9))
    def test_contiguous_and_balanced(self, count, workers):
        addresses = [f"peer{position:04d}:9020" for position in range(count)]
        assignment = shard_assignment(addresses, workers)
        assert len(assignment) == count
        owners = [assignment[address] for address in addresses]
        # Contiguous in population order: owners never decrease.
        assert owners == sorted(owners)
        sizes = [owners.count(worker) for worker in range(workers)]
        if count:
            assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == count

    def test_deterministic_across_calls(self):
        addresses = [f"peer{position:04d}:9020" for position in range(37)]
        assert shard_assignment(addresses, 4) == shard_assignment(list(addresses), 4)

    def test_infrastructure_defaults_to_worker_zero(self):
        assignment = shard_assignment(["a:1", "b:2"], 2)
        assert owner_of(assignment, "meta-index:9020") == 0
        assert owner_of(assignment, "b:2") == 1

    def test_rejects_zero_workers(self):
        with pytest.raises(SimulationError):
            shard_assignment(["a:1"], 0)


# --------------------------------------------------------------------------- #
# Sequence identity
# --------------------------------------------------------------------------- #


def _report_stub(answers: int = 3, workers: int | None = None) -> dict:
    scenario = {"name": "s", "peers": 24}
    if workers is not None:
        scenario["workers"] = workers
    report = {
        "scenario": scenario,
        "population": {"total_nodes": 30},
        "topology": {"kind": "small-world"},
        "traffic": {"messages": 13.0},
        "queries": [
            {"query": "q0", "answers": answers, "expected": answers,
             "recall": 1.0, "latency_ms": 50.0, "messages": 3},
        ],
        "processing": {"plans_processed": 9},
    }
    if workers is not None:
        report["multicore"] = {"workers": workers, "windows": 5}
    return report


class TestSequenceIdentity:
    def test_identical_reports_score_one(self):
        assert sequence_identity(_report_stub(), _report_stub()) == 1.0

    def test_multicore_block_and_workers_knob_are_excluded(self):
        # A flag-on report carries the multicore block and the workers knob;
        # neither may count against identity with the in-process reference.
        assert sequence_identity(_report_stub(), _report_stub(workers=4)) == 1.0

    def test_answer_divergence_fails(self):
        assert sequence_identity(_report_stub(answers=3), _report_stub(answers=2)) < 1.0

    def test_schema_divergence_fails(self):
        mutated = _report_stub()
        mutated["resilience"] = {"retries_sent": 0}
        assert sequence_identity(_report_stub(), mutated) < 1.0

    def test_timing_columns_are_ignored(self):
        slower = _report_stub()
        slower["queries"][0]["latency_ms"] = 999.0
        slower["traffic"] = {"messages": 13.0}
        assert sequence_identity(_report_stub(), slower) == 1.0


# --------------------------------------------------------------------------- #
# Spec / API surface
# --------------------------------------------------------------------------- #


class TestSpecValidation:
    def test_negative_workers_rejected(self):
        with pytest.raises(SimulationError):
            replace(_SPEC, workers=-1).validate()

    def test_workers_require_mqp_routing(self):
        with pytest.raises(SimulationError):
            replace(_SPEC, workers=2, routing="gnutella").validate()

    def test_workers_exclude_subscriptions_and_catalog_tier(self):
        with pytest.raises(SimulationError):
            replace(_SPEC, workers=2, subscribers=4, mutation_rounds=1).validate()
        with pytest.raises(SimulationError):
            replace(_SPEC, workers=2, catalog_shards=2, catalog_replicas=2).validate()

    def test_cluster_workers_need_the_flag(self):
        from repro.api import Cluster
        from repro.errors import APIError
        from repro.perf import flags, overrides

        assert not flags.multiprocess
        with pytest.raises(APIError):
            Cluster(workers=2)
        with overrides(multiprocess=True):
            cluster = Cluster(workers=2)
            assert cluster.workers == 2
            cluster.close()

    def test_window_is_positive_and_bounded(self):
        window = window_ms_for(_SPEC)
        assert 0.0 < window <= 5.0


# --------------------------------------------------------------------------- #
# End to end: worker processes vs the in-process run
# --------------------------------------------------------------------------- #


class TestMulticoreEndToEnd:
    def test_two_workers_match_the_inprocess_run(self):
        single = run_scaleout(_SPEC)
        multi = run_scaleout(replace(_SPEC, workers=2))
        assert sequence_identity(single, multi) == 1.0
        # Answer rows agree column for column (timings legitimately differ).
        for mine, theirs in zip(single["queries"], multi["queries"]):
            for column in ("query", "answers", "expected", "recall", "messages"):
                assert mine[column] == theirs[column]
        # Deterministic replicated bootstrap + owner-only run phase keeps
        # even the traffic totals exact, not just the answer sequence.
        assert multi["traffic"]["messages"] == single["traffic"]["messages"]
        assert multi["traffic"]["bytes"] == single["traffic"]["bytes"]
        block = multi["multicore"]
        assert block["workers"] == 2
        assert block["windows"] >= 1
        assert block["barriers"] >= block["windows"]

    def test_flag_off_report_has_no_multicore_surface(self):
        report = run_scaleout(_SPEC)
        assert "multicore" not in report
        assert "workers" not in report["scenario"]

    def test_killed_worker_raises_typed_error_not_a_hang(self, monkeypatch):
        # The teardown regression: worker 1 dies at its third barrier while
        # the others are parked.  The launcher must reap every child and
        # surface WorkerCrashed promptly instead of wedging on the barrier.
        monkeypatch.setenv("REPRO_MULTICORE_KILL_WORKER", "1@3")
        began = time.perf_counter()
        with pytest.raises(WorkerCrashed):
            run_scaleout(replace(_SPEC, workers=2))
        assert time.perf_counter() - began < 60.0
