"""Catalog entry types (paper §2, §3.2).

A peer's local catalog records what it knows about resources elsewhere:

* :class:`CollectionRef` — a concrete collection at a base server, i.e. the
  "(URL, XPath expression)" pair the paper gives as an index-server entry,
  e.g. ``(http://10.3.4.5, /data[id=245])``.
* :class:`ServerEntry` — a known peer: its address, role (base / index /
  meta-index), interest area, and whether it claims to be authoritative for
  that area.
* :class:`NamedResourceEntry` — a mapping from an application-level URN
  (``urn:ForSale:Portland-CDs``) to collections or to servers that know how
  to resolve it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from functools import lru_cache

from ..errors import CatalogError
from ..namespace import InterestArea

__all__ = [
    "ServerRole",
    "CollectionRef",
    "ServerEntry",
    "NamedResourceEntry",
    "WHOLE_SERVER",
    "canonical_address",
]


@lru_cache(maxsize=8192)
def canonical_address(url: str) -> str:
    """Reduce a server address or collection URL to its ``host[:port]`` form.

    Collection URLs arrive in whatever shape the registering peer used —
    bare ``host:port``, ``http://host:port``, ``https://host:port/`` — while
    churn handling identifies peers by bare address.  Comparing canonical
    forms keeps pruning and locality checks exact instead of guessing at a
    hard-coded scheme list.
    """
    text = url.strip()
    lowered = text.lower()
    for scheme in ("http://", "https://"):
        if lowered.startswith(scheme):
            text = text[len(scheme):]
            break
    return text.rstrip("/")

WHOLE_SERVER = "/*"
"""Sentinel collection path meaning *everything the server holds*.

Used when a catalog (typically a meta-index, which drops collection detail)
knows a server serves an area but not which collections it publishes; plan
construction maps it to ``URLRef(url, None)``, which resolves to the union
of the server's local collections."""


class ServerRole(str, Enum):
    """The roles a peer can play (§3.2).  A peer may hold several."""

    BASE = "base"
    INDEX = "index"
    META_INDEX = "meta-index"
    CATEGORY = "category"
    CLIENT = "client"


@dataclass(frozen=True, order=True)
class CollectionRef:
    """A pointer to a named collection of data at a base server.

    ``path`` may be the :data:`WHOLE_SERVER` sentinel when only the server
    (not its collection layout) is known.
    """

    url: str
    path: str = "/data"
    name: str | None = None
    cardinality: int | None = None

    def __post_init__(self) -> None:
        if not self.url:
            raise CatalogError("CollectionRef needs a URL")

    def __str__(self) -> str:
        return f"({self.url}, {self.path})"


@dataclass
class ServerEntry:
    """What this catalog knows about one remote (or local) server."""

    address: str
    role: ServerRole
    area: InterestArea
    authoritative: bool = False
    collections: list[CollectionRef] = field(default_factory=list)
    registered_at: float = 0.0

    def __post_init__(self) -> None:
        if not self.address:
            raise CatalogError("ServerEntry needs an address")
        if not isinstance(self.area, InterestArea):
            raise CatalogError("ServerEntry area must be an InterestArea")

    def overlaps(self, area: InterestArea) -> bool:
        """True when this server's interest area overlaps ``area``."""
        return self.area.overlaps(area)

    def covers(self, area: InterestArea) -> bool:
        """True when this server's interest area covers all of ``area``."""
        return self.area.covers(area)

    def __repr__(self) -> str:
        flag = ", authoritative" if self.authoritative else ""
        return f"ServerEntry({self.address!r}, {self.role.value}, {self.area}{flag})"


@dataclass
class NamedResourceEntry:
    """Resolution data for an application-level named URN."""

    name: str
    collections: list[CollectionRef] = field(default_factory=list)
    resolver_servers: list[str] = field(default_factory=list)
    area: InterestArea | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise CatalogError("NamedResourceEntry needs a name")

    def merge(self, other: "NamedResourceEntry") -> None:
        """Fold another entry for the same name into this one."""
        if other.name != self.name:
            raise CatalogError(f"cannot merge entries for {other.name!r} into {self.name!r}")
        for collection in other.collections:
            if collection not in self.collections:
                self.collections.append(collection)
        for server in other.resolver_servers:
            if server not in self.resolver_servers:
                self.resolver_servers.append(server)
        if self.area is None:
            self.area = other.area
        elif other.area is not None:
            self.area = self.area.union(other.area)
