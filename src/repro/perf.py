"""Runtime switches for the measured hot paths.

Every structural optimization added for the indexed-catalog work keeps the
seed implementation alive next to it: the linear catalog scans remain the
correctness oracle for the trie index, and the validating XML constructors
remain the reference for the trusted fast-copy path.  This module is the
single switchboard — benchmarks flip it to measure *this* build against the
seed algorithms inside one process, and the equivalence tests flip it to
prove both paths return byte-identical results.

The flags are read at call time (not import time), so a context manager can
toggle them mid-run.  They are process-global on purpose: a benchmark
comparing modes must never accidentally mix them within one measurement.

This module imports nothing from the rest of the package so any layer
(xmlmodel, catalog, network) can consult it without cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = ["flags", "seed_baseline", "overrides"]


class _Flags:
    """Hot-path feature switches; attribute loads keep the checks cheap.

    * ``indexed_catalog`` — trie-backed catalog lookups vs. the seed's
      linear scans.
    * ``trusted_xml_copies`` — validation-free construction for copies of
      already-validated XML subtrees vs. the seed's re-validating
      constructor.
    * ``shared_wire_trees`` — plan (de)serialization and result delivery
      alias write-once subtrees vs. the seed's defensive deep copies.
    * ``lazy_original_plans`` — the immutable original plan carried by an
      MQP is replayed from its wire form and materialized on demand vs. the
      seed's re-encode/re-parse at every hop.
    * ``cached_predicates`` — identical predicate texts share one memoized
      immutable expression AST vs. the seed's per-call tokenizer run.
    * ``streaming_engine`` — pull-based iterator evaluation with bounded
      pipeline-breaker buffers vs. the seed's fully materialized lists.
      Both modes return byte-identical results; the seed path remains the
      correctness oracle for the differential suite.
    * ``streaming_results`` — results leave the answering peer as a
      sequence of ``result-chunk`` frames closed by ``result-end`` vs. the
      seed's single monolithic ``result`` frame.  Off by default: the
      byte-identity gates compare scenario reports against the seed wire
      behaviour, and chunking consumes extra per-message latency draws.
    * ``eager_area_plans`` — a peer holding any URL referenced by a
      predicate-less plan (a bare union of URLs) pins its local data into
      the plan as verbatim XML, so such plans complete instead of
      ping-ponging between data holders to ``max_hops``.  Off by default
      for the same byte-identity reason.
    * ``reliable_delivery`` — per-hop delivery acks with retransmission
      (exponential backoff + deterministic jitter on the logical clock,
      bounded retry budgets, receiver-side dedupe) for MQP and result
      traffic vs. the seed's fire-and-forget forwarding.  Off by default:
      acks and retries are extra wire traffic, and the byte-identity gates
      compare reports against the fire-and-forget wire behaviour.
    * ``continuous_queries`` — standing queries: peers accept
      ``subscribe`` registrations, match mutations against armed plans at
      publish time, and push ``delta-chunk`` envelopes to subscribers vs.
      the seed's answer-once-and-die queries.  Off by default: the
      byte-identity gates compare scenario reports against the
      snapshot-only wire behaviour.
    * ``catalog_tier`` — the sharded, replicated catalog tier: interest
      areas hash to replica groups of index servers, registrations fan out
      to every group member, lookups prefer the owning group with failover
      ordering, index servers keep an LRU answer cache invalidated by
      covering registrations, and rejoining replicas reconcile their
      authoritative sets with surviving group members vs. the seed's flat
      single-catalog routing.  Off by default: the byte-identity gates
      compare scenario reports against the unsharded wire behaviour.
    * ``multiprocess`` — the multicore launcher: a scenario's data peers
      split into contiguous shards across worker processes, cross-shard
      frames relay over localhost TCP with hybrid-logical-clock stamps, and
      the single authoritative simulator relaxes to barrier-coordinated
      simulated-time windows (``repro.multicore``).  Off by default: real
      parallelism re-draws link latencies in a different first-use order,
      so flag-on runs are gated by *sequence* identity (answers, recall,
      schema) instead of report byte-identity.
    """

    __slots__ = (
        "indexed_catalog",
        "trusted_xml_copies",
        "shared_wire_trees",
        "lazy_original_plans",
        "cached_predicates",
        "streaming_engine",
        "streaming_results",
        "eager_area_plans",
        "reliable_delivery",
        "continuous_queries",
        "catalog_tier",
        "multiprocess",
    )

    def __init__(self) -> None:
        self.indexed_catalog = True
        self.trusted_xml_copies = True
        self.shared_wire_trees = True
        self.lazy_original_plans = True
        self.cached_predicates = True
        self.streaming_engine = True
        self.streaming_results = False
        self.eager_area_plans = False
        self.reliable_delivery = False
        self.continuous_queries = False
        self.catalog_tier = False
        self.multiprocess = False


flags = _Flags()
"""The process-wide switchboard.  Mutate via :func:`seed_baseline` in tests."""


@contextmanager
def seed_baseline() -> Iterator[None]:
    """Run the enclosed block with the seed-era algorithms.

    Inside the block, catalogs answer lookups with the original linear scan
    plus per-call sort, and XML subtree copies re-validate every node — the
    algorithmic shape of the pre-index implementation.  Used by the
    benchmarks to measure the optimized paths against the seed behaviour,
    and by the equivalence tests to diff their results.
    """
    with overrides(**{name: False for name in _Flags.__slots__}):
        yield


@contextmanager
def overrides(**values: bool) -> Iterator[None]:
    """Run the enclosed block with specific flags forced to given values.

    Unlike :func:`seed_baseline` this flips only the named switches — the
    differential suites use it to compare exactly one axis (for example the
    streaming engine against the materialized oracle) with every other
    optimization held constant.
    """
    unknown = [name for name in values if name not in _Flags.__slots__]
    if unknown:
        raise AttributeError(f"unknown perf flag(s): {', '.join(sorted(unknown))}")
    previous = {name: getattr(flags, name) for name in values}
    for name, value in values.items():
        setattr(flags, name, bool(value))
    try:
        yield
    finally:
        for name, value in previous.items():
            setattr(flags, name, value)
