"""The per-server MQP processing pipeline of Figure 2.

    MQP (XML) → Parser → Catalog (URN resolution) → Optimizer →
    Policy Manager → Query Engine → mutated MQP (XML) → next server

The :class:`MQPProcessor` implements one server's worth of that pipeline.
It is network-agnostic: the peer classes in :mod:`repro.peers` feed it
incoming plans and act on the returned :class:`ProcessingResult` (deliver
the result, forward the plan, or report that it is stuck).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Sequence

from ..algebra.operators import LeafNode, PlanNode, URLRef, URNRef, VerbatimData
from ..catalog import Binder, Catalog, RoutingCache, ServerRole
from ..engine import QueryEngine
from ..engine.statistics import collect_statistics
from ..errors import RoutingError, URNError
from ..namespace import InterestAreaURN, MultiHierarchicNamespace, NamedURN, parse_urn
from ..optimizer import Optimizer
from ..xmlmodel import XMLElement
from .plan import MutantQueryPlan
from .policy import PolicyManager
from .provenance import ProvenanceAction

__all__ = ["ProcessingAction", "ProcessingResult", "MQPProcessor"]


class ProcessingAction(str, Enum):
    """What the hosting peer should do with the plan after processing."""

    DELIVER = "deliver"            # fully evaluated: send result to the target
    DELIVER_PARTIAL = "partial"    # time budget exhausted: send what we have
    FORWARD = "forward"            # send the mutated plan to the chosen next hop
    STUCK = "stuck"                # nothing evaluable and nowhere to route


@dataclass
class ProcessingResult:
    """Outcome of one server's processing step."""

    action: ProcessingAction
    mqp: MutantQueryPlan
    next_hop: str | None = None
    bound_urns: int = 0
    evaluated_subplans: int = 0
    route_candidates: list[str] = field(default_factory=list)


class MQPProcessor:
    """One peer's mutant-query-plan pipeline."""

    def __init__(
        self,
        address: str,
        catalog: Catalog,
        namespace: MultiHierarchicNamespace | None = None,
        collections: dict[str, list[XMLElement]] | None = None,
        cache: RoutingCache | None = None,
        optimizer: Optimizer | None = None,
        policy: PolicyManager | None = None,
        annotate_statistics: bool = True,
        max_hops: int = 32,
    ) -> None:
        self.address = address
        self.catalog = catalog
        self.namespace = namespace
        self.collections = collections if collections is not None else {}
        self.cache = cache or RoutingCache()
        self.optimizer = optimizer or Optimizer()
        self.policy = policy or PolicyManager()
        self.annotate_statistics = annotate_statistics
        self.max_hops = max_hops
        self.binder = Binder(catalog)
        self.processed_plans = 0

    # ------------------------------------------------------------------ #
    # Local data availability
    # ------------------------------------------------------------------ #

    def has_collection(self, path: str) -> bool:
        """True when this peer stores the collection at ``path``."""
        return path in self.collections

    def add_collection(self, path: str, items: Sequence[XMLElement]) -> None:
        """Store (or replace) a local collection."""
        self.collections[path] = list(items)

    def _is_local_url(self, leaf: URLRef) -> bool:
        if leaf.url not in (self.address, f"http://{self.address}"):
            return False
        return leaf.path is None or self.has_collection(leaf.path)

    def _leaf_available(self, leaf: LeafNode) -> bool:
        if isinstance(leaf, VerbatimData):
            return True
        if isinstance(leaf, URLRef):
            return self._is_local_url(leaf)
        return False

    def _resolve_local_leaf(self, leaf: PlanNode) -> list[XMLElement] | None:
        if isinstance(leaf, URLRef) and self._is_local_url(leaf):
            if leaf.path is None:
                merged: list[XMLElement] = []
                for items in self.collections.values():
                    merged.extend(items)
                return merged
            return self.collections[leaf.path]
        return None

    # ------------------------------------------------------------------ #
    # The pipeline
    # ------------------------------------------------------------------ #

    def process(self, mqp: MutantQueryPlan, now: float = 0.0) -> ProcessingResult:
        """Run the full Figure-2 pipeline once and decide what happens next."""
        self.processed_plans += 1
        route_candidates: list[str] = []

        bound = self._bind_urns(mqp, now, route_candidates)
        evaluated = self._optimize_and_evaluate(mqp, now)

        if mqp.is_fully_evaluated():
            return ProcessingResult(
                ProcessingAction.DELIVER,
                mqp,
                bound_urns=bound,
                evaluated_subplans=evaluated,
            )

        if mqp.over_budget(now) or mqp.provenance.hop_count() >= self.max_hops:
            return ProcessingResult(
                ProcessingAction.DELIVER_PARTIAL,
                mqp,
                bound_urns=bound,
                evaluated_subplans=evaluated,
            )

        urn_candidates, data_candidates = self._candidates_for_remaining(mqp)
        route_candidates.extend(urn_candidates)
        ordered = self._order_candidates(route_candidates + data_candidates)
        revisitable = self._order_candidates(data_candidates)
        next_hop = self.policy.choose_next_hop(
            ordered, mqp.provenance.visited_servers(), revisitable=revisitable
        )
        if next_hop is None:
            return ProcessingResult(
                ProcessingAction.STUCK,
                mqp,
                bound_urns=bound,
                evaluated_subplans=evaluated,
                route_candidates=ordered,
            )
        mqp.provenance.add(self.address, ProvenanceAction.FORWARDED, now, detail=next_hop)
        return ProcessingResult(
            ProcessingAction.FORWARD,
            mqp,
            next_hop=next_hop,
            bound_urns=bound,
            evaluated_subplans=evaluated,
            route_candidates=ordered,
        )

    # ------------------------------------------------------------------ #
    # Stage 1: URN binding via the catalog
    # ------------------------------------------------------------------ #

    def _bind_urns(
        self, mqp: MutantQueryPlan, now: float, route_candidates: list[str]
    ) -> int:
        bound = 0
        for ref in list(mqp.plan.urn_refs()):
            try:
                parsed = parse_urn(ref.urn)
            except URNError:
                continue
            replacement: PlanNode | None = None
            staleness = 0.0
            if isinstance(parsed, NamedURN):
                replacement = self._bind_named(parsed, route_candidates)
            elif isinstance(parsed, InterestAreaURN):
                replacement, staleness = self._bind_area(parsed, mqp, route_candidates)
            if replacement is None:
                continue
            mqp.plan.replace_node(ref, replacement)
            mqp.provenance.add(
                self.address,
                ProvenanceAction.BOUND,
                now,
                detail=ref.urn,
                staleness_minutes=staleness,
            )
            bound += 1
        return bound

    def _lookup_named(self, urn: NamedURN):
        """Look a named URN up under both its full form and its bare name."""
        return self.catalog.lookup_named(str(urn)) or self.catalog.lookup_named(urn.name)

    def _bind_named(self, urn: NamedURN, route_candidates: list[str]) -> PlanNode | None:
        entry = self._lookup_named(urn)
        if entry is None:
            route_candidates.extend(self._known_indexers())
            return None
        route_candidates.extend(entry.resolver_servers)
        if not entry.collections:
            return None
        leaves: list[PlanNode] = [
            URLRef(collection.url, collection.path) for collection in entry.collections
        ]
        if len(leaves) == 1:
            return leaves[0]
        from ..algebra.operators import Union as UnionOp

        return UnionOp(leaves)

    def _bind_area(
        self,
        urn: InterestAreaURN,
        mqp: MutantQueryPlan,
        route_candidates: list[str],
    ) -> tuple[PlanNode | None, float]:
        binding = self.binder.bind_area(urn.area)
        if binding is None:
            route_candidates.extend(self._routing_servers_for(urn.area))
            return None, 0.0
        alternative = self.policy.choose_alternative(binding, mqp.preferences)
        for source in alternative.sources:
            if not source.is_concrete:
                route_candidates.append(source.server)
        if not alternative.is_concrete:
            # Partially routable alternative: keep the URN so a downstream
            # server can finish the binding, but remember where to go.
            route_candidates.extend(self._routing_servers_for(urn.area))
            return None, 0.0
        return alternative.to_plan_node(str(urn)), alternative.max_delay_minutes

    def _known_indexers(self) -> list[str]:
        """Every index / meta-index server this catalog knows about."""
        entries = [
            entry.address
            for entry in self.catalog.servers.values()
            if entry.role in (ServerRole.INDEX, ServerRole.META_INDEX)
            and entry.address != self.address
        ]
        return sorted(entries)

    def _routing_servers_for(self, area) -> list[str]:
        candidates: list[str] = []
        for entry in self.cache.lookup(area, require_cover=True):
            candidates.append(entry.server)
        for entry in self.catalog.authoritative_servers(area):
            candidates.append(entry.address)
        for entry in self.catalog.servers_overlapping(
            area, roles=(ServerRole.INDEX, ServerRole.META_INDEX)
        ):
            candidates.append(entry.address)
        return [address for address in candidates if address != self.address]

    # ------------------------------------------------------------------ #
    # Stages 2-4: optimize, policy, evaluate, reduce
    # ------------------------------------------------------------------ #

    def _optimize_and_evaluate(self, mqp: MutantQueryPlan, now: float) -> int:
        outcome = self.optimizer.optimize(mqp.plan, self._leaf_available)
        if outcome.fired_rules:
            mqp.provenance.add(
                self.address,
                ProvenanceAction.REOPTIMIZED,
                now,
                detail=",".join(outcome.fired_rules),
            )
        mqp.plan = outcome.plan

        decision = self.policy.choose_subplans(outcome)
        engine = QueryEngine(resolver=self._resolve_local_leaf)
        evaluated = 0
        for subplan in decision.evaluate:
            items = engine.evaluate(subplan)
            leaf = mqp.plan.substitute_result(subplan, items)
            if self.annotate_statistics:
                stats = collect_statistics(items)
                for key, value in stats.to_annotations().items():
                    leaf.annotate(key, value)
            mqp.provenance.add(
                self.address,
                ProvenanceAction.EVALUATED,
                now,
                detail=f"{subplan.operator}->{len(items)} items",
            )
            evaluated += 1
        return evaluated

    # ------------------------------------------------------------------ #
    # Stage 5: routing candidates for whatever is left
    # ------------------------------------------------------------------ #

    def _candidates_for_remaining(self, mqp: MutantQueryPlan) -> tuple[list[str], list[str]]:
        """Candidates split into (URN-routing servers, data-holding servers).

        Data-holding servers may be revisited: a leaf that was not reducible
        on the first visit (because other inputs were still abstract) can be
        reduced once the plan has accumulated the missing data — the
        round-trip of Figure 4.
        """
        urn_candidates: list[str] = []
        data_candidates: list[str] = []
        for ref in mqp.plan.url_refs():
            if not self._is_local_url(ref):
                data_candidates.append(ref.url.removeprefix("http://"))
        for ref in mqp.plan.urn_refs():
            try:
                parsed = parse_urn(ref.urn)
            except URNError:
                continue
            if isinstance(parsed, InterestAreaURN):
                urn_candidates.extend(self._routing_servers_for(parsed.area))
            elif isinstance(parsed, NamedURN):
                entry = self._lookup_named(parsed)
                if entry is not None:
                    urn_candidates.extend(entry.resolver_servers)
                    data_candidates.extend(collection.url for collection in entry.collections)
                else:
                    urn_candidates.extend(self._known_indexers())
        return urn_candidates, data_candidates

    def _order_candidates(self, candidates: list[str]) -> list[str]:
        ordered: list[str] = []
        for candidate in candidates:
            address = candidate.removeprefix("http://")
            if address != self.address and address not in ordered:
                ordered.append(address)
        return ordered

    # ------------------------------------------------------------------ #
    # Learning from plans that pass through (§5.1 meta-index updating)
    # ------------------------------------------------------------------ #

    def learn_from(self, mqp: MutantQueryPlan) -> None:
        """Cache which servers successfully handled which interest areas."""
        for ref in mqp.original.urn_refs() if mqp.original else []:
            try:
                parsed = parse_urn(ref.urn)
            except URNError:
                continue
            if not isinstance(parsed, InterestAreaURN):
                continue
            for record in mqp.provenance.records:
                if record.action is ProvenanceAction.BOUND and record.detail == ref.urn:
                    if record.server != self.address:
                        self.cache.remember(parsed.area, record.server)

    def require_target(self, mqp: MutantQueryPlan) -> str:
        """Return the plan's target or raise a routing error."""
        if mqp.target is None:
            raise RoutingError(f"plan {mqp.query_id} has no target address")
        return mqp.target
