"""The P2P garage-sale workload (paper §2): sellers, items, and their locality.

"Data about items in garage sales, second hand stores, and auctions come
online ... For-sale data is likely to have locality in terms of geographic
location or category of merchandise."  The generator models exactly that
locality assumption: each seller picks one city and one merchandise
specialty (with Zipf-skewed popularity), and all of its items fall inside
that interest cell.  Item bundles are XML, with the fields the paper lists
(name, location, description, condition, price, quantity).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..namespace import (
    CategoryPath,
    InterestArea,
    InterestCell,
    MultiHierarchicNamespace,
    garage_sale_namespace,
)
from ..xmlmodel import XMLElement, text_element
from .distributions import make_rng, zipf_choice

__all__ = ["GarageSaleConfig", "SellerData", "GarageSaleWorkload"]


_ADJECTIVES = ["Vintage", "Used", "Refurbished", "Classic", "Handmade", "Antique", "Modern", "Compact"]
_CONDITIONS = ["mint", "good", "fair", "worn"]


@dataclass(frozen=True)
class GarageSaleConfig:
    """Parameters of a generated garage-sale population."""

    sellers: int = 20
    mean_items_per_seller: float = 12.0
    city_skew: float = 1.1
    category_skew: float = 0.9
    price_range: tuple[float, float] = (2.0, 400.0)
    seller_category_depth: int = 1
    seed: int = 42


@dataclass
class SellerData:
    """One seller: its address, interest cell, and generated item bundles."""

    address: str
    cell: InterestCell
    items: list[XMLElement] = field(default_factory=list)

    @property
    def area(self) -> InterestArea:
        """The seller's interest area (a single cell)."""
        return InterestArea([self.cell])

    @property
    def city(self) -> CategoryPath:
        """The seller's location category."""
        return self.cell.coordinate(0)

    @property
    def category(self) -> CategoryPath:
        """The seller's merchandise specialty."""
        return self.cell.coordinate(1)


class GarageSaleWorkload:
    """Generates sellers, items and ground-truth answers for the garage sale."""

    def __init__(
        self,
        config: GarageSaleConfig | None = None,
        namespace: MultiHierarchicNamespace | None = None,
    ) -> None:
        self.config = config or GarageSaleConfig()
        self.namespace = namespace or garage_sale_namespace()
        self._rng = make_rng(self.config.seed)
        self._cities = self.namespace.dimensions[0].leaves()
        merchandise = self.namespace.dimensions[1]
        depth = max(1, self.config.seller_category_depth)
        self._categories = [
            category for category in merchandise.categories() if 1 <= category.depth <= depth
        ]
        self.sellers: list[SellerData] = []
        self._generate()

    # -- generation ------------------------------------------------------------------ #

    def _generate(self) -> None:
        for index in range(self.config.sellers):
            city = zipf_choice(self._rng, self._cities, self.config.city_skew)
            category = zipf_choice(self._rng, self._categories, self.config.category_skew)
            cell = self.namespace.cell(city, category)
            seller = SellerData(address=f"seller{index:03d}:9020", cell=cell)
            item_count = max(1, int(self._rng.poisson(self.config.mean_items_per_seller)))
            leaf_categories = self.namespace.dimensions[1].descendants(category)
            for item_index in range(item_count):
                seller.items.append(self._make_item(seller, item_index, leaf_categories))
            self.sellers.append(seller)

    def _make_item(
        self, seller: SellerData, index: int, leaf_categories: list[CategoryPath]
    ) -> XMLElement:
        category = leaf_categories[int(self._rng.integers(len(leaf_categories)))]
        adjective = _ADJECTIVES[int(self._rng.integers(len(_ADJECTIVES)))]
        condition = _CONDITIONS[int(self._rng.integers(len(_CONDITIONS)))]
        low, high = self.config.price_range
        price = round(float(self._rng.uniform(low, high)), 2)
        quantity = int(self._rng.integers(1, 4))
        title = f"{adjective} {category.label} #{index}"
        return XMLElement(
            "item",
            {"id": f"{seller.address}-{index}"},
            [
                text_element("title", title),
                text_element("price", price),
                text_element("condition", condition),
                text_element("quantity", quantity),
                text_element("city", str(seller.city)),
                text_element("category", str(category)),
                text_element("seller", seller.address),
                text_element("description", f"{adjective} {category.label} in {condition} condition"),
            ],
        )

    # -- ground truth ------------------------------------------------------------------- #

    def all_items(self) -> list[XMLElement]:
        """Every generated item, across sellers."""
        return [item for seller in self.sellers for item in seller.items]

    def sellers_overlapping(self, area: InterestArea) -> list[SellerData]:
        """Sellers whose interest cell overlaps the query area."""
        return [seller for seller in self.sellers if area.overlaps(seller.area)]

    def matching_items(self, area: InterestArea, max_price: float | None = None) -> list[XMLElement]:
        """Ground-truth answer: items covered by ``area`` (optionally below a price)."""
        matches: list[XMLElement] = []
        for seller in self.sellers:
            if not area.covers_cell(seller.cell) and not self._items_could_match(seller, area):
                continue
            for item in seller.items:
                category = CategoryPath.parse(item.child_text("category") or "*")
                cell = InterestCell((seller.city, category))
                if not area.covers_cell(cell):
                    continue
                if max_price is not None and float(item.child_text("price") or "inf") >= max_price:
                    continue
                matches.append(item)
        return matches

    def _items_could_match(self, seller: SellerData, area: InterestArea) -> bool:
        return area.overlaps(seller.area)

    def ground_truth_count(self, area: InterestArea, max_price: float | None = None) -> int:
        """Number of items a complete answer should contain."""
        return len(self.matching_items(area, max_price))
