"""Tests for the XPath-lite evaluator."""

import pytest

from repro.errors import PathSyntaxError
from repro.xmlmodel import (
    element,
    evaluate_path,
    evaluate_path_values,
    parse_path,
    text_element,
)


@pytest.fixture()
def document():
    return element(
        "data",
        {"id": "root"},
        element(
            "item",
            {"id": "245"},
            text_element("title", "Putter"),
            text_element("price", "45"),
        ),
        element(
            "item",
            {"id": "246"},
            text_element("title", "Driver"),
            text_element("price", "120"),
        ),
        element(
            "bundle",
            {},
            element("item", {"id": "300"}, text_element("title", "Irons"), text_element("price", "80")),
        ),
    )


class TestParsing:
    def test_rejects_empty(self):
        with pytest.raises(PathSyntaxError):
            parse_path("")

    def test_rejects_text_in_middle(self):
        with pytest.raises(PathSyntaxError):
            parse_path("a/text()/b")

    def test_rejects_attribute_in_middle(self):
        with pytest.raises(PathSyntaxError):
            parse_path("a/@id/b")

    def test_rejects_unbalanced_predicate(self):
        with pytest.raises(PathSyntaxError):
            parse_path("item[foo")

    def test_parse_records_source(self):
        assert parse_path(" item/price ").source == "item/price"


class TestChildSteps:
    def test_relative_child_path(self, document):
        assert len(evaluate_path(document, "item")) == 2

    def test_absolute_path_matches_root_tag(self, document):
        assert len(evaluate_path(document, "/data/item")) == 2
        assert evaluate_path(document, "/other/item") == []

    def test_nested_path(self, document):
        values = evaluate_path_values(document, "item/title")
        assert values == ["Putter", "Driver"]

    def test_wildcard_step(self, document):
        assert len(evaluate_path(document, "*")) == 3

    def test_missing_path_returns_empty(self, document):
        assert evaluate_path(document, "nothing/here") == []


class TestDescendantSteps:
    def test_descendant_finds_nested(self, document):
        assert len(evaluate_path(document, "//item")) == 3

    def test_descendant_values(self, document):
        assert set(evaluate_path_values(document, "//title")) == {"Putter", "Driver", "Irons"}

    def test_no_duplicates_in_document_order(self, document):
        ids = [node.get("id") for node in evaluate_path(document, "//item")]
        assert ids == ["245", "246", "300"]


class TestPredicates:
    def test_attribute_equality(self, document):
        nodes = evaluate_path(document, "item[@id = '245']")
        assert len(nodes) == 1
        assert nodes[0].child_text("title") == "Putter"

    def test_numeric_comparison_on_child(self, document):
        nodes = evaluate_path(document, "//item[price < 100]")
        assert {node.get("id") for node in nodes} == {"245", "300"}

    def test_existence_predicate(self, document):
        assert len(evaluate_path(document, "item[title]")) == 2
        assert evaluate_path(document, "item[missing]") == []

    def test_positional_predicate(self, document):
        nodes = evaluate_path(document, "item[2]")
        assert [node.get("id") for node in nodes] == ["246"]

    def test_attribute_presence_predicate(self, document):
        assert len(evaluate_path(document, "//item[@id]")) == 3

    def test_paper_catalog_entry_style(self, document):
        # (http://10.3.4.5, /data[id=245]) -- id here is a child-element test
        data = element("data", {}, element("collection", {}, text_element("id", "245")))
        assert len(evaluate_path(data, "/data/collection[id = 245]")) == 1


class TestValueExtraction:
    def test_attribute_extraction(self, document):
        assert evaluate_path_values(document, "item/@id") == ["245", "246"]

    def test_text_function(self, document):
        assert evaluate_path_values(document, "item/title/text()") == ["Putter", "Driver"]

    def test_element_text_fallback(self, document):
        assert evaluate_path_values(document, "item/price") == ["45", "120"]
