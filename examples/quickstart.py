"""Quickstart: a five-peer P2P garage sale answering one mutant query plan.

Run with::

    python examples/quickstart.py            # deterministic simulator
    python examples/quickstart.py aio        # same run over real TCP sockets

Everything goes through the public client API (``repro.api``): a
:class:`~repro.api.Cluster` owns the network and transport, per-peer
:class:`~repro.api.Session` handles publish data and issue queries, and the
answer comes back as a future-like :class:`~repro.api.QueryHandle`.  The
scenario: two Portland CD sellers, an Oregon index server, a global
meta-index server and a client; the query is "CDs under $10 in Portland",
travelling as a mutant query plan.  The output shows the route the plan
took (meta-index -> index -> sellers), the traffic it cost, and the answer
— identical on either transport backend.
"""

from __future__ import annotations

import sys

from repro.api import Cluster
from repro.namespace import garage_sale_namespace
from repro.xmlmodel import XMLElement, element, text_element


def cd(title: str, price: float) -> XMLElement:
    return element(
        "item",
        {},
        text_element("title", title),
        text_element("price", price),
        text_element("city", "USA/OR/Portland"),
        text_element("category", "Music/CDs"),
    )


def main(transport: str = "sim") -> None:
    namespace = garage_sale_namespace()
    portland_cds = namespace.area(["USA/OR/Portland", "Music/CDs"])

    with Cluster(namespace=namespace, transport=transport) as cluster:
        seller1 = cluster.base_server("seller1:9020", portland_cds)
        seller2 = cluster.base_server("seller2:9020", portland_cds)
        cluster.index_server("index-or:9020", namespace.area(["USA/OR", "*"]))
        cluster.meta_index("meta-index:9020")
        client = cluster.client("client:9020")

        seller1.publish("cds", [cd("Abbey Road", 8), cd("Kind of Blue", 12)])
        seller2.publish("cds", [cd("Blue Train", 6), cd("Giant Steps", 14)])

        # Wire the distributed catalog (base -> index -> meta-index) and give
        # the client its out-of-band knowledge of the meta-index server.
        cluster.connect()

        # The query: an interest-area URN plus a price selection, as in
        # Figure 3 — built fluently, compiled to a mutant query plan.
        query = client.query().area(portland_cds).where("price < 10").expecting(2)
        print("Query plan:")
        print(query.compile().explain())

        handle = query.submit()
        result = handle.result(timeout=60_000)

        trace = handle.trace()
        print("\nRoute taken:", " -> ".join(trace.visited))
        print(
            f"Messages: {trace.messages}   bytes: {trace.bytes}   "
            f"latency: {trace.latency_ms:.1f} simulated ms   transport: {transport}"
        )
        print("\nAnswer:")
        for item in result.items:
            print(f"  {item.child_text('title')}  ${item.child_text('price')}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "sim")
