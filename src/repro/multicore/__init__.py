"""Multi-process peer execution (``flags.multiprocess``).

One scenario, N worker processes: each worker hosts a contiguous shard of
the data peers behind its own transport, cross-shard traffic travels as
wire-v2 relay frames over localhost TCP, and the single authoritative
simulator clock is relaxed to a coordination protocol — hybrid logical
clocks stamped on every frame (:mod:`.clock`) plus a reduction barrier
(:mod:`.barrier`) that advances all workers through bounded simulated-time
windows.  See ``docs/multicore.md`` for the model and why byte-identity
gates become sequence-identity gates under the flag.
"""

from .barrier import BarrierBroken, BarrierService
from .clock import HLCStamp, HybridLogicalClock
from .errors import MulticoreError, WorkerCrashed
from .launcher import run_multicore
from .report import sequence_identity
from .sharding import shard_assignment

__all__ = [
    "BarrierBroken",
    "BarrierService",
    "HLCStamp",
    "HybridLogicalClock",
    "MulticoreError",
    "WorkerCrashed",
    "run_multicore",
    "sequence_identity",
    "shard_assignment",
]
