"""Plan interpreter: evaluate a (sub-)plan over locally available data.

This is the "Query Engine" box of Figure 2.  It walks a logical plan tree
bottom-up and produces the result collection as a list of XML items.  Data
for URL / URN leaves is supplied by a *resolver* callback — the engine
itself has no notion of the network; the mutant-query-plan processor only
hands it sub-plans whose leaves are locally available.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..errors import EvaluationError
from ..xmlmodel import XMLElement
from ..algebra.operators import (
    Aggregate,
    ConjointOr,
    Difference,
    Display,
    Join,
    OrderBy,
    PlanNode,
    Project,
    Select,
    TopN,
    Union,
    URLRef,
    URNRef,
    VerbatimData,
)
from ..algebra.plan import QueryPlan
from . import operators as physical

__all__ = ["LeafResolver", "QueryEngine"]


LeafResolver = Callable[[PlanNode], Sequence[XMLElement] | None]
"""Callback mapping a URL/URN leaf to its local data items (or ``None``)."""


class QueryEngine:
    """Evaluates plan trees whose leaves are locally available.

    Parameters
    ----------
    resolver:
        Optional callback consulted for :class:`URLRef` and :class:`URNRef`
        leaves.  Returning ``None`` means the leaf is not available locally
        and evaluation fails with :class:`EvaluationError`.

    Cross-plan result caching lives one level up: the batched MQP pipeline
    keys sub-plans with :class:`~repro.engine.memo.EvaluationMemo` and only
    calls the engine on memo misses.
    """

    def __init__(self, resolver: LeafResolver | None = None) -> None:
        self.resolver = resolver
        self.operators_evaluated = 0
        self.items_produced = 0

    # -- public API ---------------------------------------------------------- #

    def evaluate(self, plan: QueryPlan | PlanNode) -> list[XMLElement]:
        """Evaluate a plan (or bare node) and return the result items."""
        node = plan.root if isinstance(plan, QueryPlan) else plan
        items = self._evaluate(node)
        self.items_produced += len(items)
        return items

    def evaluate_collection(self, plan: QueryPlan | PlanNode, tag: str = "result") -> XMLElement:
        """Evaluate and wrap the result items in a single collection element."""
        return XMLElement(tag, {}, [item.copy() for item in self.evaluate(plan)])

    # -- recursive evaluation -------------------------------------------------- #

    def _evaluate(self, node: PlanNode) -> list[XMLElement]:
        self.operators_evaluated += 1
        if isinstance(node, VerbatimData):
            return node.items
        if isinstance(node, (URLRef, URNRef)):
            return self._resolve_leaf(node)
        if isinstance(node, Select):
            return physical.evaluate_select(self._evaluate(node.child), node.predicate)
        if isinstance(node, Project):
            return physical.evaluate_project(self._evaluate(node.child), node.columns, node.item_tag)
        if isinstance(node, Join):
            return physical.evaluate_join(
                self._evaluate(node.left),
                self._evaluate(node.right),
                node.left_path,
                node.right_path,
                node.join_type,
                node.output_tag,
            )
        if isinstance(node, Union):
            return physical.evaluate_union([self._evaluate(child) for child in node.children])
        if isinstance(node, ConjointOr):
            # An unrewritten conjoint union falls back to its first branch
            # (the rewrite rules A | B -> A / A | B -> B make any branch valid).
            return self._evaluate(node.children[0])
        if isinstance(node, Difference):
            return physical.evaluate_difference(
                self._evaluate(node.left), self._evaluate(node.right), node.key_path
            )
        if isinstance(node, Aggregate):
            return physical.evaluate_aggregate(
                self._evaluate(node.child),
                node.function,
                node.value_path,
                node.group_path,
                node.output_tag,
            )
        if isinstance(node, OrderBy):
            return physical.evaluate_order_by(self._evaluate(node.child), node.path, node.descending)
        if isinstance(node, TopN):
            return physical.evaluate_top_n(
                self._evaluate(node.child), node.limit, node.path, node.descending
            )
        if isinstance(node, Display):
            return self._evaluate(node.child)
        raise EvaluationError(f"cannot evaluate plan node {type(node).__name__}")

    def _resolve_leaf(self, leaf: PlanNode) -> list[XMLElement]:
        if self.resolver is not None:
            items = self.resolver(leaf)
            if items is not None:
                return list(items)
        description = getattr(leaf, "url", None) or getattr(leaf, "urn", None)
        raise EvaluationError(f"leaf {description!r} is not available locally")
