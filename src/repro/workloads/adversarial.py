"""Adversarial workload generators: the scenarios that try to break us.

The steady-state workloads (:mod:`repro.workloads.garage_sale`,
:mod:`repro.workloads.gene_expression`) model cooperative populations.
Production claims need the opposite: query storms concentrated on a few hot
areas, peers that consume routing effort but contribute no answers, and
catalogs whose entries are wrong — either *stale* (they describe peers that
silently died) or *lying* (they claim interest areas their servers never
held, the multiple-origin/conflicting-authority failure mode of the BGP
MOAS analysis in PAPERS.md).

Everything here is a pure, seeded *decision* generator: given an RNG and a
population it decides who misbehaves, when bursts fire, and which catalog
entries to poison.  Applying those decisions to a live scenario is the
harness's job (:mod:`repro.harness.scaleout`), so the generators stay
trivially property-testable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..catalog import ServerEntry
from ..errors import WorkloadError
from .distributions import zipf_rank_sequence

__all__ = [
    "QUERY_MIXES",
    "CATALOG_MODES",
    "FlashCrowdSchedule",
    "zipf_query_ranks",
    "flash_crowd_schedule",
    "select_free_riders",
    "stale_crash_set",
    "lying_area_swaps",
    "poison_catalog",
]

QUERY_MIXES = ("steady", "zipf", "flash-crowd")
"""Query popularity mixes a scale-out spec can select."""

CATALOG_MODES = ("honest", "stale", "lying")
"""Catalog integrity modes a scale-out spec can select."""


# --------------------------------------------------------------------------- #
# Query popularity: Zipf replay and flash crowds
# --------------------------------------------------------------------------- #


def zipf_query_ranks(
    rng: np.random.Generator, pool_size: int, length: int, skew: float = 1.2
) -> list[int]:
    """Which pooled query each issued query replays, Zipf-skewed.

    Rank 0 is the hottest query of the pool; with the default skew roughly
    a third of all issued queries hit it — the file-sharing-style popularity
    regime the paper's locality argument assumes.
    """
    return zipf_rank_sequence(rng, pool_size, length, skew)


@dataclass(frozen=True)
class FlashCrowdSchedule:
    """A resolved flash-crowd issue schedule.

    ``times_ms`` and ``ranks`` are parallel: query ``i`` of the run fires at
    ``times_ms[i]`` and replays pool entry ``ranks[i]``.  Burst members all
    replay the hot query (rank 0) and all fire inside
    ``[burst_at_ms, burst_at_ms + burst_width_ms]``; background queries keep
    the steady cadence.
    """

    times_ms: tuple[float, ...]
    ranks: tuple[int, ...]
    burst_at_ms: float
    burst_width_ms: float
    burst_size: int

    def __post_init__(self) -> None:
        if len(self.times_ms) != len(self.ranks):
            raise WorkloadError("flash-crowd times and ranks must be parallel")

    @property
    def burst_indexes(self) -> list[int]:
        """Positions of the burst members within the issue order."""
        end = self.burst_at_ms + self.burst_width_ms
        return [
            index
            for index, (at, rank) in enumerate(zip(self.times_ms, self.ranks))
            if rank == 0 and self.burst_at_ms <= at <= end
        ]


def flash_crowd_schedule(
    rng: np.random.Generator,
    queries: int,
    pool_size: int,
    start_ms: float,
    interval_ms: float,
    burst_fraction: float = 0.5,
    burst_width_ms: float = 40.0,
) -> FlashCrowdSchedule:
    """Turn a steady query cadence into a flash crowd on the hottest query.

    The last ``burst_fraction`` of the scheduled queries collapse onto the
    hot query (pool rank 0) inside a ``burst_width_ms`` window opening where
    the steady schedule had reached; the leading queries keep their steady
    spacing and draw uniformly from the rest of the pool.  The burst is
    therefore *additional load on one area*, not extra queries: run reports
    stay comparable against the steady mix by query count.
    """
    if queries < 1:
        raise WorkloadError("flash_crowd_schedule needs at least one query")
    if pool_size < 1:
        raise WorkloadError("flash_crowd_schedule needs a non-empty query pool")
    if not 0.0 < burst_fraction <= 1.0:
        raise WorkloadError("burst_fraction must be in (0, 1]")
    if burst_width_ms <= 0.0:
        raise WorkloadError("burst_width_ms must be positive")
    burst_size = max(1, int(round(queries * burst_fraction)))
    steady_count = queries - burst_size
    times: list[float] = []
    ranks: list[int] = []
    for position in range(steady_count):
        times.append(start_ms + position * interval_ms)
        if pool_size == 1:
            ranks.append(0)
        else:
            ranks.append(1 + int(rng.integers(pool_size - 1)))
    burst_at = start_ms + steady_count * interval_ms
    offsets = sorted(float(rng.uniform(0.0, burst_width_ms)) for _ in range(burst_size))
    for offset in offsets:
        times.append(burst_at + offset)
        ranks.append(0)
    return FlashCrowdSchedule(
        times_ms=tuple(times),
        ranks=tuple(ranks),
        burst_at_ms=burst_at,
        burst_width_ms=burst_width_ms,
        burst_size=burst_size,
    )


# --------------------------------------------------------------------------- #
# Free riders: forward but never evaluate
# --------------------------------------------------------------------------- #


def select_free_riders(
    rng: np.random.Generator, addresses: list[str], fraction: float
) -> list[str]:
    """The seeded subset of peers that will forward but never evaluate.

    Sorted for determinism: the same rng state and population always yields
    the same rider set, independent of the caller's address ordering.
    """
    if not 0.0 <= fraction <= 1.0:
        raise WorkloadError(f"free-rider fraction must be in [0, 1], got {fraction}")
    count = int(round(len(addresses) * fraction))
    if count == 0:
        return []
    pool = sorted(addresses)
    chosen = rng.choice(len(pool), size=count, replace=False)
    return sorted(pool[int(index)] for index in chosen)


# --------------------------------------------------------------------------- #
# Catalog poisoning: stale and lying authority
# --------------------------------------------------------------------------- #


def stale_crash_set(
    rng: np.random.Generator, addresses: list[str], fraction: float = 0.2
) -> list[str]:
    """Peers that die silently at t≈0, leaving every catalog entry stale.

    The catalogs are never told: routing keeps chasing the dead addresses,
    which is precisely the staleness the currency/completeness tradeoff is
    supposed to surface as dropped messages and lost recall.
    """
    if not 0.0 <= fraction <= 1.0:
        raise WorkloadError(f"stale fraction must be in [0, 1], got {fraction}")
    count = int(round(len(addresses) * fraction))
    if count == 0:
        return []
    pool = sorted(addresses)
    chosen = rng.choice(len(pool), size=count, replace=False)
    return sorted(pool[int(index)] for index in chosen)


def lying_area_swaps(
    rng: np.random.Generator, addresses: list[str], fraction: float = 0.25
) -> list[tuple[str, str]]:
    """Disjoint pairs of base servers whose advertised areas get swapped.

    Each pair models conflicting authority: both catalogs' entries now claim
    an interest area the server does not hold, so area-routed plans arrive
    at peers with none of the requested data.  Pairs are disjoint and the
    pairing is seeded, so the same population lies the same way every run.
    """
    if not 0.0 <= fraction <= 1.0:
        raise WorkloadError(f"lying fraction must be in [0, 1], got {fraction}")
    pool = sorted(addresses)
    pair_count = int(round(len(pool) * fraction / 2.0))
    if pair_count == 0 or len(pool) < 2:
        return []
    chosen = rng.choice(len(pool), size=min(2 * pair_count, len(pool) - len(pool) % 2), replace=False)
    picked = [pool[int(index)] for index in chosen]
    return [(picked[i], picked[i + 1]) for i in range(0, len(picked) - 1, 2)]


def poison_catalog(catalog, swaps: list[tuple[str, str]]) -> int:
    """Apply lying-area swaps to one catalog; returns entries rewritten.

    Only catalogs that know *both* ends of a pair are affected — a regional
    index server that has never heard of one endpoint keeps its honest view,
    exactly like a BGP speaker outside the leak's propagation scope.
    """
    poisoned = 0
    for first, second in swaps:
        entry_a = catalog.servers.get(first)
        entry_b = catalog.servers.get(second)
        if entry_a is None or entry_b is None:
            continue
        area_a, area_b = entry_a.area, entry_b.area
        for address, role, area, authoritative, collections in (
            (first, entry_a.role, area_b, entry_a.authoritative, entry_a.collections),
            (second, entry_b.role, area_a, entry_b.authoritative, entry_b.collections),
        ):
            replacement = ServerEntry(
                address=address,
                role=role,
                area=area,
                authoritative=authoritative,
                collections=list(collections),
            )
            # register_server merges areas on re-registration (it is built
            # to never lose knowledge); a lie must *replace*, so drop the
            # honest entry first.
            catalog.forget_server(address)
            catalog.register_server(replacement)
            poisoned += 1
    return poisoned
