"""Classical algebraic rewrite rules.

These are the availability-independent rules every server applies to an
incoming mutant query plan before deciding what to evaluate locally:
selection pushdown through unions and conjoint unions (the rewrite shown in
Figure 4(a), where ``select price < $10`` is pushed through the union of
the two seller URLs), merging of adjacent selections, and removal of
degenerate operators.
"""

from __future__ import annotations

from ..algebra.expressions import And
from ..algebra.operators import ConjointOr, PlanNode, Select, TopN, OrderBy, Union
from .rewrite import RewriteRule

__all__ = [
    "push_select_through_union",
    "push_select_through_or",
    "merge_adjacent_selects",
    "collapse_singleton_union",
    "merge_orderby_into_topn",
    "standard_rules",
]


def _push_select_through_union(node: PlanNode) -> PlanNode | None:
    if not isinstance(node, Select) or not isinstance(node.child, Union):
        return None
    union = node.child
    pushed = [Select(child.copy(), node.predicate) for child in union.children]
    return Union(pushed)


push_select_through_union = RewriteRule(
    "push-select-through-union",
    _push_select_through_union,
    "sigma(A union B) -> sigma(A) union sigma(B); enables per-seller evaluation (Fig. 4a)",
)


def _push_select_through_or(node: PlanNode) -> PlanNode | None:
    if not isinstance(node, Select) or not isinstance(node.child, ConjointOr):
        return None
    conjoint = node.child
    pushed = [Select(child.copy(), node.predicate) for child in conjoint.children]
    return ConjointOr(pushed)


push_select_through_or = RewriteRule(
    "push-select-through-or",
    _push_select_through_or,
    "sigma(A | B) -> sigma(A) | sigma(B); keeps conjoint-union choices open",
)


def _merge_adjacent_selects(node: PlanNode) -> PlanNode | None:
    if not isinstance(node, Select) or not isinstance(node.child, Select):
        return None
    inner = node.child
    return Select(inner.child.copy(), And(node.predicate, inner.predicate))


merge_adjacent_selects = RewriteRule(
    "merge-adjacent-selects",
    _merge_adjacent_selects,
    "sigma_p(sigma_q(A)) -> sigma_{p and q}(A)",
)


def _collapse_singleton_union(node: PlanNode) -> PlanNode | None:
    if isinstance(node, Union) and len(node.children) == 1:
        return node.children[0].copy()
    return None


collapse_singleton_union = RewriteRule(
    "collapse-singleton-union",
    _collapse_singleton_union,
    "union(A) -> A",
)


def _merge_orderby_into_topn(node: PlanNode) -> PlanNode | None:
    if not isinstance(node, TopN) or not isinstance(node.child, OrderBy):
        return None
    inner = node.child
    if inner.path != node.path:
        return None
    return TopN(inner.child.copy(), node.limit, node.path, node.descending)


merge_orderby_into_topn = RewriteRule(
    "merge-orderby-into-topn",
    _merge_orderby_into_topn,
    "topn(orderby(A)) -> topn(A) when ordering on the same path",
)


def standard_rules() -> list[RewriteRule]:
    """The default availability-independent rule set, in priority order."""
    return [
        merge_adjacent_selects,
        push_select_through_union,
        push_select_through_or,
        collapse_singleton_union,
        merge_orderby_into_topn,
    ]
