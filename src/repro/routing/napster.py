"""The "Napster" (hybrid) baseline: a centralized index server (paper §1).

"A centralized group of servers indexes filenames, and all queries must go
through them."  Here a single :class:`NapsterIndexServer` indexes every
published item's interest cell.  Clients query the central server, receive
the addresses of peers holding matching items, and then fetch the items
directly from those peers.  The baseline makes measurable the paper's
claim that "centralized index servers don't scale with the number of
clients" — all query traffic concentrates on one node — while recall stays
perfect as long as the central index is reachable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from ..namespace import InterestArea, InterestCell
from ..network import Message, NetworkNode
from ..xmlmodel import XMLElement, serialize_xml

__all__ = ["NapsterIndexServer", "NapsterPeer"]

_query_counter = itertools.count(1)


@dataclass
class _IndexRecord:
    """One published collection: who has it and how it is categorized."""

    owner: str
    cell: InterestCell
    count: int


@dataclass
class _FetchRequest:
    query_id: str
    area: InterestArea


class NapsterIndexServer(NetworkNode):
    """The central index: receives publications, answers lookups."""

    def __init__(self, address: str) -> None:
        super().__init__(address)
        self.records: list[_IndexRecord] = []
        self.lookups_served = 0

    def handle_message(self, message: Message) -> None:
        if message.kind == "n-publish":
            record: _IndexRecord = message.payload
            self.records.append(record)
        elif message.kind == "n-lookup":
            self._handle_lookup(message)

    def _handle_lookup(self, message: Message) -> None:
        query_id, area = message.payload
        self.lookups_served += 1
        owners = sorted(
            {record.owner for record in self.records if area.covers_cell(record.cell)}
        )
        trace = self.network.metrics.trace(query_id)  # type: ignore[union-attr]
        trace.visited.append(self.address)
        sent = self.send(message.sender, "n-matches", (query_id, area, owners), size_bytes=64 + 32 * len(owners))
        trace.messages += 1
        trace.bytes += sent.size_bytes


class NapsterPeer(NetworkNode):
    """A peer that publishes to, and queries through, the central index."""

    def __init__(self, address: str, index_address: str) -> None:
        super().__init__(address)
        self.index_address = index_address
        self.items: list[tuple[InterestCell, XMLElement]] = []
        self.results: dict[str, list[XMLElement]] = {}
        self.pending_fetches: dict[str, int] = {}

    # -- publishing --------------------------------------------------------------- #

    def publish(self, cell: InterestCell, items: Sequence[XMLElement]) -> None:
        """Store items locally and advertise them to the central index."""
        for item in items:
            self.items.append((cell, item))
        record = _IndexRecord(self.address, cell, len(items))
        self.send(self.index_address, "n-publish", record, size_bytes=128)

    def matching_items(self, area: InterestArea) -> list[XMLElement]:
        """Local items covered by the query area."""
        return [item for cell, item in self.items if area.covers_cell(cell)]

    # -- querying ------------------------------------------------------------------ #

    def issue_query(self, area: InterestArea, query_id: str | None = None) -> str:
        """Look up matching peers at the central index, then fetch from them."""
        query_id = query_id or f"nq{next(_query_counter)}"
        self.results.setdefault(query_id, [])
        trace = self.network.metrics.trace(query_id)  # type: ignore[union-attr]
        trace.issued_at = self.now
        trace.visited.append(self.address)
        local = self.matching_items(area)
        if local:
            self.results[query_id].extend(local)
            trace.answers += len(local)
        sent = self.send(self.index_address, "n-lookup", (query_id, area), size_bytes=200)
        trace.messages += 1
        trace.bytes += sent.size_bytes
        return query_id

    def results_for(self, query_id: str) -> list[XMLElement]:
        """Items fetched so far for a query."""
        return self.results.get(query_id, [])

    # -- protocol --------------------------------------------------------------------- #

    def handle_message(self, message: Message) -> None:
        if message.kind == "n-matches":
            self._handle_matches(message)
        elif message.kind == "n-fetch":
            self._handle_fetch(message)
        elif message.kind == "n-data":
            self._handle_data(message)

    def _handle_matches(self, message: Message) -> None:
        query_id, area, owners = message.payload
        trace = self.network.metrics.trace(query_id)  # type: ignore[union-attr]
        remote_owners = [owner for owner in owners if owner != self.address]
        self.pending_fetches[query_id] = len(remote_owners)
        if not remote_owners:
            trace.completed_at = self.now
            return
        for owner in remote_owners:
            sent = self.send(owner, "n-fetch", _FetchRequest(query_id, area), size_bytes=160)
            trace.messages += 1
            trace.bytes += sent.size_bytes

    def _handle_fetch(self, message: Message) -> None:
        request: _FetchRequest = message.payload
        matches = [item.copy() for item in self.matching_items(request.area)]
        size = sum(len(serialize_xml(item).encode()) for item in matches) + 64
        trace = self.network.metrics.trace(request.query_id)  # type: ignore[union-attr]
        trace.visited.append(self.address)
        sent = self.send(message.sender, "n-data", (request.query_id, matches), size_bytes=size)
        trace.messages += 1
        trace.bytes += sent.size_bytes

    def _handle_data(self, message: Message) -> None:
        query_id, items = message.payload
        self.results.setdefault(query_id, []).extend(items)
        trace = self.network.metrics.trace(query_id)  # type: ignore[union-attr]
        trace.answers += len(items)
        self.pending_fetches[query_id] = self.pending_fetches.get(query_id, 1) - 1
        if self.pending_fetches[query_id] <= 0:
            trace.completed_at = self.now
