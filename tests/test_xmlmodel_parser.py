"""Tests for XML parsing and serialization."""

import pytest

from repro.errors import XMLParseError
from repro.xmlmodel import (
    element,
    parse_xml,
    serialize_xml,
    serialized_size,
    text_element,
)


class TestParse:
    def test_parse_simple_document(self):
        root = parse_xml("<items><item id='1'><title>CD</title></item></items>")
        assert root.tag == "items"
        assert root.children[0].get("id") == "1"
        assert root.children[0].child_text("title") == "CD"

    def test_parse_rejects_malformed(self):
        with pytest.raises(XMLParseError):
            parse_xml("<items><item></items>")

    def test_parse_rejects_mixed_content(self):
        with pytest.raises(XMLParseError):
            parse_xml("<a>text<b/></a>")

    def test_whitespace_only_text_ignored(self):
        root = parse_xml("<a>\n  <b>x</b>\n</a>")
        assert root.text is None
        assert root.children[0].text == "x"


class TestSerialize:
    def test_roundtrip(self):
        original = element(
            "items",
            {"count": 2},
            element("item", {"id": "1"}, text_element("title", "Blue Train")),
            element("item", {"id": "2"}, text_element("title", "A & B <CDs>")),
        )
        assert parse_xml(serialize_xml(original)) == original

    def test_escaping_special_characters(self):
        node = text_element("title", "Tom & Jerry <live>")
        document = serialize_xml(node)
        assert "&amp;" in document and "&lt;" in document
        assert parse_xml(document).text == "Tom & Jerry <live>"

    def test_attribute_quoting(self):
        node = element("item", {"note": 'say "hi"'})
        assert parse_xml(serialize_xml(node)).get("note") == 'say "hi"'

    def test_empty_element_self_closes(self):
        assert serialize_xml(element("empty", {})) == "<empty/>"

    def test_pretty_print_contains_newlines(self):
        doc = serialize_xml(element("a", {}, element("b", {})), indent=2)
        assert "\n" in doc
        assert parse_xml(doc) == element("a", {}, element("b", {}))

    def test_serialized_size_counts_bytes(self):
        node = text_element("title", "abc")
        assert serialized_size(node) == len(serialize_xml(node).encode("utf-8"))
        assert serialized_size(node) > 0
