"""Machine-readable benchmark output: the ``BENCH_<name>.json`` trajectory.

Every benchmark module gains a ``--json`` mode: under
``pytest <bench> --json`` (or ``python <bench>.py --json``) the metrics a
benchmark records — and every ``emit()``'d table — are written to
``BENCH_<name>.json`` in the repository root, one file per benchmark.
Committed BENCH files form the perf trajectory: each PR re-runs the gated
benchmarks and the regression checker (``check_regression.py``) compares
the fresh numbers against the committed baselines.

Schema (``"schema": 1``)::

    {
      "bench": "catalog_scalability",       # module name sans "bench_"
      "schema": 1,
      "quick": false,                       # REPRO_BENCH_QUICK was set
      "metrics": {
        "<metric>": {
          "value": 22.7,
          "unit": "x",                      # ops/s, x, us, ms, count, ...
          "direction": "higher",            # which way is better
          "compare": true,                  # regression-checked vs baseline
          "gate_min": 10.0,                 # hard floor enforced in CI
          ... free-form context: peers, seed, batch_size ...
        }
      },
      "notes": [{"title": ..., "body": ...}]   # the emitted text tables
    }

Only metrics marked ``"compare": true`` participate in the >20% regression
check, and only against a baseline with the same ``quick`` setting and the
same recorded context — ratios and counts are hardware-portable, raw
wall-clock numbers are context.
"""

from __future__ import annotations

import json
import math
import os
import sys
import time
from pathlib import Path
from typing import Callable, Sequence

SCHEMA_VERSION = 1
ENV_ENABLE = "REPRO_BENCH_JSON"
ENV_DIR = "REPRO_BENCH_JSON_DIR"
ENV_QUICK = "REPRO_BENCH_QUICK"

_REPORTS: dict[str, dict] = {}


def enabled() -> bool:
    """True when benchmarks should record JSON output."""
    return bool(os.environ.get(ENV_ENABLE))


def quick_mode() -> bool:
    """True when the shrunken CI-smoke workload sizes are in effect."""
    return bool(os.environ.get(ENV_QUICK))


def output_dir() -> Path:
    """Where BENCH files are written (default: the repository root)."""
    configured = os.environ.get(ENV_DIR)
    if configured:
        return Path(configured)
    return Path(__file__).resolve().parent.parent


def bench_name(module_name: str) -> str:
    """``benchmarks.bench_scaleout`` / ``bench_scaleout`` → ``scaleout``."""
    stem = module_name.rsplit(".", 1)[-1]
    return stem.removeprefix("bench_")


def _report(bench: str) -> dict:
    return _REPORTS.setdefault(
        bench,
        {
            "bench": bench,
            "schema": SCHEMA_VERSION,
            "quick": quick_mode(),
            "metrics": {},
            "notes": [],
        },
    )


def record_metric(
    bench: str,
    name: str,
    value: float,
    unit: str = "",
    direction: str = "higher",
    compare: bool = False,
    gate_min: float | None = None,
    **context: object,
) -> None:
    """Record one metric for ``bench`` (no-op unless ``--json`` is active)."""
    if not enabled():
        return
    metric: dict[str, object] = {
        "value": round(float(value), 6),
        "unit": unit,
        "direction": direction,
        "compare": compare,
    }
    if gate_min is not None:
        metric["gate_min"] = gate_min
    metric.update(context)
    _report(bench)["metrics"][name] = metric


def record_note(bench: str, title: str, body: str) -> None:
    """Attach an emitted text table to the bench report."""
    if not enabled():
        return
    _report(bench)["notes"].append({"title": title, "body": body})


def write_reports() -> list[Path]:
    """Write every recorded report to ``BENCH_<name>.json``; returns paths."""
    written: list[Path] = []
    directory = output_dir()
    directory.mkdir(parents=True, exist_ok=True)
    for bench, report in sorted(_REPORTS.items()):
        path = directory / f"BENCH_{bench}.json"
        path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        written.append(path)
    return written


def reset() -> None:
    """Drop recorded state (used by the tooling tests)."""
    _REPORTS.clear()


# --------------------------------------------------------------------------- #
# Measurement helpers
# --------------------------------------------------------------------------- #


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (``fraction`` in [0, 1])."""
    if not samples:
        raise ValueError("no samples")
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


def latency_stats(samples_s: Sequence[float]) -> dict[str, float]:
    """p50/p99 (microseconds) plus ops/sec over per-call latency samples."""
    total = sum(samples_s)
    return {
        "p50_us": percentile(samples_s, 0.50) * 1e6,
        "p99_us": percentile(samples_s, 0.99) * 1e6,
        "ops_per_sec": len(samples_s) / total if total else float("inf"),
    }


def sample_latencies(operations: Sequence[Callable[[], object]], repeats: int = 3) -> list[float]:
    """Best-of-``repeats`` wall-clock latency for each operation, in seconds."""
    best = [float("inf")] * len(operations)
    for _ in range(repeats):
        for position, operation in enumerate(operations):
            started = time.perf_counter()
            operation()
            elapsed = time.perf_counter() - started
            if elapsed < best[position]:
                best[position] = elapsed
    return best


# --------------------------------------------------------------------------- #
# Script mode
# --------------------------------------------------------------------------- #


def run_as_script(bench_file: str, argv: Sequence[str] | None = None) -> int:
    """Run one benchmark file directly: ``python bench_x.py [--json] [--quick]``.

    A thin wrapper over ``pytest.main`` so every benchmark doubles as a
    command-line tool; ``--json`` writes the BENCH file exactly as the
    pytest option does.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog=Path(bench_file).name,
        description="Run this benchmark (a pytest module) as a script.",
    )
    parser.add_argument("--json", action="store_true", help="write BENCH_<name>.json")
    parser.add_argument("--json-dir", default=None, help="directory for BENCH files")
    parser.add_argument("--quick", action="store_true", help="CI-smoke workload sizes")
    parser.add_argument("--timed", action="store_true",
                        help="keep pytest-benchmark timing enabled (slower)")
    args = parser.parse_args(argv)

    if args.json:
        os.environ[ENV_ENABLE] = "1"
    if args.json_dir:
        os.environ[ENV_DIR] = args.json_dir
    if args.quick:
        os.environ[ENV_QUICK] = "1"

    # Make the in-repo sources importable when the package is not installed.
    repo_root = Path(bench_file).resolve().parent.parent
    source_dir = repo_root / "src"
    if source_dir.is_dir() and str(source_dir) not in sys.path:
        sys.path.insert(0, str(source_dir))

    import pytest

    pytest_args = [str(bench_file), "-q", "-s"]
    if not args.timed:
        pytest_args.append("--benchmark-disable")
    return pytest.main(pytest_args)
