"""The Portland-CDs workload of Figures 3 and 4.

"Suppose we are looking for CDs for $10 or less in the Portland area.
Sellers publish lists that include CD titles.  Our P2P client has a list of
our favorite songs, and we can use an online track-listing service, such as
CDDB or FreeDB, to connect these two resources."

The generator produces: CD items for any number of Portland sellers, a
track-listing collection mapping CD titles to songs, a favourite-songs
list, the two URNs of Figure 3, and the exact plan shape of Figure 3
(select-below-join-below-join with a verbatim favourite-songs leaf).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algebra import PlanBuilder, QueryPlan
from ..namespace import InterestArea, MultiHierarchicNamespace, garage_sale_namespace
from ..xmlmodel import XMLElement, text_element
from .distributions import make_rng

__all__ = ["CDWorkloadConfig", "CDSeller", "CDWorkload", "FORSALE_URN", "TRACKLIST_URN"]

FORSALE_URN = "urn:ForSale:Portland-CDs"
TRACKLIST_URN = "urn:CD:TrackListings"

_TITLE_WORDS = [
    "Blue", "Road", "Night", "Train", "Dream", "River", "Fire", "Moon",
    "Echo", "Gold", "Silver", "Stone", "Wave", "Dawn", "Rain", "Light",
]
_SONG_WORDS = [
    "Love", "Time", "Heart", "Home", "Sky", "Dance", "Shadow", "Morning",
    "Ocean", "Wild", "Silent", "Summer", "Winter", "Falling", "Rising", "Lost",
]


@dataclass(frozen=True)
class CDWorkloadConfig:
    """Parameters of the CD-shopping scenario."""

    sellers: int = 2
    cds_per_seller: int = 15
    songs_per_cd: int = 4
    favorite_songs: int = 6
    max_price: float = 10.0
    seed: int = 17


@dataclass
class CDSeller:
    """One Portland CD seller with its for-sale items."""

    address: str
    items: list[XMLElement] = field(default_factory=list)


class CDWorkload:
    """Generates the CD sellers, the track-listing service data, and the plan."""

    def __init__(
        self,
        config: CDWorkloadConfig | None = None,
        namespace: MultiHierarchicNamespace | None = None,
    ) -> None:
        self.config = config or CDWorkloadConfig()
        self.namespace = namespace or garage_sale_namespace()
        self._rng = make_rng(self.config.seed)
        self.sellers: list[CDSeller] = []
        self.track_listings: list[XMLElement] = []
        self.favorite_songs: list[XMLElement] = []
        self._generate()

    # -- generation ----------------------------------------------------------------------- #

    def _generate(self) -> None:
        all_songs: list[str] = []
        cheap_songs: list[str] = []
        for seller_index in range(self.config.sellers):
            seller = CDSeller(address=f"cd-seller{seller_index}:9020")
            for cd_index in range(self.config.cds_per_seller):
                title = self._cd_title(seller_index, cd_index)
                price = round(float(self._rng.uniform(4.0, 25.0)), 2)
                seller.items.append(
                    XMLElement(
                        "item",
                        {"id": f"{seller.address}-{cd_index}"},
                        [
                            text_element("title", title),
                            text_element("price", price),
                            text_element("city", "USA/OR/Portland"),
                            text_element("category", "Music/CDs"),
                            text_element("seller", seller.address),
                        ],
                    )
                )
                songs = [self._song_title(seller_index, cd_index, song) for song in range(self.config.songs_per_cd)]
                all_songs.extend(songs)
                if price < self.config.max_price:
                    cheap_songs.extend(songs)
                self.track_listings.append(
                    XMLElement(
                        "CD",
                        {},
                        [text_element("title", title)]
                        + [text_element("song", song) for song in songs],
                    )
                )
            self.sellers.append(seller)
        self.favorite_songs = [
            XMLElement("favorite", {}, [text_element("song", song)])
            for song in self._pick_favorites(all_songs, cheap_songs)
        ]

    def _pick_favorites(self, all_songs: list[str], cheap_songs: list[str]) -> list[str]:
        """Pick favourite songs, guaranteeing some fall on affordable CDs.

        Without this, a small random draw can miss every cheap CD and make
        the Figure 3 query's correct answer empty, which would trivialize
        the scenario.  Half of the favourites (rounded up) come from songs
        on CDs below the price limit whenever any exist.
        """
        wanted = min(self.config.favorite_songs, len(all_songs))
        if wanted == 0:
            return []
        favorites: list[str] = []
        if cheap_songs:
            cheap_count = min(len(cheap_songs), (wanted + 1) // 2)
            indexes = self._rng.choice(len(cheap_songs), size=cheap_count, replace=False)
            favorites.extend(cheap_songs[int(index)] for index in sorted(indexes))
        remaining_pool = [song for song in all_songs if song not in set(favorites)]
        still_needed = wanted - len(favorites)
        if still_needed > 0 and remaining_pool:
            indexes = self._rng.choice(
                len(remaining_pool), size=min(still_needed, len(remaining_pool)), replace=False
            )
            favorites.extend(remaining_pool[int(index)] for index in sorted(indexes))
        return favorites

    def _cd_title(self, seller_index: int, cd_index: int) -> str:
        first = _TITLE_WORDS[int(self._rng.integers(len(_TITLE_WORDS)))]
        second = _TITLE_WORDS[int(self._rng.integers(len(_TITLE_WORDS)))]
        return f"{first} {second} {seller_index}-{cd_index}"

    def _song_title(self, seller_index: int, cd_index: int, song_index: int) -> str:
        first = _SONG_WORDS[int(self._rng.integers(len(_SONG_WORDS)))]
        second = _SONG_WORDS[int(self._rng.integers(len(_SONG_WORDS)))]
        return f"{first} {second} {seller_index}-{cd_index}-{song_index}"

    # -- scenario pieces ----------------------------------------------------------------------- #

    def portland_cd_area(self) -> InterestArea:
        """The interest area of the ForSale URN."""
        return self.namespace.area(["USA/OR/Portland", "Music/CDs"])

    def figure3_plan(self, target: str) -> QueryPlan:
        """The mutant query plan of Figure 3.

        ``select price < 10`` over the ForSale URN, joined with the
        track-listing URN on CD title, joined with the verbatim
        favourite-songs data on song, topped by the Display pseudo-operator.
        """
        cheap_cds = PlanBuilder.urn(FORSALE_URN).select(f"price < {self.config.max_price:g}")
        with_tracklists = cheap_cds.join(
            PlanBuilder.urn(TRACKLIST_URN), on=("//title", "//CD/title")
        )
        with_favorites = with_tracklists.join(
            PlanBuilder.data(self.favorite_songs, name="favorite-songs"),
            on=("//song", "//favorite/song"),
        )
        return with_favorites.display(target)

    # -- ground truth ------------------------------------------------------------------------------ #

    def cheap_cd_titles(self) -> set[str]:
        """Titles of CDs under the price limit, across all sellers."""
        titles: set[str] = set()
        for seller in self.sellers:
            for item in seller.items:
                if float(item.child_text("price") or "inf") < self.config.max_price:
                    titles.add(item.child_text("title") or "")
        return titles

    def expected_matches(self) -> set[str]:
        """CD titles that are cheap *and* contain one of the favourite songs."""
        favorite = {favorite.child_text("song") for favorite in self.favorite_songs}
        cheap = self.cheap_cd_titles()
        matches: set[str] = set()
        for listing in self.track_listings:
            title = listing.child_text("title") or ""
            songs = {song.text for song in listing.find_all("song")}
            if title in cheap and songs & favorite:
                matches.add(title)
        return matches
