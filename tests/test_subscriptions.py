"""Continuous queries: publish-time matching, delta feeds, teardown, churn.

The suite covers the full standing-query protocol end-to-end:

* shape validation and the trie matcher (unit level);
* the ``flags.continuous_queries`` gate (off by default);
* delta feeds on both transports — insert/update/retract classification
  through each subscription's own predicate, projection applied at the
  publisher, in-order release, duplicate suppression;
* teardown — ``unsubscribe`` clears armed matchers, authority registries
  and pending retransmission timers at every hop;
* churn — a subscriber crash/rejoin resumes from its last released
  sequence, a failed-over authority re-arms publishers from its durable
  registry, conflicting authorities surface (MOAS-style) instead of
  double-delivering, and a flash crowd of 100 subscribers under seeded
  loss still sees exactly-once delivery.
"""

from __future__ import annotations

import pytest

from repro.algebra import PlanBuilder
from repro.algebra.serialization import serialize_plan
from repro.api import Cluster, Subscription
from repro.catalog.matcher import SubscriptionMatcher, subscribable_shape
from repro.errors import PeerError, PlanError
from repro.namespace import InterestAreaURN, garage_sale_namespace
from repro.network import FaultPlan
from repro.peers.subscriptions import PublisherFeed, SubscriberState, epoch_counter
from repro.perf import overrides
from repro.xmlmodel import XMLElement, serialize_xml
from tests.conftest import make_item

TRANSPORTS = ("sim", "aio")


def portland_area(namespace):
    return namespace.area(["USA/OR/Portland", "Music/CDs"])


def area_urn(area) -> str:
    return str(InterestAreaURN.for_area(area))


def subscription_cluster(transport, namespace, faults=None):
    """Two Portland sellers, an authoritative Oregon index, a meta, a client."""
    cluster = Cluster(transport, namespace=namespace, faults=faults)
    portland = portland_area(namespace)
    seller1 = cluster.base_server("seller1:9020", portland)
    seller1.publish(
        "cds",
        [
            make_item("Abbey Road", 8.0, seller="seller1:9020"),
            make_item("Kind of Blue", 12.5, seller="seller1:9020"),
        ],
    )
    seller2 = cluster.base_server("seller2:9020", portland)
    seller2.publish("cds", [make_item("Blue Train", 6.0, seller="seller2:9020")])
    cluster.index_server("index-or:9020", namespace.area(["USA/OR", "*"]))
    cluster.meta_index("meta:9020")
    cluster.client("client:9020")
    cluster.connect()
    return cluster


def audit_exactly_once(state: SubscriberState) -> dict:
    """Assert the released deltas are exactly-once, in order, per feed.

    Within one ``(publisher, epoch)`` feed the released sequence numbers
    must be contiguous with no duplicates; across feeds no
    ``(publisher, epoch, seq)`` triple may repeat.  Returns the map of
    feed → released sequence list for further assertions.
    """
    seen: set[tuple[str, str, int]] = set()
    per_feed: dict[tuple[str, str], list[int]] = {}
    for delta in state.deltas:
        triple = (delta.publisher, delta.epoch, delta.seq)
        assert triple not in seen, f"duplicate delivery: {triple}"
        seen.add(triple)
        per_feed.setdefault((delta.publisher, delta.epoch), []).append(delta.seq)
    for (publisher, epoch), seqs in per_feed.items():
        expected = list(range(seqs[0], seqs[0] + len(seqs)))
        assert seqs == expected, f"feed {publisher}/{epoch}: released {seqs}"
    return per_feed


class _Msg:
    """A fake in-flight message, enough for direct handler invocation."""

    def __init__(self, kind: str, payload, sender: str = "elsewhere:9020"):
        self.kind = kind
        self.payload = payload
        self.sender = sender
        self.transfer = None


# --------------------------------------------------------------------------- #
# Shape validation
# --------------------------------------------------------------------------- #


class TestSubscribableShape:
    def test_select_project_over_area_decomposes(self, namespace):
        area = portland_area(namespace)
        plan = (
            PlanBuilder.urn(area_urn(area))
            .select("price < 10")
            .project([("title", "title")])
            .display("client:9020")
        )
        shape = subscribable_shape(plan)
        assert shape.area == area
        assert shape.predicate is not None
        assert shape.columns == (("title", "title"),)
        assert shape.relevant(make_item("Cheap", 5.0))
        assert not shape.relevant(make_item("Dear", 50.0))
        projected = shape.apply([make_item("Cheap", 5.0)])
        assert [item.child_text("title") for item in projected] == ["Cheap"]
        assert projected[0].find("price") is None

    def test_bare_area_is_subscribable(self, namespace):
        area = portland_area(namespace)
        shape = subscribable_shape(PlanBuilder.urn(area_urn(area)).display("c:1"))
        assert shape.predicate is None and shape.columns is None
        assert shape.relevant(make_item("Anything", 999.0))

    def test_stacked_selects_conjoin(self, namespace):
        area = portland_area(namespace)
        plan = (
            PlanBuilder.urn(area_urn(area))
            .select("price < 10")
            .select("price > 6")
            .display("c:1")
        )
        shape = subscribable_shape(plan)
        assert shape.relevant(make_item("Mid", 8.0))
        assert not shape.relevant(make_item("Low", 5.0))

    def test_url_source_rejected(self):
        with pytest.raises(PlanError, match="subscribable"):
            subscribable_shape(PlanBuilder.url("http://host/data.xml").display("c:1"))

    def test_named_resource_urn_rejected(self):
        with pytest.raises(PlanError, match="interest-area"):
            subscribable_shape(PlanBuilder.urn("urn:ForSale:Portland-CDs").display("c:1"))

    def test_aggregate_rejected(self, namespace):
        area = portland_area(namespace)
        with pytest.raises(PlanError, match="subscribable"):
            subscribable_shape(PlanBuilder.urn(area_urn(area)).count().display("c:1"))

    def test_join_rejected(self, namespace):
        area = portland_area(namespace)
        plan = (
            PlanBuilder.urn(area_urn(area))
            .join(PlanBuilder.urn(area_urn(area)), on=("seller", "seller"))
            .display("c:1")
        )
        with pytest.raises(PlanError, match="subscribable"):
            subscribable_shape(plan)


# --------------------------------------------------------------------------- #
# The matcher
# --------------------------------------------------------------------------- #


class TestMatcher:
    def test_arm_match_disarm(self, namespace):
        portland = portland_area(namespace)
        furniture = namespace.area(["USA/WA", "Furniture"])
        matcher = SubscriptionMatcher()
        matcher.arm("sub-cds", subscribable_shape(
            PlanBuilder.urn(area_urn(portland)).display("c:1")))
        matcher.arm("sub-furniture", subscribable_shape(
            PlanBuilder.urn(area_urn(furniture)).display("c:1")))
        assert len(matcher) == 2 and "sub-cds" in matcher

        assert [sub for sub, _ in matcher.matching(portland)] == ["sub-cds"]
        assert [sub for sub, _ in matcher.matching(furniture)] == ["sub-furniture"]
        # A broader mutation area overlaps both registrations, id-ordered.
        oregon_and_wa = namespace.area(["USA", "*"])
        assert [sub for sub, _ in matcher.matching(oregon_and_wa)] == [
            "sub-cds",
            "sub-furniture",
        ]

        assert matcher.disarm("sub-cds") is True
        assert matcher.disarm("sub-cds") is False
        assert matcher.matching(portland) == []
        assert len(matcher) == 1

    def test_rearming_replaces(self, namespace):
        portland = portland_area(namespace)
        furniture = namespace.area(["USA/WA", "Furniture"])
        matcher = SubscriptionMatcher()
        matcher.arm("sub", subscribable_shape(
            PlanBuilder.urn(area_urn(portland)).display("c:1")))
        matcher.arm("sub", subscribable_shape(
            PlanBuilder.urn(area_urn(furniture)).display("c:1")))
        assert len(matcher) == 1
        assert matcher.matching(portland) == []
        assert [sub for sub, _ in matcher.matching(furniture)] == ["sub"]


# --------------------------------------------------------------------------- #
# The feature flag gate
# --------------------------------------------------------------------------- #


class TestFlagGate:
    def test_subscribe_requires_flag(self, namespace):
        with subscription_cluster("sim", namespace) as cluster:
            client = cluster.session("client:9020")
            with pytest.raises(PeerError, match="continuous_queries"):
                client.query().area(portland_area(namespace)).subscribe()

    def test_straggler_subscribe_ignored_when_flag_off(self, namespace):
        with subscription_cluster("sim", namespace) as cluster:
            seller = cluster.session("seller1:9020").peer
            document = serialize_plan(
                PlanBuilder.urn(area_urn(portland_area(namespace))).display("client:9020")
            )
            seller._handle_subscribe(_Msg("subscribe", {
                "document": document,
                "sub": "client:9020#sub1",
                "subscriber": "client:9020",
                "authority": "",
                "resume": {},
                "hops": 0,
            }))
            assert seller.armed_subscriptions == {}
            assert seller.subscription_registry == {}
            assert len(seller.matcher) == 0


# --------------------------------------------------------------------------- #
# Delta feeds end-to-end (both transports)
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("transport", TRANSPORTS)
class TestDeltaFeed:
    def test_mutations_classify_through_the_predicate(self, transport, namespace):
        with overrides(continuous_queries=True):
            with subscription_cluster(transport, namespace) as cluster:
                client = cluster.session("client:9020")
                seller1 = cluster.session("seller1:9020")
                seller2 = cluster.session("seller2:9020")
                sub = (
                    client.query()
                    .area(portland_area(namespace))
                    .where("price < 10")
                    .subscribe()
                )
                cluster.run_until_idle()
                assert sub.active

                # Insert below the predicate: an insert delta.
                seller1.update("cds", [make_item("New CD", 3.0, seller="seller1:9020")])
                # In-place change, still matching: an update delta.
                seller1.update("cds", [make_item("New CD", 4.0, seller="seller1:9020")])
                # Price crosses the boundary: *this* subscriber sees a retract.
                seller1.update("cds", [make_item("New CD", 30.0, seller="seller1:9020")])
                # A retract at the other seller: a retract delta from there.
                removed = seller2.retract("cds", predicate="price < 10")
                assert [item.child_text("title") for item in removed] == ["Blue Train"]
                cluster.run_until_idle()

                state = client.peer.my_subscriptions[sub.sub_id]
                assert [
                    (d.kind, d.publisher, [i.child_text("title") for i in d.items])
                    for d in state.deltas
                ] == [
                    ("insert", "seller1:9020", ["New CD"]),
                    ("update", "seller1:9020", ["New CD"]),
                    ("retract", "seller1:9020", ["New CD"]),
                    ("retract", "seller2:9020", ["Blue Train"]),
                ]
                audit_exactly_once(state)
                assert sub.lag() == len(state.deltas)
                assert [d.kind for d in sub.deltas(limit=4)] == [
                    "insert", "update", "retract", "retract",
                ]
                assert sub.lag() == 0

    def test_projection_applies_at_the_publisher(self, transport, namespace):
        with overrides(continuous_queries=True):
            with subscription_cluster(transport, namespace) as cluster:
                client = cluster.session("client:9020")
                seller1 = cluster.session("seller1:9020")
                sub = (
                    client.query()
                    .area(portland_area(namespace))
                    .where("price < 10")
                    .project([("title", "title")])
                    .subscribe()
                )
                cluster.run_until_idle()
                seller1.update("cds", [make_item("Slim CD", 2.0, seller="seller1:9020")])
                cluster.run_until_idle()
                (delta,) = list(sub.deltas(limit=1))
                (item,) = delta.items
                assert item.child_text("title") == "Slim CD"
                assert item.find("price") is None

    def test_acks_trim_the_replay_log(self, transport, namespace):
        with overrides(continuous_queries=True, reliable_delivery=True):
            with subscription_cluster(transport, namespace) as cluster:
                client = cluster.session("client:9020")
                seller1 = cluster.session("seller1:9020")
                sub = (
                    client.query()
                    .area(portland_area(namespace))
                    .where("price < 10")
                    .subscribe()
                )
                cluster.run_until_idle()
                for round_ in range(3):
                    seller1.update(
                        "cds",
                        [make_item(f"CD {round_}", 1.0 + round_, seller="seller1:9020")],
                    )
                cluster.run_until_idle()
                armed = seller1.peer.armed_subscriptions[sub.sub_id]
                assert armed.next_seq == 3
                assert armed.acked_seq == 2
                assert armed.log == {}
                assert seller1.peer._pending_transfers == {}


class TestInOrderRelease:
    """Frame-level behaviour of the subscriber's release path."""

    def _subscriber(self, cluster, publisher: str, namespace):
        client = cluster.session("client:9020").peer
        plan = PlanBuilder.urn(area_urn(portland_area(namespace))).display("client:9020")
        state = SubscriberState(sub_id="client:9020#subX", document=serialize_plan(plan))
        client.my_subscriptions[state.sub_id] = state
        return client, state

    def _envelope(self, sub_id: str, publisher: str, epoch: str, seq: int, title: str):
        document = serialize_xml(XMLElement(
            "delta",
            {"sub": sub_id, "kind": "insert", "seq": str(seq)},
            [make_item(title, 5.0)],
        ))
        return {
            "document": document,
            "sub": sub_id,
            "publisher": publisher,
            "epoch": epoch,
            "seq": seq,
            "kind": "insert",
        }

    def test_out_of_order_frames_release_in_sequence(self, namespace):
        with overrides(continuous_queries=True):
            with subscription_cluster("sim", namespace) as cluster:
                client, state = self._subscriber(cluster, "seller1:9020", namespace)
                epoch = "seller1:9020/e1"
                late = self._envelope(state.sub_id, "seller1:9020", epoch, 1, "Second")
                early = self._envelope(state.sub_id, "seller1:9020", epoch, 0, "First")
                client._handle_delta_chunk(_Msg("delta-chunk", late, sender="seller1:9020"))
                assert state.deltas == []  # held until the gap fills
                client._handle_delta_chunk(_Msg("delta-chunk", early, sender="seller1:9020"))
                assert [d.seq for d in state.deltas] == [0, 1]
                assert [d.items[0].child_text("title") for d in state.deltas] == [
                    "First", "Second",
                ]
                audit_exactly_once(state)

    def test_duplicate_frames_are_suppressed_and_reacked(self, namespace):
        with overrides(continuous_queries=True):
            with subscription_cluster("sim", namespace) as cluster:
                client, state = self._subscriber(cluster, "seller1:9020", namespace)
                frame = self._envelope(
                    state.sub_id, "seller1:9020", "seller1:9020/e1", 0, "Once"
                )
                client._handle_delta_chunk(_Msg("delta-chunk", frame, sender="seller1:9020"))
                client._handle_delta_chunk(
                    _Msg("delta-chunk", dict(frame), sender="seller1:9020")
                )
                assert len(state.deltas) == 1
                assert client.delta_duplicates == 1
                audit_exactly_once(state)

    def test_stale_epoch_frames_are_dropped(self, namespace):
        with overrides(continuous_queries=True):
            with subscription_cluster("sim", namespace) as cluster:
                client, state = self._subscriber(cluster, "seller1:9020", namespace)
                state.feeds["seller1:9020"] = PublisherFeed(epoch="seller1:9020/e2")
                stale = self._envelope(
                    state.sub_id, "seller1:9020", "seller1:9020/e1", 0, "Stale"
                )
                client._handle_delta_chunk(_Msg("delta-chunk", stale, sender="seller1:9020"))
                assert state.deltas == []
                assert state.feeds["seller1:9020"].epoch == "seller1:9020/e2"

    def test_straggler_feed_triggers_one_unsubscribe(self, namespace):
        with overrides(continuous_queries=True):
            with subscription_cluster("sim", namespace) as cluster:
                client = cluster.session("client:9020")
                seller1 = cluster.session("seller1:9020")
                sub = (
                    client.query()
                    .area(portland_area(namespace))
                    .where("price < 10")
                    .subscribe()
                )
                cluster.run_until_idle()
                assert sub.sub_id in seller1.peer.armed_subscriptions
                # The subscriber loses its state without telling anyone —
                # the amnesiac-rejoin case a graceful unsubscribe never covers.
                del client.peer.my_subscriptions[sub.sub_id]
                seller1.update("cds", [make_item("Orphan", 1.0, seller="seller1:9020")])
                cluster.run_until_idle()
                # The straggler delta bounced back as a one-shot unsubscribe
                # and the publisher tore the feed down.
                assert sub.sub_id not in seller1.peer.armed_subscriptions
                assert (sub.sub_id, "seller1:9020") in client.peer._cancel_notified
                assert client.peer.deltas_delivered == 0


# --------------------------------------------------------------------------- #
# Teardown (unsubscribe / close) across every hop
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("transport", TRANSPORTS)
class TestTeardownOnBothTransports:
    def test_unsubscribe_clears_every_hop(self, transport, namespace):
        with overrides(continuous_queries=True, reliable_delivery=True):
            with subscription_cluster(transport, namespace) as cluster:
                client = cluster.session("client:9020")
                sub = (
                    client.query()
                    .area(portland_area(namespace))
                    .where("price < 10")
                    .subscribe()
                )
                cluster.run_until_idle()
                for seller in ("seller1:9020", "seller2:9020"):
                    assert sub.sub_id in cluster.session(seller).peer.armed_subscriptions
                for authority in ("index-or:9020", "meta:9020"):
                    registry = cluster.session(authority).peer.subscription_registry
                    assert sub.sub_id in registry

                sub.unsubscribe()
                cluster.run_until_idle()

                assert not sub.active
                assert client.peer.my_subscriptions == {}
                for address in (
                    "seller1:9020", "seller2:9020", "index-or:9020", "meta:9020",
                ):
                    peer = cluster.session(address).peer
                    assert peer.armed_subscriptions == {}, address
                    assert peer.subscription_registry == {}, address
                    assert len(peer.matcher) == 0, address
                    assert peer._pending_transfers == {}, address


class TestTeardownTimers:
    def test_unsubscribe_cancels_pending_retransmissions(self, namespace):
        with overrides(continuous_queries=True, reliable_delivery=True):
            with subscription_cluster("sim", namespace) as cluster:
                client = cluster.session("client:9020")
                seller1 = cluster.session("seller1:9020")
                sub = (
                    client.query()
                    .area(portland_area(namespace))
                    .where("price < 10")
                    .subscribe()
                )
                cluster.run_until_idle()

                # Crash the subscriber, then mutate: the delta transfer sits
                # in the retransmit queue with a live backoff timer.
                client.crash()
                seller1.update("cds", [make_item("Doomed", 1.0, seller="seller1:9020")])
                pending = [
                    state for state in seller1.peer._pending_transfers.values()
                    if state.query_id == sub.sub_id
                ]
                assert pending, "the delta transfer should be awaiting its ack"
                timers = [state.timer for state in pending if state.timer is not None]
                assert timers, "a retransmission timer should be armed"
                dead_letters_before = len(seller1.peer.dead_letters)

                # An unsubscribe notice arriving at the publisher sweeps the
                # queue and cancels every timer for that subscription.
                seller1.peer._handle_unsubscribe(
                    _Msg("unsubscribe", {"sub": sub.sub_id, "hops": 0})
                )
                assert seller1.peer._pending_transfers == {}
                assert all(timer.cancelled for timer in timers)
                assert sub.sub_id not in seller1.peer.armed_subscriptions

                # And with no timer left to fire, no retry burns out into a
                # dead letter afterwards.
                cluster.run_until_idle()
                assert len(seller1.peer.dead_letters) == dead_letters_before
                assert seller1.peer.transfers_failed == 0

    def test_unsubscribe_is_idempotent(self, namespace):
        with overrides(continuous_queries=True):
            with subscription_cluster("sim", namespace) as cluster:
                client = cluster.session("client:9020")
                sub = client.query().area(portland_area(namespace)).subscribe()
                cluster.run_until_idle()
                sub.unsubscribe()
                sub.unsubscribe()  # a second teardown is a no-op
                with sub:  # context exit after manual teardown: still a no-op
                    pass
                cluster.run_until_idle()
                assert not sub.active
                assert client.peer.my_subscriptions == {}


# --------------------------------------------------------------------------- #
# Churn: resume, failover, conflicting authorities, flash crowd
# --------------------------------------------------------------------------- #


class TestChurn:
    def test_subscriber_crash_and_rejoin_resumes_from_acked(self, namespace):
        with overrides(continuous_queries=True, reliable_delivery=True):
            with subscription_cluster("sim", namespace) as cluster:
                client = cluster.session("client:9020")
                seller1 = cluster.session("seller1:9020")
                sub = (
                    client.query()
                    .area(portland_area(namespace))
                    .where("price < 10")
                    .subscribe()
                )
                cluster.run_until_idle()
                seller1.update("cds", [make_item("CD 0", 1.0, seller="seller1:9020")])
                cluster.run_until_idle()
                assert len(client.peer.my_subscriptions[sub.sub_id].deltas) == 1

                # The subscriber crashes; the publisher's delivery fails and
                # the feed pauses, logging deltas it cannot transmit.
                client.crash()
                seller1.update("cds", [make_item("CD 1", 2.0, seller="seller1:9020")])
                cluster.run_until_idle()
                armed = seller1.peer.armed_subscriptions[sub.sub_id]
                assert armed.paused
                seller1.update("cds", [make_item("CD 2", 3.0, seller="seller1:9020")])
                assert set(armed.log) == {1, 2}

                # Rejoining re-subscribes with resume tokens: the publisher
                # replays exactly the unseen suffix — no gaps, no duplicates.
                client.rejoin()
                cluster.run_until_idle()
                state = client.peer.my_subscriptions[sub.sub_id]
                assert [d.items[0].child_text("title") for d in state.deltas] == [
                    "CD 0", "CD 1", "CD 2",
                ]
                per_feed = audit_exactly_once(state)
                (seqs,) = per_feed.values()  # one publisher, one epoch throughout
                assert seqs == [0, 1, 2]
                assert client.peer.resubscribes >= 1
                assert client.peer.delta_duplicates == 0
                assert client.peer.delta_gaps == 0
                assert not seller1.peer.armed_subscriptions[sub.sub_id].paused

    def test_authority_failover_rearms_publishers_fresh_epoch(self, namespace):
        with overrides(continuous_queries=True, reliable_delivery=True):
            with subscription_cluster("sim", namespace) as cluster:
                client = cluster.session("client:9020")
                seller1 = cluster.session("seller1:9020")
                index = cluster.session("index-or:9020")
                sub = (
                    client.query()
                    .area(portland_area(namespace))
                    .where("price < 10")
                    .subscribe()
                )
                cluster.run_until_idle()
                seller1.update("cds", [make_item("Early CD", 1.0, seller="seller1:9020")])
                cluster.run_until_idle()

                # The authority and the publisher both crash: the armed
                # matcher state is in-RAM and dies with the publisher; the
                # authority's subscription registry is its durable store.
                index.crash()
                seller1.crash()
                index.rejoin()
                seller1.rejoin()
                cluster.run_until_idle()

                # Re-registration re-armed the publisher from the registry,
                # under a fresh epoch (its in-RAM feed state is gone).
                armed = seller1.peer.armed_subscriptions[sub.sub_id]
                assert armed.authority == "index-or:9020"
                assert epoch_counter(armed.epoch) > 1

                seller1.update("cds", [make_item("Late CD", 2.0, seller="seller1:9020")])
                cluster.run_until_idle()
                state = client.peer.my_subscriptions[sub.sub_id]
                titles = [d.items[0].child_text("title") for d in state.deltas]
                assert titles == ["Early CD", "Late CD"]
                per_feed = audit_exactly_once(state)
                epochs = sorted(epoch_counter(epoch) for _, epoch in per_feed)
                assert len(epochs) == 2 and epochs[0] < epochs[1]
                # The subscriber never churned: the re-arm came from the
                # authority's registry, not from a client re-subscription.
                assert client.peer.resubscribes == 0

    def test_conflicting_authorities_surface_not_double_deliver(self, namespace):
        portland = portland_area(namespace)
        oregon = namespace.area(["USA/OR", "*"])
        with overrides(continuous_queries=True, reliable_delivery=True):
            with Cluster("sim", namespace=namespace) as cluster:
                seller1 = cluster.base_server("seller1:9020", portland)
                seller1.publish(
                    "cds", [make_item("Abbey Road", 8.0, seller="seller1:9020")]
                )
                # Two index servers both claim authority over Oregon — the
                # MOAS analogue of two ASes originating one prefix.
                cluster.index_server("index-a:9020", oregon, authoritative=True)
                cluster.index_server("index-b:9020", oregon, authoritative=True)
                cluster.meta_index("meta:9020")
                client = cluster.client("client:9020")
                cluster.connect()
                # Make sure the seller is catalogued under *both* claimants.
                seller1.register("index-a:9020", "index-b:9020")
                cluster.run_until_idle()

                sub = client.query().area(portland).where("price < 10").subscribe()
                cluster.run_until_idle()

                # One authority won the arming; the other's claim was
                # surfaced to the subscriber instead of arming twice.
                armed = seller1.peer.armed_subscriptions[sub.sub_id]
                assert armed.authority in ("index-a:9020", "index-b:9020")
                assert seller1.peer.authority_conflicts >= 1
                conflicts = sub.conflicts()
                assert conflicts, "the authority overlap should reach the subscriber"
                assert conflicts[0]["publisher"] == "seller1:9020"
                assert conflicts[0]["authorities"] == ["index-a:9020", "index-b:9020"]

                # And crucially: one mutation, one delta — never two.
                seller1.update("cds", [make_item("New CD", 3.0, seller="seller1:9020")])
                cluster.run_until_idle()
                state = client.peer.my_subscriptions[sub.sub_id]
                assert [d.items[0].child_text("title") for d in state.deltas] == ["New CD"]
                audit_exactly_once(state)

    def test_flash_crowd_exactly_once_under_loss(self, namespace):
        portland = portland_area(namespace)
        subscribers = [f"c{i:03d}:9020" for i in range(100)]
        with overrides(continuous_queries=True, reliable_delivery=True):
            with Cluster(
                "sim", namespace=namespace, faults=FaultPlan(seed=11, loss=0.10)
            ) as cluster:
                seller = cluster.base_server("seller:9020", portland)
                seller.publish(
                    "cds", [make_item("Abbey Road", 8.0, seller="seller:9020")]
                )
                cluster.index_server("index-or:9020", namespace.area(["USA/OR", "*"]))
                cluster.meta_index("meta:9020")
                for address in subscribers:
                    cluster.client(address)
                cluster.connect()

                subs = {
                    address: cluster.session(address)
                    .query()
                    .area(portland)
                    .where("price < 100")
                    .subscribe()
                    for address in subscribers
                }
                cluster.run_until_idle()
                assert len(seller.peer.armed_subscriptions) == len(subscribers)

                # Three mutation rounds on the one hot collection.
                seller.update("cds", [make_item("Flash CD", 3.0, seller="seller:9020")])
                cluster.run_until_idle()
                seller.update("cds", [make_item("Flash CD", 4.0, seller="seller:9020")])
                cluster.run_until_idle()
                removed = seller.retract("cds", keys=["seller:9020-Flash CD"])
                assert len(removed) == 1
                cluster.run_until_idle()

                # Every subscriber saw every delta exactly once, in order,
                # despite 10% seeded frame loss on every link.
                for address in subscribers:
                    peer = cluster.session(address).peer
                    state = peer.my_subscriptions[subs[address].sub_id]
                    assert [d.kind for d in state.deltas] == [
                        "insert", "update", "retract",
                    ], address
                    per_feed = audit_exactly_once(state)
                    (seqs,) = per_feed.values()
                    assert seqs == [0, 1, 2], address
                    assert peer.delta_gaps == 0, address
