"""MQP-specific optimizations: consolidation, absorption, deferment (paper §2, §6).

Mutant query plans introduce optimization opportunities a pipelined
distributed executor would never consider, because each server must
*materialize* its partial result and ship the whole mutated plan onward —
"their size matters":

Consolidation
    Rewrite the plan so that locally-evaluable sub-plans come together.  The
    concrete rule implemented here distributes a join over a union
    (``(A ∪ X) ⋈ B → (A ⋈ B) ∪ (X ⋈ B)``), which lets a server that holds
    ``A`` and ``B`` evaluate the left branch even though ``X`` lives
    elsewhere — exactly the paper's example.

Absorption
    Plan rewritings that "might not make sense in pipelined query execution
    but reduce the size of the partial result".  We implement the
    right-outer variant: a join ``A ⋈ X`` with only ``A`` local can be
    partially pre-joined against a local ``B`` the plan will need later,
    when the statistics say ``|A ⋈ B| ≤ |A|``.

Deferment
    "Avoiding local execution of operators that increase the partial result
    size unjustifiably."  Deferment is a policy decision rather than a
    rewrite; :func:`deferrable_nodes` identifies the nodes whose evaluation
    the policy manager should decline.
"""

from __future__ import annotations

from typing import Callable

from ..algebra.operators import Join, LeafNode, PlanNode, Union, VerbatimData
from ..algebra.plan import QueryPlan
from ..engine.cost import CostModel
from .rewrite import RewriteRule

__all__ = [
    "AvailabilityCheck",
    "consolidation_rule",
    "absorption_rule",
    "deferrable_nodes",
    "mqp_rules",
]

AvailabilityCheck = Callable[[LeafNode], bool]
"""Predicate deciding whether a URL/URN leaf is locally available."""


def _leaf_available(node: PlanNode, available: AvailabilityCheck) -> bool:
    if isinstance(node, VerbatimData):
        return True
    if isinstance(node, LeafNode):
        return available(node)
    return all(_leaf_available(child, available) for child in node.children)


def consolidation_rule(available: AvailabilityCheck) -> RewriteRule:
    """Distribute a join over a union so available inputs come together.

    ``(A ∪ X) ⋈ B → (A ⋈ B) ∪ (X ⋈ B)`` fires only when ``B`` is locally
    available and at least one union branch is available while another is
    not — otherwise the rewrite would only enlarge the plan.
    """

    def apply(node: PlanNode) -> PlanNode | None:
        if not isinstance(node, Join) or node.join_type != "inner":
            return None
        left, right = node.left, node.right
        union_side, other_side, union_on_left = None, None, True
        if isinstance(left, Union):
            union_side, other_side, union_on_left = left, right, True
        elif isinstance(right, Union):
            union_side, other_side, union_on_left = right, left, False
        if union_side is None or not _leaf_available(other_side, available):
            return None
        availabilities = [_leaf_available(branch, available) for branch in union_side.children]
        if all(availabilities) or not any(availabilities):
            return None
        joined_branches = []
        for branch in union_side.children:
            if union_on_left:
                joined_branches.append(
                    Join(
                        branch.copy(),
                        other_side.copy(),
                        node.left_path,
                        node.right_path,
                        node.join_type,
                        node.output_tag,
                    )
                )
            else:
                joined_branches.append(
                    Join(
                        other_side.copy(),
                        branch.copy(),
                        node.left_path,
                        node.right_path,
                        node.join_type,
                        node.output_tag,
                    )
                )
        return Union(joined_branches)

    return RewriteRule(
        "consolidation",
        apply,
        "(A union X) join B -> (A join B) union (X join B) when B is local",
    )


def absorption_rule(available: AvailabilityCheck, cost_model: CostModel | None = None) -> RewriteRule:
    """Pre-join a local pair inside a three-way join when it shrinks the result.

    For ``(A ⋈ X) ⋈ B`` with ``A`` and ``B`` local but ``X`` remote, rewrite
    to ``(A ⋈ B) ⋈ X`` when the estimated ``|A ⋈ B|`` does not exceed
    ``|A|``; shipping the pre-joined pair is then no larger than shipping
    ``A`` itself, and the remote server has less work to do.

    Safety: re-associating the joins is only valid when the outer join's
    key is drawn from ``A`` itself (and not from values ``X`` would have
    contributed).  Because join keys are path expressions, the rule only
    fires when ``A`` is already materialized verbatim data and at least one
    of its items yields a value for the outer join's left path.
    """

    model = cost_model or CostModel()

    def apply(node: PlanNode) -> PlanNode | None:
        if not isinstance(node, Join) or node.join_type != "inner":
            return None
        inner = node.left
        outer_b = node.right
        if not isinstance(inner, Join) or inner.join_type != "inner":
            return None
        if not _leaf_available(outer_b, available):
            return None
        a_side, x_side = inner.left, inner.right
        if not isinstance(a_side, VerbatimData) or _leaf_available(x_side, available):
            return None
        from ..xmlmodel import evaluate_path_values

        if not any(evaluate_path_values(item, node.left_path) for item in a_side.items):
            return None
        a_estimate = model.estimate(a_side)
        pre_join = Join(
            a_side.copy(),
            outer_b.copy(),
            node.left_path,
            node.right_path,
            "inner",
            node.output_tag,
        )
        pre_estimate = model.estimate(pre_join)
        if pre_estimate.cardinality > a_estimate.cardinality:
            return None
        return Join(
            pre_join,
            x_side.copy(),
            inner.left_path,
            inner.right_path,
            inner.join_type,
            inner.output_tag,
        )

    return RewriteRule(
        "absorption",
        apply,
        "(A join X) join B -> (A join B) join X when |A join B| <= |A| and A, B are local",
    )


def deferrable_nodes(
    plan: QueryPlan,
    available: AvailabilityCheck,
    cost_model: CostModel | None = None,
) -> list[PlanNode]:
    """Return evaluable sub-plans whose evaluation would *grow* the plan.

    The policy manager uses this list to implement deferment: it declines to
    evaluate these sub-plans locally even though it could, leaving them for
    a server where more of the surrounding plan is available.
    """
    model = cost_model or CostModel()
    deferrable = []
    for node in plan.evaluable_subplans(available):
        if not model.reduces_plan_size(node):
            deferrable.append(node)
    return deferrable


def mqp_rules(available: AvailabilityCheck, cost_model: CostModel | None = None) -> list[RewriteRule]:
    """The availability-aware rule set used by the MQP optimizer."""
    return [consolidation_rule(available), absorption_rule(available, cost_model)]
