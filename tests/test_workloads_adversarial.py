"""Adversarial workload generators: properties, golden cases, live invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.harness.scaleout import ScaleoutSpec, build_scaleout_scenario, schedule_queries
from repro.workloads.adversarial import (
    FlashCrowdSchedule,
    flash_crowd_schedule,
    lying_area_swaps,
    select_free_riders,
    stale_crash_set,
    zipf_query_ranks,
)
from repro.workloads.distributions import make_rng, zipf_rank_sequence, zipf_weights

# Derandomized so property failures reproduce in CI without a seed database.
# Applied per-test (not via load_profile) so the choice cannot leak into other
# hypothesis suites through collection order.
derandomized = settings(derandomize=True, deadline=None, max_examples=40)


def _addresses(count: int) -> list[str]:
    return [f"peer{position:04d}:9020" for position in range(count)]


# --------------------------------------------------------------------------- #
# Zipf popularity
# --------------------------------------------------------------------------- #


class TestZipfProperties:
    @derandomized
    @given(st.integers(min_value=1, max_value=200), st.floats(min_value=0.0, max_value=3.0))
    def test_weights_are_a_monotone_distribution(self, count, skew):
        weights = zipf_weights(count, skew)
        assert len(weights) == count
        assert weights.sum() == pytest.approx(1.0)
        assert all(weights[i] >= weights[i + 1] for i in range(count - 1))
        assert (weights > 0).all()

    @derandomized
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=0, max_value=100),
        st.floats(min_value=0.0, max_value=3.0),
    )
    def test_rank_sequence_shape(self, seed, count, length, skew):
        ranks = zipf_rank_sequence(make_rng(seed), count, length, skew)
        assert len(ranks) == length
        assert all(0 <= rank < count for rank in ranks)

    @derandomized
    @given(st.integers(min_value=0, max_value=10_000))
    def test_rank_sequence_is_seed_deterministic(self, seed):
        first = zipf_rank_sequence(make_rng(seed), 7, 40, 1.2)
        second = zipf_rank_sequence(make_rng(seed), 7, 40, 1.2)
        assert first == second

    def test_skew_concentrates_on_rank_zero(self):
        # With heavy skew the hottest rank dominates; uniform skew does not.
        skewed = zipf_query_ranks(make_rng(5), pool_size=10, length=2_000, skew=2.0)
        flat = zipf_rank_sequence(make_rng(5), 10, 2_000, 0.0)
        assert skewed.count(0) > 0.5 * len(skewed)
        assert flat.count(0) < 0.25 * len(flat)

    def test_rank_sequence_rejects_bad_arguments(self):
        with pytest.raises(WorkloadError):
            zipf_rank_sequence(make_rng(1), 0, 5)
        with pytest.raises(WorkloadError):
            zipf_rank_sequence(make_rng(1), 5, -1)
        assert zipf_rank_sequence(make_rng(1), 5, 0) == []

    def test_golden_sequence(self):
        # Pinned draw: any change to the sampling path shows up here first.
        assert zipf_rank_sequence(make_rng(11), 5, 10, 1.2) == [
            0, 1, 1, 0, 0, 3, 0, 0, 4, 1,
        ]


# --------------------------------------------------------------------------- #
# Flash crowds
# --------------------------------------------------------------------------- #


class TestFlashCrowdProperties:
    @derandomized
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=60),
        st.integers(min_value=1, max_value=12),
        st.floats(min_value=0.05, max_value=1.0),
    )
    def test_burst_invariants(self, seed, queries, pool_size, burst_fraction):
        schedule = flash_crowd_schedule(
            make_rng(seed), queries, pool_size,
            start_ms=100.0, interval_ms=50.0, burst_fraction=burst_fraction,
        )
        # The burst adds load on one area, not extra queries.
        assert len(schedule.times_ms) == queries
        assert len(schedule.ranks) == queries
        assert 1 <= schedule.burst_size <= queries
        # Burst members: hot query (rank 0), inside the burst window, sorted.
        burst_times = schedule.times_ms[-schedule.burst_size:]
        burst_ranks = schedule.ranks[-schedule.burst_size:]
        assert set(burst_ranks) == {0}
        assert all(
            schedule.burst_at_ms <= at <= schedule.burst_at_ms + schedule.burst_width_ms
            for at in burst_times
        )
        assert list(burst_times) == sorted(burst_times)
        # Background queries keep the steady cadence and avoid the hot query
        # whenever the pool offers an alternative.
        steady = queries - schedule.burst_size
        for position in range(steady):
            assert schedule.times_ms[position] == 100.0 + position * 50.0
            if pool_size > 1:
                assert 1 <= schedule.ranks[position] < pool_size
        assert len(schedule.burst_indexes) >= schedule.burst_size

    @derandomized
    @given(st.integers(min_value=0, max_value=10_000))
    def test_schedule_is_seed_deterministic(self, seed):
        def build():
            return flash_crowd_schedule(make_rng(seed), 20, 6, 0.0, 25.0)

        assert build() == build()

    def test_rejects_bad_arguments(self):
        rng = make_rng(1)
        with pytest.raises(WorkloadError):
            flash_crowd_schedule(rng, 0, 5, 0.0, 10.0)
        with pytest.raises(WorkloadError):
            flash_crowd_schedule(rng, 5, 0, 0.0, 10.0)
        with pytest.raises(WorkloadError):
            flash_crowd_schedule(rng, 5, 5, 0.0, 10.0, burst_fraction=0.0)
        with pytest.raises(WorkloadError):
            flash_crowd_schedule(rng, 5, 5, 0.0, 10.0, burst_width_ms=0.0)
        with pytest.raises(WorkloadError):
            FlashCrowdSchedule((1.0,), (0, 1), 0.0, 10.0, 1)


# --------------------------------------------------------------------------- #
# Misbehaving populations: free riders, stale crashes, lying pairs
# --------------------------------------------------------------------------- #


class TestPopulationSelectors:
    @derandomized
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=80),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_free_riders_are_a_sorted_subset(self, seed, count, fraction):
        addresses = _addresses(count)
        riders = select_free_riders(make_rng(seed), addresses, fraction)
        assert riders == sorted(riders)
        assert len(riders) == len(set(riders))
        assert set(riders) <= set(addresses)
        assert len(riders) == int(round(count * fraction))

    @derandomized
    @given(st.integers(min_value=0, max_value=10_000))
    def test_selection_ignores_caller_ordering(self, seed):
        addresses = _addresses(30)
        forward = select_free_riders(make_rng(seed), addresses, 0.3)
        backward = select_free_riders(make_rng(seed), list(reversed(addresses)), 0.3)
        assert forward == backward

    @derandomized
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=80),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_stale_crash_set_is_a_sorted_subset(self, seed, count, fraction):
        addresses = _addresses(count)
        crashed = stale_crash_set(make_rng(seed), addresses, fraction)
        assert crashed == sorted(crashed)
        assert set(crashed) <= set(addresses)
        assert len(crashed) == int(round(count * fraction))

    @derandomized
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=80),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_lying_pairs_are_disjoint(self, seed, count, fraction):
        addresses = _addresses(count)
        swaps = lying_area_swaps(make_rng(seed), addresses, fraction)
        touched = [address for pair in swaps for address in pair]
        assert len(touched) == len(set(touched))
        assert set(touched) <= set(addresses)

    def test_fraction_bounds_are_enforced(self):
        for selector in (select_free_riders, stale_crash_set, lying_area_swaps):
            with pytest.raises(WorkloadError):
                selector(make_rng(1), _addresses(10), -0.1)
            with pytest.raises(WorkloadError):
                selector(make_rng(1), _addresses(10), 1.1)


# --------------------------------------------------------------------------- #
# Live invariants on a built scenario
# --------------------------------------------------------------------------- #


def _run(spec: ScaleoutSpec):
    scenario = build_scaleout_scenario(spec)
    with scenario.cluster as cluster:
        schedule_queries(scenario)
        cluster.run_until_idle()
    return scenario


class TestScenarioInvariants:
    def test_free_riders_never_evaluate(self):
        spec = ScaleoutSpec(
            name="riders", topology="small-world", peers=40,
            workload="garage-sale", queries=6, free_rider_fraction=0.3,
        )
        scenario = _run(spec)
        assert len(scenario.free_riders) == int(round(40 * 0.3))
        for address in scenario.free_riders:
            processor = scenario.cluster.session(address).peer.processor
            assert processor.free_ride
            assert processor.subplans_evaluated == 0
        # The cooperative rest of the population still did the work.
        riders = set(scenario.free_riders)
        evaluated = sum(
            peer.processor.subplans_evaluated
            for peer in scenario.cluster.peers()
            if peer.address not in riders
        )
        assert evaluated > 0

    def test_stale_crashes_take_peers_offline_without_telling_catalogs(self):
        spec = ScaleoutSpec(
            name="stale", topology="small-world", peers=40,
            workload="garage-sale", queries=4, catalog_mode="stale",
        )
        scenario = _run(spec)
        assert scenario.stale_crashed
        for address in scenario.stale_crashed:
            assert not scenario.network.node(address).online
        # At least one live catalog still lists a dead peer as a server.
        crashed_set = set(scenario.stale_crashed)
        still_listed = any(
            crashed in peer.catalog.servers
            for crashed in crashed_set
            for peer in scenario.cluster.peers()
            if peer.address not in crashed_set
        )
        assert still_listed

    def test_lying_catalogs_rewrite_entries(self):
        spec = ScaleoutSpec(
            name="lying", topology="small-world", peers=40,
            workload="garage-sale", queries=4, catalog_mode="lying",
        )
        scenario = _run(spec)
        assert scenario.poisoned_entries > 0
