"""XML document model, parser/serializer, and XPath-lite evaluator."""

from .element import XMLElement, element, text_element
from .parser import parse_xml, serialize_xml, serialized_size
from .path import PathExpression, evaluate_path, evaluate_path_values, parse_path

__all__ = [
    "XMLElement",
    "element",
    "text_element",
    "parse_xml",
    "serialize_xml",
    "serialized_size",
    "PathExpression",
    "parse_path",
    "evaluate_path",
    "evaluate_path_values",
]
