"""Distributed catalogs: entries, intensional statements, binding, routing caches."""

from .binding import Binder, Binding, BindingAlternative, BoundSource
from .cache import CacheEntry, RoutingCache
from .catalog import Catalog
from .entries import (
    CollectionRef,
    NamedResourceEntry,
    ServerEntry,
    ServerRole,
    canonical_address,
)
from .index import CatalogIndex, CategoryTrie, StatementIndex
from .intensional import CatalogLevel, IntensionalStatement, Relation, ServerHolding
from .matcher import SubscriptionMatcher, SubscriptionShape, subscribable_shape

__all__ = [
    "Catalog",
    "CatalogIndex",
    "CategoryTrie",
    "StatementIndex",
    "SubscriptionMatcher",
    "SubscriptionShape",
    "subscribable_shape",
    "canonical_address",
    "ServerRole",
    "ServerEntry",
    "CollectionRef",
    "NamedResourceEntry",
    "CatalogLevel",
    "Relation",
    "ServerHolding",
    "IntensionalStatement",
    "Binder",
    "Binding",
    "BindingAlternative",
    "BoundSource",
    "RoutingCache",
    "CacheEntry",
]
