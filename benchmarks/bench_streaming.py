"""STREAMING — pull-based execution vs the materialized seed engine.

Three claims, measured at the thousand-peer configuration's hot collection
(the same population :mod:`bench_scaleout` builds):

* **Time-to-first-result** — a pull-based Select hands its first item over
  after touching a handful of input items; the materialized engine scans
  the whole collection first.  Gate: >= 2x better (measured: orders of
  magnitude).
* **Bounded memory** — pipeline breakers stay within their
  ``max_buffered_items`` budget and fully streaming operators buffer
  nothing (``peak_buffered_items`` is the engine's own accounting).
* **Throughput parity** — draining the streaming iterator end-to-end keeps
  pace with the seed's list evaluator (per-item work is identical; the
  C-level ``filter`` / ``map`` / ``chain`` pipeline trades the seed's
  intermediate lists for iterator driving).  Floor: 0.9x, measured ~1.0x.

An end-to-end chunked-delivery figure (wall-clock to the first streamed
item at a client across the network, chunk frames included) is recorded as
context, not gated: it depends on the latency model's draw order.

``REPRO_BENCH_QUICK=1`` shrinks the population for CI smoke runs.
"""

from __future__ import annotations

import time

import pytest

import benchjson
from repro.algebra import PlanBuilder
from repro.algebra.expressions import parse_predicate
from repro.algebra.operators import OrderBy, Project, Select, URLRef, VerbatimData
from repro.catalog import CollectionRef, NamedResourceEntry
from repro.engine import QueryEngine
from repro.harness.scaleout import ScaleoutSpec, build_scaleout_scenario
from repro.perf import overrides
from conftest import emit

QUICK = benchjson.quick_mode()
BENCH = "streaming"
PEERS = 200 if QUICK else 1000
REPEATS = 3 if QUICK else 5

FORSALE_URN = "urn:ForSale:StreamingBench"


@pytest.fixture(scope="module")
def hot_collection():
    """The busiest index server's item union inside the big population."""
    spec = ScaleoutSpec(
        name="bench", topology="scale-free", peers=PEERS, workload="garage-sale",
        churn="none", queries=1, batch=False,
    )
    scenario = build_scaleout_scenario(spec)
    index = max(
        scenario.index_servers,
        key=lambda server: (len(server.catalog.servers), server.address),
    )
    items = [
        item
        for peer in scenario.data_peers
        for item in peer.items
        if index.interest_area.overlaps(
            scenario.namespace.area([item.child_text("city") or "*", "*"])
        )
    ]
    index.processor.add_collection("/items", items)
    index.catalog.register_named_resource(
        NamedResourceEntry(FORSALE_URN, [CollectionRef(index.address, "/items")])
    )
    return index, items


def _select_plan(items):
    return Select(VerbatimData.from_items(items, copy_items=False), parse_predicate("price < 120"))


def _pipeline_plan(items):
    node = Select(VerbatimData.from_items(items, copy_items=False), parse_predicate("price < 120"))
    return Project(node, [("title", "title"), ("price", "price")])


def _best(runner, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        runner()
        best = min(best, time.perf_counter() - started)
    return best


def _best_pair(first, second, repeats: int = REPEATS) -> tuple[float, float]:
    """Interleaved best-of timing: cancels allocator / cache drift between
    the two sides of a ratio."""
    best_first = best_second = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        first()
        best_first = min(best_first, time.perf_counter() - started)
        started = time.perf_counter()
        second()
        best_second = min(best_second, time.perf_counter() - started)
    return best_first, best_second


def test_time_to_first_result(hot_collection):
    """Gate: streaming hands over the first item >= 2x sooner."""
    _, items = hot_collection
    plan = _select_plan(items)

    def first_streamed():
        engine = QueryEngine()
        iterator = engine.stream(plan)
        return next(iterator)

    def full_materialized():
        with overrides(streaming_engine=False):
            engine = QueryEngine()
            return engine.evaluate(plan)[0]

    assert serialize_first(first_streamed()) == serialize_first(full_materialized())
    streamed = _best(first_streamed)
    materialized = _best(full_materialized)
    ratio = materialized / streamed
    emit(
        f"STREAMING  Time to first result ({PEERS} peers, {len(items)} items)",
        f"materialized={materialized * 1e6:,.0f}us streamed={streamed * 1e6:,.0f}us "
        f"ratio={ratio:,.1f}x",
    )
    context = {"peers": PEERS, "items": len(items)}
    benchjson.record_metric(
        BENCH, "first_result_us_streamed", streamed * 1e6, unit="us", direction="lower", **context
    )
    benchjson.record_metric(
        BENCH,
        "first_result_us_materialized",
        materialized * 1e6,
        unit="us",
        direction="lower",
        **context,
    )
    benchjson.record_metric(
        BENCH,
        "time_to_first_result_speedup",
        ratio,
        unit="x",
        compare=True,
        gate_min=2.0,
        **context,
    )
    assert ratio >= 2.0, f"first result only {ratio:.2f}x sooner (need >= 2x)"


def serialize_first(item) -> str:
    from repro.xmlmodel import serialize_xml

    return serialize_xml(item)


def test_bounded_memory(hot_collection):
    """Gate: buffers stay inside the operator budget (and streams buffer 0)."""
    _, items = hot_collection
    select_engine = QueryEngine(max_buffered_items=8)
    for _ in select_engine.stream(_select_plan(items)):
        pass
    select_peak = select_engine.peak_buffered_items

    budget = len(items)
    breaker_engine = QueryEngine(max_buffered_items=budget)
    breaker_plan = OrderBy(VerbatimData.from_items(items, copy_items=False), "price")
    for _ in breaker_engine.stream(breaker_plan):
        pass
    breaker_peak = breaker_engine.peak_buffered_items

    within = 1.0 if (select_peak == 0 and breaker_peak <= budget) else 0.0
    emit(
        f"STREAMING  Peak buffered items ({len(items)} input items)",
        f"select_peak={select_peak} (budget 8) "
        f"order_by_peak={breaker_peak} (budget {budget}) within_budget={within == 1.0}",
    )
    context = {"peers": PEERS, "items": len(items), "breaker_budget": budget}
    benchjson.record_metric(
        BENCH, "select_peak_buffered_items", select_peak, unit="count", direction="lower", **context
    )
    benchjson.record_metric(
        BENCH,
        "breaker_peak_buffered_items",
        breaker_peak,
        unit="count",
        direction="lower",
        **context,
    )
    benchjson.record_metric(
        BENCH,
        "peak_buffer_within_budget",
        within,
        unit="bool",
        compare=True,
        gate_min=1.0,
        **context,
    )
    assert within == 1.0


def test_streamed_throughput(hot_collection):
    """Gate: full-drain streaming throughput >= the seed's list evaluator."""
    _, items = hot_collection
    plan = _pipeline_plan(items)

    def drain_streaming():
        engine = QueryEngine()
        return len(engine.evaluate(plan))  # drains the streaming operators

    def drain_materialized():
        with overrides(streaming_engine=False):
            engine = QueryEngine()
            return len(engine.evaluate(plan))

    produced = drain_streaming()
    assert produced == drain_materialized()
    streamed, materialized = _best_pair(drain_streaming, drain_materialized, repeats=3 * REPEATS)
    ratio = materialized / streamed
    emit(
        f"STREAMING  End-to-end drain throughput ({len(items)} items)",
        f"materialized={produced / materialized:,.0f} items/s "
        f"streamed={produced / streamed:,.0f} items/s ratio={ratio:.2f}x",
    )
    context = {"peers": PEERS, "items": len(items), "produced": produced}
    benchjson.record_metric(
        BENCH, "streamed_items_per_sec", produced / streamed, unit="items/s", **context
    )
    benchjson.record_metric(
        BENCH,
        "materialized_items_per_sec",
        produced / materialized,
        unit="items/s",
        **context,
    )
    # Parity claim with a no-regression floor: per-item work is identical in
    # both modes, so the ratio hovers around 1.0 (the streaming side trades
    # the seed's intermediate lists for C-level filter/map/chain driving);
    # the 0.9 floor turns a real slowdown into a hard failure without
    # flaking on scheduler noise.
    benchjson.record_metric(
        BENCH,
        "streamed_throughput_vs_seed",
        ratio,
        unit="x",
        compare=True,
        gate_min=0.9,
        **context,
    )
    assert ratio >= 0.9, f"streaming drain is {ratio:.2f}x the seed (floor 0.9x)"


def test_chunked_delivery_across_the_network(hot_collection):
    """Context figure: wall-clock to the first item at a *client*, chunked.

    Runs the full stack — MQP pipeline, serialization, simulated network —
    once with single-frame delivery and once with chunked delivery, timing
    how long until the client can see the first / the complete answer.
    Recorded without a gate: the figure mixes engine, codec, and
    event-queue costs, so it tracks the trajectory rather than gating it.
    """
    from repro.api import Cluster
    from repro.namespace import garage_sale_namespace

    index, items = hot_collection
    namespace = garage_sale_namespace()

    def run(streaming: bool) -> tuple[float, int]:
        with overrides(streaming_results=streaming):
            with Cluster("sim", namespace=namespace) as cluster:
                server = cluster.base_server("server:9020", namespace.top_area())
                server.publish("items", items)
                cluster.meta_index("meta:9020")
                client = cluster.client("client:9020")
                cluster.connect()
                plan = (
                    PlanBuilder.url("server:9020", "/items")
                    .select("price < 120")
                    .display("client:9020")
                )
                started = time.perf_counter()
                handle = client.query(plan).submit()
                first = next(iter(handle.items(timeout=10_000_000)))
                elapsed = time.perf_counter() - started
                del first
                result = handle.result(timeout=10_000_000)
                return elapsed, result.count

    chunked_first, chunked_count = run(streaming=True)
    framed_first, framed_count = run(streaming=False)
    assert chunked_count == framed_count
    ratio = framed_first / chunked_first
    emit(
        f"STREAMING  First item at the client ({framed_count} answer items)",
        f"single-frame={framed_first * 1e3:,.1f}ms chunked={chunked_first * 1e3:,.1f}ms "
        f"ratio={ratio:.2f}x",
    )
    benchjson.record_metric(
        BENCH,
        "client_first_item_speedup_chunked",
        ratio,
        unit="x",
        answer_items=framed_count,
        peers=PEERS,
    )


def test_differential_sanity(hot_collection):
    """Cheap recheck of the tier-1 differential invariant at bench scale."""
    from repro.xmlmodel import serialize_xml

    _, items = hot_collection
    plan = _pipeline_plan(items)
    engine = QueryEngine()
    streamed = [serialize_xml(item) for item in engine.stream(plan)]
    with overrides(streaming_engine=False):
        materialized = [serialize_xml(item) for item in QueryEngine().evaluate(plan)]
    assert streamed == materialized


def test_leaf_resolution_through_the_processor(hot_collection):
    """The budgeted engine behind MQPProcessor resolves URL leaves too."""
    index, items = hot_collection
    engine = QueryEngine(
        resolver=index.processor._resolve_local_leaf, max_buffered_items=len(items) + 1
    )
    url_plan = Select(URLRef(index.address, "/items"), parse_predicate("price < 120"))
    drained = sum(1 for _ in engine.stream(url_plan))
    assert drained > 0


if __name__ == "__main__":
    raise SystemExit(benchjson.run_as_script(__file__))
