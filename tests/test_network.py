"""Tests for the discrete-event simulator and the network fabric."""

import pytest

from repro.errors import SimulationError
from repro.network import (
    FailureInjector,
    LatencyModel,
    Message,
    Network,
    NetworkNode,
    Simulator,
    random_topology,
    small_world_topology,
    star_topology,
)


class Recorder(NetworkNode):
    """Test peer that records everything it receives and can auto-reply."""

    def __init__(self, address, reply_to=None):
        super().__init__(address)
        self.received: list[Message] = []
        self.reply_to = reply_to

    def handle_message(self, message):
        self.received.append(message)
        if self.reply_to and message.kind == "ping":
            self.send(message.sender, "pong", size_bytes=64)


class TestSimulator:
    def test_events_run_in_time_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule(30, lambda: order.append("c"))
        simulator.schedule(10, lambda: order.append("a"))
        simulator.schedule(20, lambda: order.append("b"))
        simulator.run_until_idle()
        assert order == ["a", "b", "c"]
        assert simulator.now == pytest.approx(30)
        assert simulator.processed_events == 3

    def test_same_time_events_run_in_schedule_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule(5, lambda: order.append(1))
        simulator.schedule(5, lambda: order.append(2))
        simulator.run_until_idle()
        assert order == [1, 2]

    def test_run_until_bound(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(10, lambda: fired.append(1))
        simulator.schedule(50, lambda: fired.append(2))
        simulator.run(until=20)
        assert fired == [1]
        assert simulator.now == pytest.approx(20)
        simulator.run_until_idle()
        assert fired == [1, 2]

    def test_cancelled_event_skipped(self):
        simulator = Simulator()
        fired = []
        event = simulator.schedule(5, lambda: fired.append(1))
        event.cancel()
        simulator.run_until_idle()
        assert fired == []

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1, lambda: None)

    def test_event_storm_guard(self):
        simulator = Simulator()

        def reschedule():
            simulator.schedule(1, reschedule)

        simulator.schedule(1, reschedule)
        with pytest.raises(SimulationError):
            simulator.run(max_events=100)


class TestLatencyModel:
    def test_stable_per_link_latency(self):
        model = LatencyModel(seed=3)
        first = model.propagation_delay("a", "b")
        assert model.propagation_delay("a", "b") == first
        assert model.propagation_delay("a", "a") == model.local_latency_ms

    def test_transfer_time_scales_with_size(self):
        model = LatencyModel(bandwidth_bytes_per_ms=100)
        assert model.transfer_time(1000) == pytest.approx(10)
        assert model.delivery_delay("a", "b", 1000) > model.propagation_delay("a", "b")

    def test_stable_mode_is_draw_order_independent(self):
        """The multicore seam: link jitter must not depend on first-use order.

        Sharded workers touch links in shard-local order; with draw-order
        jitter the same link gets different delays under different worker
        counts, which (under churn) changes query answers.  Stable mode
        keys jitter on (seed, link) alone.
        """
        links = [("a:1", "b:2"), ("c:3", "d:4"), ("e:5", "f:6")]
        forward = LatencyModel(seed=3, stable=True)
        backward = LatencyModel(seed=3, stable=True)
        delays = {link: forward.propagation_delay(*link) for link in links}
        for link in reversed(links):
            assert backward.propagation_delay(*link) == delays[link]
        # Default draw-order mode is order-DEPENDENT — that asymmetry is
        # what keeps single-process reports byte-identical to history.
        legacy_fwd = LatencyModel(seed=3)
        legacy_bwd = LatencyModel(seed=3)
        fwd = [legacy_fwd.propagation_delay(*link) for link in links]
        bwd = [legacy_bwd.propagation_delay(*link) for link in reversed(links)]
        assert fwd != list(reversed(bwd))
        # A different seed moves the stable jitter too.
        other = LatencyModel(seed=4, stable=True)
        assert other.propagation_delay(*links[0]) != delays[links[0]]
        # Stable jitter stays inside the configured half-width.
        for value in delays.values():
            assert abs(value - forward.base_latency_ms) <= forward.jitter_ms


class TestNetwork:
    def test_message_delivery_and_metrics(self):
        network = Network()
        alice, bob = Recorder("alice:1"), Recorder("bob:1", reply_to=True)
        network.register(alice)
        network.register(bob)
        alice.send("bob:1", "ping", size_bytes=100)
        network.run_until_idle()
        assert len(bob.received) == 1
        assert len(alice.received) == 1  # the pong
        assert network.metrics.messages_sent == 2
        assert network.metrics.bytes_sent == 164
        assert network.metrics.messages_by_kind["ping"] == 1

    def test_duplicate_address_rejected(self):
        network = Network()
        network.register(Recorder("a:1"))
        with pytest.raises(SimulationError):
            network.register(Recorder("a:1"))

    def test_unknown_recipient_dropped(self):
        network = Network()
        alice = Recorder("alice:1")
        network.register(alice)
        alice.send("ghost:1", "ping")
        network.run_until_idle()
        assert network.metrics.dropped_messages == 1

    def test_offline_node_drops_messages(self):
        network = Network()
        alice, bob = Recorder("alice:1"), Recorder("bob:1")
        network.register(alice)
        network.register(bob)
        bob.go_offline()
        alice.send("bob:1", "ping")
        network.run_until_idle()
        assert bob.received == []
        assert network.metrics.dropped_messages == 1

    def test_detached_node_cannot_send(self):
        with pytest.raises(SimulationError):
            Recorder("lonely:1").send("x:1", "ping")

    def test_trace_metrics(self):
        network = Network()
        trace = network.metrics.trace("q1")
        trace.issued_at = 0.0
        trace.completed_at = 120.0
        trace.expected_answers = 4
        trace.answers = 2
        trace.visited.extend(["a:1", "b:1", "a:1"])
        assert trace.latency_ms == pytest.approx(120.0)
        assert trace.distinct_peers == 2
        assert trace.recall == pytest.approx(0.5)
        summary = network.metrics.summary()
        assert summary["queries"] == 1
        assert summary["mean_recall"] == pytest.approx(0.5)


class TestTopologies:
    def test_random_topology_connected(self):
        addresses = [f"p{i}:1" for i in range(20)]
        topology = random_topology(addresses, degree=4, seed=2)
        assert topology.is_connected()
        assert set(topology.addresses) == set(addresses)
        assert topology.degree(addresses[0]) >= 1

    def test_small_world_topology(self):
        addresses = [f"p{i}:1" for i in range(16)]
        topology = small_world_topology(addresses, neighbors=4, seed=2)
        assert topology.is_connected()
        assert topology.average_degree() >= 2

    def test_star_topology(self):
        topology = star_topology("hub:1", ["a:1", "b:1", "c:1"])
        assert topology.degree("hub:1") == 3
        assert topology.neighbors("a:1") == ["hub:1"]

    def test_unknown_address_raises(self):
        topology = star_topology("hub:1", ["a:1"])
        with pytest.raises(SimulationError):
            topology.neighbors("ghost:1")

    def test_tiny_topologies(self):
        assert random_topology(["only:1"]).addresses == ["only:1"]
        assert random_topology([]).addresses == []


class TestFailureInjection:
    def test_scheduled_failure_and_recovery(self):
        network = Network()
        node = Recorder("a:1")
        network.register(node)
        injector = FailureInjector(network)
        injector.schedule("a:1", fail_at=10, recover_at=20)
        network.run(until=15)
        assert not node.online
        network.run(until=25)
        assert node.online

    def test_recovery_must_follow_failure(self):
        network = Network()
        network.register(Recorder("a:1"))
        with pytest.raises(ValueError):
            FailureInjector(network).schedule("a:1", fail_at=10, recover_at=5)

    def test_random_failures_deterministic(self):
        network = Network()
        addresses = [f"p{i}:1" for i in range(10)]
        for address in addresses:
            network.register(Recorder(address))
        injector = FailureInjector(network)
        events = injector.schedule_random(addresses, 0.3, (0, 100), seed=5)
        assert len(events) == 3
        assert injector.failed_addresses() == sorted(event.address for event in events)
