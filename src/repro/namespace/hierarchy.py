"""Categorization hierarchies and category paths (paper §3.1).

A *categorization hierarchy* (also called a *dimension*, borrowing OLAP
terminology) is a tree of categories rooted at the all-inclusive ``*``
category.  ``USA/OR/Portland`` is a city-level category of the Location
dimension; every item in it also belongs to ``USA/OR`` and ``USA``.

:class:`CategoryPath` is an immutable value object naming a category by the
path of labels from the root; :class:`Hierarchy` is the tree of known
categories for one dimension and answers the structural questions the rest
of the system asks (parents, children, ancestor tests, approximation of
unknown categories by known ancestors).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from ..errors import NamespaceError

__all__ = ["CategoryPath", "TOP", "Hierarchy"]

_PARSE_CACHE: dict[str, "CategoryPath"] = {}
_PARSE_CACHE_LIMIT = 65536


@dataclass(frozen=True, order=True)
class CategoryPath:
    """A category identified by its path of labels from the dimension root.

    The empty path is the all-inclusive top category, written ``*`` in the
    paper.  Paths are written and parsed with ``/`` separators, e.g.
    ``USA/OR/Portland`` or ``Furniture/Chairs``.
    """

    segments: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        # Coerce to tuple so list-constructed paths compare (and hash)
        # equal to parsed ones — `segments[:n] == other.segments` prefix
        # checks are type-sensitive otherwise.
        if isinstance(self.segments, str):
            raise NamespaceError(
                f"segments must be a sequence of labels, got the string "
                f"{self.segments!r}; use CategoryPath.parse for path text"
            )
        if not isinstance(self.segments, tuple):
            object.__setattr__(self, "segments", tuple(self.segments))
        for segment in self.segments:
            if not segment or "/" in segment or segment == "*":
                raise NamespaceError(f"invalid category segment: {segment!r}")
        # Intern the segment labels: the category vocabulary is small and
        # shared by every peer, so label comparisons inside prefix checks
        # become pointer comparisons instead of character scans.
        object.__setattr__(
            self, "segments", tuple(sys.intern(segment) for segment in self.segments)
        )
        object.__setattr__(self, "_hash", hash(self.segments))

    def __hash__(self) -> int:
        # The dataclass-generated hash rehashes the segments tuple on every
        # call; paths key the catalog tries and comparison caches, so the
        # hash is computed once at construction instead.
        return self._hash  # type: ignore[attr-defined]

    # -- construction -------------------------------------------------- #

    @classmethod
    def parse(cls, text: str, separator: str = "/") -> "CategoryPath":
        """Parse ``USA/OR/Portland`` (or ``*`` for the top category)."""
        if separator == "/":
            cached = _PARSE_CACHE.get(text)
            if cached is not None:
                return cached
        raw = text
        text = text.strip()
        if text in ("", "*"):
            parsed = TOP
        else:
            parsed = cls(tuple(part.strip() for part in text.split(separator) if part.strip()))
        if separator == "/":
            if len(_PARSE_CACHE) >= _PARSE_CACHE_LIMIT:
                _PARSE_CACHE.clear()
            _PARSE_CACHE[raw] = parsed
        return parsed

    def child(self, label: str) -> "CategoryPath":
        """Return the child category of this one named ``label``."""
        return CategoryPath(self.segments + (label,))

    # -- structure ----------------------------------------------------- #

    @property
    def is_top(self) -> bool:
        """True for the all-inclusive ``*`` category."""
        return not self.segments

    @property
    def depth(self) -> int:
        """Number of levels below the top category (top has depth 0)."""
        return len(self.segments)

    @property
    def label(self) -> str:
        """The most specific label, or ``*`` for the top category."""
        return self.segments[-1] if self.segments else "*"

    @property
    def parent(self) -> "CategoryPath":
        """The parent category; the top category is its own parent."""
        if self.is_top:
            return self
        return CategoryPath(self.segments[:-1])

    def ancestors(self, include_self: bool = False) -> Iterator["CategoryPath"]:
        """Yield ancestors from the top category down to the parent (or self)."""
        limit = len(self.segments) + (1 if include_self else 0)
        for length in range(0, limit):
            yield CategoryPath(self.segments[:length])

    def covers(self, other: "CategoryPath") -> bool:
        """True when ``other`` is this category or one of its descendants.

        This is the per-dimension building block of interest-cell coverage:
        a cell covers another iff each of its coordinates covers the
        corresponding coordinate (paper §3.1).
        """
        mine = self.segments
        theirs = other.segments
        if len(mine) > len(theirs):
            return False
        return theirs[: len(mine)] == mine

    def overlaps(self, other: "CategoryPath") -> bool:
        """True when the two categories share any items (one covers the other)."""
        return self.covers(other) or other.covers(self)

    def meet(self, other: "CategoryPath") -> "CategoryPath | None":
        """Return the more specific of two overlapping categories, else ``None``."""
        if self.covers(other):
            return other
        if other.covers(self):
            return self
        return None

    def common_ancestor(self, other: "CategoryPath") -> "CategoryPath":
        """Return the deepest category covering both paths."""
        shared: list[str] = []
        for mine, theirs in zip(self.segments, other.segments):
            if mine != theirs:
                break
            shared.append(mine)
        return CategoryPath(tuple(shared))

    def relative_depth(self, ancestor: "CategoryPath") -> int:
        """Return how many levels below ``ancestor`` this category sits."""
        if not ancestor.covers(self):
            raise NamespaceError(f"{ancestor} does not cover {self}")
        return self.depth - ancestor.depth

    def __str__(self) -> str:
        # str(path) keys routing caches and batch contexts on the hot path,
        # so the rendered form is computed once per path object.
        text = self.__dict__.get("_text")
        if text is None:
            text = "/".join(self.segments) if self.segments else "*"
            object.__setattr__(self, "_text", text)
        return text


TOP = CategoryPath()
"""The all-inclusive ``*`` category shared by every dimension."""


class Hierarchy:
    """The category tree of a single dimension.

    Categories are added by path; intermediate categories are created
    implicitly, mirroring how the paper treats hierarchies as externally
    administered vocabularies (e.g. the Post Office's location hierarchy).
    """

    def __init__(self, name: str, categories: Iterable[CategoryPath | str] = ()) -> None:
        if not name:
            raise NamespaceError("hierarchy name must be non-empty")
        self.name = name
        self._children: dict[CategoryPath, set[str]] = {TOP: set()}
        for category in categories:
            self.add(category)

    # -- mutation ------------------------------------------------------ #

    def add(self, category: CategoryPath | str) -> CategoryPath:
        """Register a category (and all its ancestors); return the path."""
        path = CategoryPath.parse(category) if isinstance(category, str) else category
        current = TOP
        for label in path.segments:
            self._children.setdefault(current, set()).add(label)
            current = current.child(label)
            self._children.setdefault(current, set())
        return path

    def add_tree(self, tree: Mapping[str, object], prefix: CategoryPath = TOP) -> None:
        """Register a nested ``{label: {sub-label: {...}}}`` mapping of categories."""
        for label, subtree in tree.items():
            child = self.add(prefix.child(label))
            if isinstance(subtree, Mapping):
                self.add_tree(subtree, child)

    # -- queries ------------------------------------------------------- #

    def __contains__(self, category: CategoryPath | str) -> bool:
        path = CategoryPath.parse(category) if isinstance(category, str) else category
        return path in self._children

    def __len__(self) -> int:
        return len(self._children)

    def categories(self) -> list[CategoryPath]:
        """Return every known category, top first, in breadth-then-name order."""
        return sorted(self._children, key=lambda path: (path.depth, path.segments))

    def children(self, category: CategoryPath | str) -> list[CategoryPath]:
        """Return the immediate subcategories of ``category``."""
        path = self._require(category)
        return sorted(path.child(label) for label in self._children[path])

    def leaves(self) -> list[CategoryPath]:
        """Return the categories with no subcategories."""
        return sorted(
            (path for path, kids in self._children.items() if not kids),
            key=lambda path: (path.depth, path.segments),
        )

    def depth(self) -> int:
        """Return the depth of the deepest known category."""
        return max(path.depth for path in self._children)

    def validate(self, category: CategoryPath | str) -> CategoryPath:
        """Return the path if it names a known category, else raise."""
        return self._require(category)

    def approximate(self, category: CategoryPath | str) -> CategoryPath:
        """Map an unknown category to its deepest known ancestor.

        The paper (§3.5) notes that a reference to an unknown hierarchy node
        can be approximated by an ancestor "with a possible loss of
        precision, but no loss of recall".
        """
        path = CategoryPath.parse(category) if isinstance(category, str) else category
        while path not in self._children:
            path = path.parent
        return path

    def descendants(self, category: CategoryPath | str, include_self: bool = True) -> list[CategoryPath]:
        """Return every known category covered by ``category``."""
        path = self._require(category)
        found = [known for known in self._children if path.covers(known)]
        if not include_self:
            found = [known for known in found if known != path]
        return sorted(found, key=lambda item: (item.depth, item.segments))

    def _require(self, category: CategoryPath | str) -> CategoryPath:
        path = CategoryPath.parse(category) if isinstance(category, str) else category
        if path not in self._children:
            raise NamespaceError(f"unknown category {path} in dimension {self.name!r}")
        return path

    def __repr__(self) -> str:
        return f"Hierarchy({self.name!r}, {len(self._children)} categories)"


def _as_paths(items: Sequence[CategoryPath | str]) -> list[CategoryPath]:
    return [CategoryPath.parse(item) if isinstance(item, str) else item for item in items]
