"""FIG-5 — multi-hierarchic namespace geometry at scale.

Figure 5 visualizes interest areas as regions over the Location x
Merchandise grid.  This benchmark times the three relations everything
else is built on — cover, overlap, and intersection of interest areas — as
the number of areas grows, and reports how selective overlap pruning is
for a Portland-furniture style query.
"""

from __future__ import annotations

import pytest

from repro.namespace import InterestArea, InterestCell, garage_sale_namespace
from repro.workloads import make_rng
from conftest import emit


def _random_areas(count: int, seed: int = 5) -> list[InterestArea]:
    namespace = garage_sale_namespace()
    rng = make_rng(seed)
    # Country/state-level locations and top-level merchandise categories:
    # the granularity at which servers advertise interest areas (Figure 5).
    locations = [c for c in namespace.dimensions[0].categories() if c.depth <= 2]
    categories = [c for c in namespace.dimensions[1].categories() if c.depth <= 1]
    areas = []
    for _ in range(count):
        cells = []
        for _ in range(int(rng.integers(1, 4))):
            location = locations[int(rng.integers(len(locations)))]
            category = categories[int(rng.integers(len(categories)))]
            cells.append(InterestCell((location, category)))
        areas.append(InterestArea(cells))
    return areas


@pytest.mark.parametrize("count", [50, 200])
def test_overlap_pruning(benchmark, count):
    namespace = garage_sale_namespace()
    areas = _random_areas(count)
    query = namespace.area(["USA/OR/Portland", "Furniture"])

    def prune():
        return sum(1 for area in areas if area.overlaps(query))

    overlapping = benchmark(prune)
    emit(
        f"FIG-5  Overlap pruning over {count} interest areas",
        f"areas={count} overlapping={overlapping} selectivity={overlapping / count:.2f}",
    )
    assert 0 < overlapping < count


def test_cover_and_intersection(benchmark):
    areas = _random_areas(100)
    figure5_a = InterestArea.of(
        ["USA/OR/Portland", "Furniture"], ["USA/WA/Vancouver", "Furniture"]
    )

    def relate_all():
        covered = sum(1 for area in areas if figure5_a.covers(area))
        intersections = sum(1 for area in areas if figure5_a.intersection(area))
        return covered, intersections

    covered, intersections = benchmark(relate_all)
    emit(
        "FIG-5  Cover / intersection against area (a)",
        f"covered={covered} non_empty_intersections={intersections} out_of={len(areas)}",
    )
    assert intersections >= covered


def test_urn_codec_throughput(benchmark):
    from repro.namespace import decode_interest_area, encode_interest_area

    areas = _random_areas(100)

    def roundtrip_all():
        return sum(len(decode_interest_area(encode_interest_area(area)).cells) for area in areas)

    total_cells = benchmark(roundtrip_all)
    emit("FIG-5  URN codec", f"areas={len(areas)} total_cells_roundtripped={total_cells}")
    assert total_cells >= len(areas)


if __name__ == "__main__":
    import benchjson

    raise SystemExit(benchjson.run_as_script(__file__))
