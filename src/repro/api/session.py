"""Per-peer sessions: the client-facing handle on one peer of a cluster.

A :class:`Session` wraps one :class:`~repro.peers.peer.QueryPeer` that is
registered on a :class:`~repro.api.cluster.Cluster`'s network.  It is the
supported way to *use* the system, regardless of which transport backend
moves the bytes, and its surface groups into three verbs-of-a-kind:

* **data lifecycle** — ``publish`` (create a collection), ``update``
  (upsert items), ``retract`` (remove items), ``announce`` (intensional
  statements about the data), ``register`` (push the catalog entry that
  advertises it all);
* **querying** — ``query()`` builds, ``submit()`` is the raw-plan fast
  path, both resolving to a future-like
  :class:`~repro.api.handle.QueryHandle`;
* **standing queries** — ``subscribe()`` turns a plan into a
  :class:`~repro.api.subscription.Subscription` whose delta feed the
  lifecycle verbs above drive (``repro.perf.flags.continuous_queries``).
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Sequence

from ..algebra import QueryPlan
from ..algebra.expressions import Expression
from ..catalog import CollectionRef, IntensionalStatement, ServerEntry
from ..mqp import QueryPreferences
from ..namespace import InterestArea
from ..peers.peer import QueryPeer
from ..xmlmodel import XMLElement
from .handle import QueryHandle
from .query import QueryBuilder
from .subscription import Subscription

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from .cluster import Cluster

__all__ = ["Session"]


class Session:
    """A handle on one peer: ``publish(...)``, ``update(...)``, ``query(...)``."""

    def __init__(self, cluster: "Cluster", peer: QueryPeer) -> None:
        self.cluster = cluster
        self.peer = peer

    @property
    def address(self) -> str:
        """The peer's network address."""
        return self.peer.address

    @property
    def online(self) -> bool:
        """Whether the peer currently accepts traffic."""
        return self.peer.online

    # -- data lifecycle (base-server behaviour) ------------------------------ #
    # publish → update → retract mutate the data; announce and register
    # advertise it.  The mutation verbs drive the delta feeds of any
    # standing queries armed over the collection's area.

    def publish(
        self,
        name: str,
        items: Sequence[XMLElement],
        area: InterestArea | None = None,
        urn: str | None = None,
    ) -> CollectionRef:
        """Publish a named collection (optionally under an application URN)."""
        reference = self.peer.publish_collection(name, items, area)
        if urn is not None:
            self.peer.publish_named_resource(urn, name)
        return reference

    def update(
        self,
        name: str,
        items: Sequence[XMLElement],
        key_path: str = "id",
    ) -> tuple[int, int]:
        """Upsert items into a published collection; ``(inserted, updated)``.

        Items are keyed by their ``key_path`` attribute (or child element
        text): a key match replaces the existing item, anything else is
        appended.  With ``flags.continuous_queries`` on, matching armed
        subscriptions receive the ``insert`` / ``update`` / ``retract``
        deltas the mutation implies for *their* predicate.
        """
        return self.peer.update_collection(name, items, key_path=key_path)

    def retract(
        self,
        name: str,
        predicate: "Expression | str | None" = None,
        keys: Sequence[str] | None = None,
        key_path: str = "id",
    ) -> list[XMLElement]:
        """Remove items from a published collection and return them.

        Victims are selected by ``keys`` (matched through ``key_path``) or
        by a predicate (textual form accepted).  Matching armed
        subscriptions receive ``retract`` deltas carrying the removed
        items.
        """
        return self.peer.retract_from_collection(
            name, predicate=predicate, keys=keys, key_path=key_path
        )

    def announce(self, statement: "IntensionalStatement | str") -> None:
        """Adopt an intensional statement (§4.2) announced on registration."""
        if isinstance(statement, str):
            statement = IntensionalStatement.parse(statement)
        self.peer.announce_statement(statement)

    # -- catalog wiring ------------------------------------------------------- #

    def register(self, *targets: "Session | QueryPeer | str") -> None:
        """Push this peer's registration to index / meta-index servers.

        Targets are sessions or addresses; passing a raw
        :class:`~repro.peers.peer.QueryPeer` is a deprecated side door
        around the session surface.
        """
        for target in targets:
            if isinstance(target, QueryPeer):
                warnings.warn(
                    "passing a raw QueryPeer to Session.register is deprecated; "
                    "pass the peer's Session or its address",
                    DeprecationWarning,
                    stacklevel=2,
                )
            self.peer.register_with(_address_of(target))

    def learn_about(self, other: "Session | QueryPeer | ServerEntry") -> None:
        """Record another server's entry locally (out-of-band discovery).

        Accepts a session or a :class:`~repro.catalog.ServerEntry`; passing
        a raw :class:`~repro.peers.peer.QueryPeer` is a deprecated side
        door around the session surface.
        """
        if isinstance(other, ServerEntry):
            self.peer.learn_about(other)
            return
        if isinstance(other, QueryPeer):
            warnings.warn(
                "passing a raw QueryPeer to Session.learn_about is deprecated; "
                "pass the peer's Session or its ServerEntry",
                DeprecationWarning,
                stacklevel=2,
            )
        peer = other.peer if isinstance(other, Session) else other
        self.peer.learn_about(peer.server_entry())

    # -- querying --------------------------------------------------------------- #

    def query(self, plan: QueryPlan | None = None) -> QueryBuilder:
        """Start a fluent query (or adopt a pre-built plan as the body)."""
        return QueryBuilder(self, plan=plan)

    def submit(
        self,
        plan: QueryPlan,
        preferences: QueryPreferences | None = None,
        expected_answers: int | None = None,
        query_id: str | None = None,
    ) -> QueryHandle:
        """Submit a complete :class:`QueryPlan`; the raw-plan fast path."""
        mqp = self.peer.submit_plan(
            plan,
            preferences,
            expected_answers=expected_answers,
            query_id=query_id,
        )
        return QueryHandle(
            self.peer,
            self.cluster.network,
            mqp.query_id,
            expected_answers=expected_answers,
            session=self,
            plan=plan,
        )

    def handle(self, query_id: str, expected_answers: int | None = None) -> QueryHandle:
        """Attach a fresh handle to an already-issued query id.

        A late-attached handle resolves from the *latest* recorded result
        onward; arrivals recorded before attachment are not replayed (the
        peer keeps one result per query, not the arrival history).  Hold on
        to the handle returned at submit time when streamed partials
        matter.
        """
        return QueryHandle(
            self.peer, self.cluster.network, query_id, expected_answers=expected_answers
        )

    # -- standing queries (flags.continuous_queries) ------------------------------ #

    def subscribe(self, query: "QueryBuilder | QueryPlan") -> Subscription:
        """Register a plan as a standing query; deltas flow to this peer.

        Accepts a fluent :class:`~repro.api.query.QueryBuilder` or a
        pre-built plan.  The plan must be subscribable — select/project
        over one interest-area URN — and
        ``repro.perf.flags.continuous_queries`` must be on.  Returns the
        :class:`~repro.api.subscription.Subscription` whose ``deltas()``
        iterator the mutation verbs (:meth:`update` / :meth:`retract` at
        publishing peers) feed.
        """
        plan = query.compile() if isinstance(query, QueryBuilder) else query
        sub_id = self.peer.subscribe_plan(plan)
        return Subscription(self, sub_id)

    # -- lifecycle (churn as API calls) ------------------------------------------ #

    def leave(self) -> None:
        """Depart gracefully: drain work, unregister, go offline."""
        self.peer.leave()

    def crash(self) -> None:
        """Drop off the network without notice (in-RAM state dies)."""
        self.peer.go_offline()

    def rejoin(self) -> None:
        """Come back online and re-propagate the registration (§3.3)."""
        self.peer.go_online()

    def __repr__(self) -> str:
        status = "online" if self.online else "offline"
        return f"Session({self.address!r}, {status})"


def _address_of(target: "Session | QueryPeer | str") -> str:
    if isinstance(target, Session):
        return target.address
    if isinstance(target, QueryPeer):
        return target.address
    return target
