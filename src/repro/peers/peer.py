"""The query peer: one participant that can play any of the paper's roles.

The paper stresses that in a P2P system roles "are not fixed or
pre-assigned; this query's client may well become the next query's server".
:class:`QueryPeer` therefore implements *all* the machinery — publishing
collections (base server), indexing other servers (index / meta-index
server), issuing queries (client) — and a peer simply enables the roles it
wants.  Thin subclasses in :mod:`repro.peers.roles` give the conventional
names used by examples and benchmarks.

Message kinds understood:

``mqp``
    A serialized mutant query plan to process and route onward.
``result`` / ``partial-result``
    A (possibly partial) query result arriving at its target in one frame.
``result-chunk`` / ``result-end``
    The chunked result protocol (``flags.streaming_results``): the
    answering peer pumps the result out as a sequence of small framed
    chunks with per-query sequence numbers, closed by a ``result-end``
    carrying the metadata the single ``result`` frame used to carry.
``cancel-query``
    A query was cancelled at its issuer: tear down open result streams,
    drop the plan if it arrives here, and propagate along the forwarding
    chain.
``register``
    A server announcing itself (entry + optional intensional statements).
``register-ack``
    The index server's acknowledgement, carrying its own entry so the
    registering peer learns about the indexer too.
``delivery-ack``
    The reliable-delivery protocol (``flags.reliable_delivery``): the
    receiver of a transfer-stamped message acknowledges the transfer id,
    letting the sender cancel its retransmission timer.  Unacknowledged
    transfers are retransmitted with exponential backoff until the retry
    budget is exhausted, at which point the sender reroutes (plans),
    tears down (streams), or dead-letters (results) — and records the
    failure so issuers can report per-hop delivery provenance.
``subscribe`` / ``unsubscribe``
    The continuous-query protocol (``flags.continuous_queries``): a
    standing query travels to the index servers covering its area, which
    record it and fan it out to overlapping base servers; each base
    server arms a publish-time matcher
    (:class:`~repro.catalog.matcher.SubscriptionMatcher`).  ``unsubscribe``
    retraces the same fan-out, disarming matchers and cancelling pending
    delta retransmissions at every hop.
``delta-chunk`` / ``delta-ack``
    Incremental results for standing queries: a mutation against an armed
    collection leaves the publisher as a ``delta-chunk`` envelope
    (``insert`` / ``update`` / ``retract``) with a per-subscription
    sequence number and epoch token, riding the same wire path — and the
    same reliable-delivery machinery — as ``result-chunk``.  The
    subscriber releases deltas strictly in sequence and acknowledges
    cumulatively with ``delta-ack`` so the publisher can trim its replay
    log.
``sub-conflict``
    Conflicting-authority detection (the MOAS analogy): a publisher armed
    for a subscription by one authority that receives the same
    subscription from a *different* authority keeps the original arming
    (never double-delivers) and surfaces the overlap to the subscriber.
``recon-request`` / ``recon-reply``
    Replica reconciliation (``flags.catalog_tier``): a replica rejoining
    its group asks the surviving members for the catalog entries covering
    its shard; the reply is merged through
    :func:`repro.catalogtier.reconcile_authoritative`, which adopts what
    the rejoiner missed and surfaces conflicting authority as
    ``AuthorityConflict``-shaped records instead of double-answering.
"""

from __future__ import annotations

import warnings
from collections import Counter
from dataclasses import dataclass, field
from itertools import islice
from typing import Callable, Iterator, Sequence

from ..algebra import QueryPlan
from ..algebra.expressions import Expression, parse_predicate
from ..algebra.serialization import parse_plan, serialize_plan
from ..catalog import (
    Catalog,
    CollectionRef,
    IntensionalStatement,
    NamedResourceEntry,
    RoutingCache,
    ServerEntry,
    ServerRole,
    SubscriptionMatcher,
    SubscriptionShape,
    subscribable_shape,
)
from ..catalogtier import AnswerCache, ShardMap, reconcile_authoritative
from ..errors import PeerError, PeerOffline
from ..mqp import (
    MQPProcessor,
    MutantQueryPlan,
    ProcessingAction,
    ProcessingResult,
    ProvenanceAction,
    QueryPreferences,
    RetryPolicy,
)
from ..namespace import InterestArea, MultiHierarchicNamespace
from ..network import Event, Message, NetworkNode
from ..perf import flags
from ..xmlmodel import XMLElement, parse_xml, serialize_xml
from .subscriptions import (
    ArmedSubscription,
    DeltaRecord,
    PublisherFeed,
    SubscriberState,
    epoch_counter,
)

__all__ = ["RegistrationPayload", "QueryResult", "QueryPeer", "DeltaRecord"]


@dataclass
class RegistrationPayload:
    """What a server sends when registering with an index / meta-index server."""

    entry: ServerEntry
    statements: list[IntensionalStatement] = field(default_factory=list)
    named_resources: list[NamedResourceEntry] = field(default_factory=list)


@dataclass
class QueryResult:
    """What a client records when a result (or partial result) arrives."""

    query_id: str
    items: list[XMLElement]
    partial: bool = False
    received_at: float = 0.0
    provenance_hops: int = 0
    max_staleness_minutes: float = 0.0

    @property
    def count(self) -> int:
        """Number of result items."""
        return len(self.items)


@dataclass
class _ResultStream:
    """Producer-side state of one chunked result delivery."""

    query_id: str
    target: str
    iterator: Iterator[XMLElement]
    partial: bool
    hops: int
    staleness: float
    stream: str
    seq: int = 0
    sent_items: int = 0


def _item_key(item: XMLElement, key_path: str) -> str | None:
    """An item's mutation key: the ``key_path`` attribute or child text.

    Data sources differ on where they carry identity — marketplace items
    stamp an ``id`` attribute, document-style sources a child element —
    so the upsert/retract verbs accept either spelling.
    """
    value = item.attributes.get(key_path)
    if value is not None:
        return value
    return item.child_text(key_path)


def _insert_capped(
    entries: dict,
    key: object,
    value: object,
    cap: int,
    evicted: Callable[[object], None] | None = None,
) -> None:
    """(Re)insert into an insertion-ordered dict and bound its size.

    Re-inserting refreshes recency, so actively used keys are never the
    eviction victim; past ``cap`` the oldest entries go (``evicted`` is
    called with each evicted key).  The shared idiom for every per-query
    bookkeeping map a long-running relay must keep bounded.
    """
    entries.pop(key, None)
    entries[key] = value
    while len(entries) > cap:
        oldest = next(iter(entries))
        del entries[oldest]
        if evicted is not None:
            evicted(oldest)


@dataclass
class _PendingTransfer:
    """Sender-side state of one unacknowledged reliable transfer.

    Lives in ``_pending_transfers`` from first transmission until the
    delivery ack arrives (or the retry budget is exhausted).  ``attempts``
    counts retransmissions already sent — the original send is attempt 0 —
    and ``timer`` is the cancellable retransmission event armed by
    :meth:`QueryPeer._transmit`.
    """

    transfer: str
    recipient: str
    kind: str
    payload: object
    size_bytes: int
    query_id: str
    attempts: int = 0
    timer: Event | None = None
    last_message: Message | None = None


class _DeadLetterBuffer:
    """Capped, insertion-ordered record of undeliverable messages.

    A long-running relay under churn or faults accumulates dead letters
    without bound; the buffer retains only the most recent ``cap`` of them
    (the :func:`_insert_capped` idiom) while ``total`` and the per-kind
    tallies keep exact counts, so the scenario reports stay accurate even
    after eviction.  ``len()`` reports the total, not the retained window —
    existing accounting (and byte-identity of non-evicting runs) depends
    on that.
    """

    def __init__(self, cap: int = 1024) -> None:
        self.cap = cap
        self.total = 0
        self.by_kind: Counter[str] = Counter()
        self._entries: dict[int, Message] = {}

    def append(self, message: Message) -> None:
        self.total += 1
        self.by_kind[message.kind] += 1
        # Keyed by object identity: retained entries hold their references,
        # so ids stay unique for exactly as long as they are keys.
        _insert_capped(self._entries, id(message), message, self.cap)

    def __len__(self) -> int:
        return self.total

    def __bool__(self) -> bool:
        return self.total > 0

    def __iter__(self) -> Iterator[Message]:
        return iter(self._entries.values())

    def __getitem__(self, index: int) -> Message:
        return list(self._entries.values())[index]


@dataclass
class _ChunkAssembly:
    """Receiver-side reassembly of one chunked delivery.

    Chunks are individual messages, so the network may deliver them out of
    order; they are released to the arrival buffer (and the chunk watchers)
    strictly in sequence, and a ``result-end`` that overtakes its chunks is
    stashed until the sequence is complete.  Each assembly owns its own
    released-item list, so two deliveries for the same query — even
    interleaved — reassemble independently.
    """

    stream: str
    next_seq: int = 0
    items: list[XMLElement] = field(default_factory=list)  # released, in order
    pending: dict[int, list[XMLElement]] = field(default_factory=dict)
    end: dict | None = None  # a result-end envelope that arrived early


class QueryPeer(NetworkNode):
    """A peer that can serve data, maintain indexes, and issue queries."""

    def __init__(
        self,
        address: str,
        namespace: MultiHierarchicNamespace,
        roles: Sequence[ServerRole] = (ServerRole.BASE,),
        interest_area: InterestArea | None = None,
        authoritative: bool = False,
    ) -> None:
        super().__init__(address)
        self.namespace = namespace
        self.roles = set(roles)
        self.interest_area = interest_area or namespace.top_area()
        self.authoritative = authoritative
        self.catalog = Catalog(owner=address)
        self.cache = RoutingCache()
        self.collections: dict[str, list[XMLElement]] = {}
        self.collection_areas: dict[str, InterestArea] = {}
        self.processor = MQPProcessor(
            address,
            self.catalog,
            namespace,
            collections=self.collections,
            cache=self.cache,
        )
        self.results: dict[str, QueryResult] = {}
        self._result_watchers: dict[str, list[Callable[[QueryResult], None]]] = {}
        self._terminal_watchers: dict[str, list[Callable[[QueryResult], None]]] = {}
        self.statements: list[IntensionalStatement] = []
        self.plans_processed = 0
        self.plans_forwarded = 0
        self.plans_stuck = 0
        # -- chunked result delivery + cancellation -------------------------- #
        self.result_chunk_items = 64
        # Insertion-ordered and capped (see _remember_cancelled /
        # _remember_forward): per-query bookkeeping on a long-running relay
        # must not grow without bound.
        self.cancelled_queries: dict[str, None] = {}
        self._cancel_notified: dict[tuple[str, str], None] = {}
        self.cancel_memory = 4096
        self.forward_memory = 4096
        self.assembly_memory = 1024
        self.plans_cancelled = 0
        self._open_streams: dict[str, _ResultStream] = {}
        self._stream_counter = 0
        self._chunk_buffers: dict[str, list[XMLElement]] = {}
        self._chunk_assemblies: dict[tuple[str, str], _ChunkAssembly] = {}
        self._chunk_watchers: dict[str, list[Callable[[list[XMLElement], str], None]]] = {}
        self._forwarded_to: dict[str, str] = {}
        # -- churn awareness ------------------------------------------------ #
        self.registration_targets: list[str] = []
        self.suspected_dead: set[str] = set()
        self.plans_rerouted = 0
        self.plans_lost_in_crash = 0
        self.dead_letter_memory = 1024
        self.dead_letters = _DeadLetterBuffer(self.dead_letter_memory)
        # -- reliable delivery (flags.reliable_delivery) --------------------- #
        self.retry_policy = RetryPolicy()
        self.dedupe_memory = 4096
        self.failure_memory = 1024
        self._transfer_counter = 0
        self._pending_transfers: dict[str, _PendingTransfer] = {}
        self._seen_transfers: dict[str, None] = {}
        self.retries_sent = 0
        self.transfers_failed = 0
        self.duplicates_dropped = 0
        self.acks_sent = 0
        self.delivery_failures: dict[str, list[dict]] = {}
        # -- continuous queries (flags.continuous_queries) -------------------- #
        self.matcher = SubscriptionMatcher()
        self.armed_subscriptions: dict[str, ArmedSubscription] = {}
        # Authority-side store: sub_id -> {"envelope": wire dict, "shape": parsed}.
        self.subscription_registry: dict[str, dict] = {}
        self.subscription_memory = 1024
        self.delta_log_memory = 256
        self.max_subscribe_hops = 4
        self.my_subscriptions: dict[str, SubscriberState] = {}
        self._delta_watchers: dict[str, list[Callable[[DeltaRecord], None]]] = {}
        self._conflict_notified: set[tuple[str, str]] = set()
        self._sub_counter = 0
        self._epoch_counter = 0
        self.deltas_published = 0
        self.deltas_delivered = 0
        self.delta_duplicates = 0
        self.delta_gaps = 0
        self.authority_conflicts = 0
        self.resubscribes = 0
        # -- sharded catalog tier (flags.catalog_tier) ------------------------ #
        self.shard_map: ShardMap | None = None
        self.replica_peers: list[str] = []
        self.reconciliations = 0
        self.recon_entries_adopted = 0
        self.recon_conflicts: list[dict] = []
        self.tier_failovers = 0
        # -- batched processing --------------------------------------------- #
        self.batch_window_ms: float | None = None
        self.batches_processed = 0
        self._mqp_buffer: list[str] = []
        self._flush_scheduled = False

    # ------------------------------------------------------------------ #
    # Base-server behaviour: publishing data
    # ------------------------------------------------------------------ #

    def publish_collection(
        self,
        name: str,
        items: Sequence[XMLElement],
        area: InterestArea | None = None,
    ) -> CollectionRef:
        """Store a named collection locally and describe it in the catalog."""
        path = name if name.startswith("/") else f"/{name}"
        self.collections[path] = list(items)
        self.collection_areas[path] = area or self.interest_area
        reference = CollectionRef(url=self.address, path=path, name=name, cardinality=len(items))
        self.catalog.register_server(self.server_entry())
        return reference

    def collection_items(self, name: str) -> list[XMLElement]:
        """Return the items of a local collection."""
        path = name if name.startswith("/") else f"/{name}"
        try:
            return self.collections[path]
        except KeyError:
            raise PeerError(f"{self.address}: no local collection {name!r}") from None

    def update_collection(
        self,
        name: str,
        items: Sequence[XMLElement],
        key_path: str = "id",
    ) -> tuple[int, int]:
        """Upsert ``items`` into a local collection, keyed by ``key_path``.

        The key is the item's ``key_path`` attribute, or — when the
        attribute is absent — the text of its ``key_path`` child element.
        An incoming item whose key matches an existing item replaces it;
        items with no match (or no key) are appended.  Returns the
        ``(inserted, updated)`` counts.  With ``flags.continuous_queries``
        on, matching armed subscriptions receive ``insert`` / ``update``
        deltas — and an update that moves an item across a subscription's
        predicate boundary is delivered as the ``insert`` or ``retract``
        the subscriber actually observes.
        """
        path = name if name.startswith("/") else f"/{name}"
        existing = self.collections.get(path)
        if existing is None:
            raise PeerError(f"{self.address}: no local collection {name!r}")
        positions: dict[str, int] = {}
        for index, item in enumerate(existing):
            key = _item_key(item, key_path)
            if key is not None and key not in positions:
                positions[key] = index
        inserts: list[XMLElement] = []
        updates: list[tuple[XMLElement, XMLElement]] = []
        for item in items:
            key = _item_key(item, key_path)
            position = positions.get(key) if key is not None else None
            if position is None:
                existing.append(item)
                inserts.append(item)
                if key is not None:
                    positions[key] = len(existing) - 1
            else:
                updates.append((existing[position], item))
                existing[position] = item
        self.catalog.register_server(self.server_entry())
        self._emit_mutation(path, inserts=inserts, updates=updates)
        return len(inserts), len(updates)

    def retract_from_collection(
        self,
        name: str,
        predicate: Expression | str | None = None,
        keys: Sequence[str] | None = None,
        key_path: str = "id",
    ) -> list[XMLElement]:
        """Remove items from a local collection and return them.

        Selects victims by ``keys`` (values reached through ``key_path``)
        or by a predicate (an :class:`Expression` or its text form).  With
        ``flags.continuous_queries`` on, matching armed subscriptions
        receive ``retract`` deltas carrying the removed items.
        """
        path = name if name.startswith("/") else f"/{name}"
        items = self.collections.get(path)
        if items is None:
            raise PeerError(f"{self.address}: no local collection {name!r}")
        if keys is not None:
            wanted = set(keys)
            removed = [item for item in items if _item_key(item, key_path) in wanted]
        elif predicate is not None:
            expression = (
                parse_predicate(predicate) if isinstance(predicate, str) else predicate
            )
            removed = [item for item in items if expression.matches(item)]
        else:
            raise PeerError("retract_from_collection needs a predicate or keys")
        if not removed:
            return []
        victims = {id(item) for item in removed}
        self.collections[path] = [item for item in items if id(item) not in victims]
        self.catalog.register_server(self.server_entry())
        self._emit_mutation(path, retracts=removed)
        return removed

    def publish_named_resource(self, urn_name: str, collection_name: str) -> None:
        """Expose a local collection under an application URN name."""
        path = collection_name if collection_name.startswith("/") else f"/{collection_name}"
        if path not in self.collections:
            raise PeerError(f"{self.address}: no local collection {collection_name!r}")
        entry = NamedResourceEntry(
            name=urn_name,
            collections=[CollectionRef(self.address, path, collection_name)],
            area=self.collection_areas.get(path),
        )
        self.catalog.register_named_resource(entry)

    def announce_statement(self, statement: IntensionalStatement) -> None:
        """Adopt an intensional statement this peer will announce on registration.

        Deduplicated by the statement's structural identity (its holdings
        carry server and collection): registration replay through two
        replicas of one group delivers the same announcement twice, and a
        double-counted statement would double-bind its alternatives.
        """
        if statement not in self.statements:
            self.statements.append(statement)
        self.catalog.register_statement(statement)

    def server_entry(self) -> ServerEntry:
        """The catalog entry describing this peer."""
        role = self._primary_role()
        collections = [
            CollectionRef(self.address, path, path.lstrip("/"), len(items))
            for path, items in sorted(self.collections.items())
        ]
        return ServerEntry(
            address=self.address,
            role=role,
            area=self.interest_area,
            authoritative=self.authoritative,
            collections=collections if role is ServerRole.BASE else [],
        )

    def _primary_role(self) -> ServerRole:
        for role in (ServerRole.META_INDEX, ServerRole.INDEX, ServerRole.BASE, ServerRole.CLIENT):
            if role in self.roles:
                return role
        return ServerRole.CLIENT

    # ------------------------------------------------------------------ #
    # Registration (§3.3): joining the distributed catalog
    # ------------------------------------------------------------------ #

    def register_with(self, server_address: str) -> None:
        """Push this peer's existence to an index / meta-index server."""
        payload = RegistrationPayload(
            entry=self.server_entry(),
            statements=list(self.statements),
            named_resources=list(self.catalog.named_resources.values()),
        )
        if server_address not in self.registration_targets:
            self.registration_targets.append(server_address)
        self.send(server_address, "register", payload, size_bytes=512)

    def learn_about(self, entry: ServerEntry) -> None:
        """Record another server in the local catalog (out-of-band discovery)."""
        self.catalog.register_server(entry)
        if entry.role in (ServerRole.INDEX, ServerRole.META_INDEX):
            self.cache.remember(entry.area, entry.address, entry.role.value)

    # ------------------------------------------------------------------ #
    # Sharded catalog tier (flags.catalog_tier)
    # ------------------------------------------------------------------ #

    def join_catalog_tier(self, shard_map: ShardMap) -> None:
        """Adopt the cluster's shard map (and this peer's replica group).

        Every peer gets the map — it is what makes registrations and plan
        routing shard-aware — while replicas (members of some group)
        additionally learn their siblings for rejoin reconciliation and
        attach the hot-area answer cache to their catalog.
        """
        self.shard_map = shard_map
        self.processor.shard_map = shard_map
        group = shard_map.group_of(self.address)
        if group is not None:
            self.replica_peers = group.siblings_of(self.address)
            if self.catalog.answer_cache is None:
                self.catalog.attach_answer_cache(AnswerCache())

    def _same_replica_group(self, first: str, second: str) -> bool:
        if self.shard_map is None:
            return False
        group = self.shard_map.group_of(first)
        other = self.shard_map.group_of(second)
        return group is not None and other is not None and group.shard_id == other.shard_id

    def _note_tier_failover(self, dead: str) -> None:
        """Count a detected replica death: routing falls to a group sibling."""
        if (
            flags.catalog_tier
            and self.shard_map is not None
            and self.shard_map.group_of(dead) is not None
        ):
            self.tier_failovers += 1

    def _request_reconciliation(self) -> None:
        """Ask surviving group members for the shard's authoritative view."""
        for sibling in self.replica_peers:
            if sibling in self.suspected_dead:
                continue
            self.send(
                sibling,
                "recon-request",
                {"requester": self.address, "area": self.interest_area},
                size_bytes=128,
            )

    def _handle_recon_request(self, message: Message) -> None:
        if not flags.catalog_tier:
            return  # a straggler from a run that had the flag on
        area: InterestArea = message.payload["area"]
        entries = self.catalog.servers_overlapping(area)
        statements = [
            statement
            for statement in self.catalog.statements
            if statement.lhs.area.overlaps(area)
        ]
        self.send(
            message.sender,
            "recon-reply",
            {"source": self.address, "entries": entries, "statements": statements},
            size_bytes=64 + 96 * len(entries),
        )

    def _handle_recon_reply(self, message: Message) -> None:
        if not flags.catalog_tier:
            return
        payload: dict = message.payload
        result = reconcile_authoritative(
            self.catalog,
            payload["entries"],
            rejoiner=self.address,
            source=str(payload["source"]),
            same_group=self._same_replica_group,
            now=self.now,
        )
        self.reconciliations += 1
        self.recon_entries_adopted += result.adopted
        for conflict in result.conflicts:
            # The sub-conflict machinery, reused: one surfaced record per
            # contested address, counted on the same authority_conflicts
            # tally the subscription layer reports.
            key = (str(conflict["sub"]), str(conflict["publisher"]))
            if key in self._conflict_notified:
                continue
            self._conflict_notified.add(key)
            self.authority_conflicts += 1
            self.recon_conflicts.append(conflict)
        for statement in payload.get("statements", ()):
            # register_statement dedupes structurally, so replies from two
            # survivors can never double-count a statement.
            self.catalog.register_statement(statement)

    # ------------------------------------------------------------------ #
    # Churn: leaving, crashing, and rejoining
    # ------------------------------------------------------------------ #

    def leave(self) -> None:
        """Depart gracefully: drain pending work, unregister, go offline.

        Plans buffered for the batch window are flushed first — a graceful
        leaver finishes the work it already accepted (only a *crash* loses
        buffered plans).  The unregister messages are queued before the
        peer goes offline, so indexers drop this peer's entries promptly
        instead of discovering the departure through failed forwards.
        """
        if self.network is not None:
            self._flush_mqp_batch()
            for target in self.registration_targets:
                self.send(target, "unregister", self.address, size_bytes=64)
        self.go_offline(graceful=True)

    def go_offline(self, graceful: bool = False) -> None:
        """Crash: in-RAM state dies with the process.

        Plans accepted into the batch buffer but not yet processed are
        lost here (and counted, so recall degradation under crash churn
        stays attributable).  Graceful departures call :meth:`leave`,
        which drains the buffer first and lets real transports flush the
        goodbye traffic before recycling the peer's connections.
        """
        self.plans_lost_in_crash += len(self._mqp_buffer)
        self._mqp_buffer.clear()
        for query_id in list(self._open_streams):
            self._teardown_stream(query_id)
        # Armed matcher state is in-RAM: a crashed publisher loses it and is
        # re-armed from an authority's registry when it registers again on
        # rejoin (with a fresh epoch).  The subscriber-side intent
        # (my_subscriptions) survives like registration_targets, so a
        # rejoining subscriber can replay from its last released sequence.
        self.armed_subscriptions.clear()
        self.matcher = SubscriptionMatcher()
        self._conflict_notified.clear()
        super().go_offline(graceful=graceful)

    def go_online(self) -> None:
        """Rejoin after an outage and re-propagate the registration (§3.3).

        The peer's collections and statements survived the outage, but the
        indexers may have pruned its entries after failed forwards — so
        every registration is pushed again over the network.
        """
        super().go_online()
        if self.network is not None:
            for target in list(self.registration_targets):
                self.register_with(target)
            if flags.continuous_queries:
                for sub_id in list(self.my_subscriptions):
                    self.resubscribe(sub_id)
            if flags.catalog_tier and self.replica_peers:
                # The group kept registering and pruning while this replica
                # was down: reconcile the authoritative set before serving.
                self._request_reconciliation()

    # ------------------------------------------------------------------ #
    # Client behaviour: issuing queries and receiving results
    # ------------------------------------------------------------------ #

    def submit_plan(
        self,
        plan: QueryPlan,
        preferences: QueryPreferences | None = None,
        expected_answers: int | None = None,
        query_id: str | None = None,
    ) -> MutantQueryPlan:
        """Create an MQP for ``plan`` and start processing it at this peer.

        This is the supported issue path (:class:`repro.api.Session` wraps
        it).  An offline peer cannot originate queries — it could neither
        forward the plan nor receive the answer — so issuing from one fails
        loudly instead of silently producing no result.
        """
        self._require_network()
        if not self.online:
            raise PeerOffline(
                f"{self.address} is offline and cannot issue queries"
            )
        mqp = MutantQueryPlan(
            plan=plan.copy(),
            preferences=preferences or QueryPreferences(),
            issued_at=self.now,
        )
        if query_id is not None:
            mqp.query_id = query_id
        trace = self.network.metrics.trace(mqp.query_id)  # type: ignore[union-attr]
        trace.issued_at = self.now
        trace.expected_answers = expected_answers
        self._process_and_act(mqp)
        return mqp

    def issue_query(
        self,
        plan: QueryPlan,
        preferences: QueryPreferences | None = None,
        expected_answers: int | None = None,
        query_id: str | None = None,
    ) -> MutantQueryPlan:
        """Deprecated alias of :meth:`submit_plan`.

        New code should go through :class:`repro.api.Session` (or call
        :meth:`submit_plan` directly when working at the peer layer).
        """
        warnings.warn(
            "QueryPeer.issue_query is deprecated; use repro.api.Session.query() "
            "(or QueryPeer.submit_plan at the peer layer)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.submit_plan(
            plan, preferences, expected_answers=expected_answers, query_id=query_id
        )

    def result_for(self, query_id: str) -> QueryResult | None:
        """Deprecated: return the recorded result for a query, if any.

        New code should hold on to the :class:`repro.api.QueryHandle`
        returned at issue time and call ``handle.result(...)``, which waits
        event-driven and raises instead of returning ``None``.
        """
        warnings.warn(
            "QueryPeer.result_for is deprecated; use the repro.api.QueryHandle "
            "returned by Session.query()/Session.submit()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.results.get(query_id)

    # -- result watching (how repro.api.QueryHandle completes) ---------------- #

    def watch_results(self, query_id: str, callback: Callable[[QueryResult], None]) -> None:
        """Invoke ``callback`` for every result recorded under ``query_id``.

        If a result is already recorded (delivery beat the watcher), the
        callback fires immediately — registration can never miss the
        completion it is waiting for.  Watchers of an already-final query
        are not retained (a final result is terminal), and a query's
        watcher list is dropped the moment its final result is recorded.
        Watchers of a query that never records a final result (the plan
        died en route, or only partials arrived) stay registered until
        :meth:`unwatch_results` — :class:`repro.api.QueryHandle` calls it
        from its terminal paths (``close()``), so long-running peers do
        not accumulate entries for dead queries.
        """
        existing = self.results.get(query_id)
        if existing is not None and not existing.partial:
            callback(existing)  # terminal: replay without registering
            return
        self._result_watchers.setdefault(query_id, []).append(callback)
        if existing is not None:
            callback(existing)

    def unwatch_results(
        self, query_id: str, callback: Callable[[QueryResult], None] | None = None
    ) -> None:
        """Drop watchers for ``query_id`` — all of them, or one callback.

        Safe to call from inside a watcher callback: dispatch walks a
        snapshot but honours removals, so a watcher unregistered mid-flight
        (itself or a sibling) does not fire afterwards, and the remaining
        siblings are never skipped.  ``_terminal_watchers`` keeps the list
        of a final result addressable while its dispatch is running, so
        unwatching during the terminal notification works too.
        """
        if callback is None:
            self._result_watchers.pop(query_id, None)
            terminal = self._terminal_watchers.get(query_id)
            if terminal is not None:
                terminal.clear()
            return
        for registry in (self._result_watchers, self._terminal_watchers):
            watchers = registry.get(query_id)
            if watchers is None:
                continue
            try:
                watchers.remove(callback)
            except ValueError:
                continue
            if not watchers and registry is self._result_watchers:
                registry.pop(query_id, None)

    def _dispatch_result(self, query_id: str, result: QueryResult) -> None:
        """Notify the query's watchers, tolerating reentrant registry edits.

        A watcher may unwatch itself, unwatch a sibling, register new
        watchers, or issue a brand-new query (whose own delivery may recurse
        into this method for a different query id) — none of which may
        corrupt the registry or skip a still-registered sibling.
        """
        if result.partial:
            live = self._result_watchers.get(query_id)
            if not live:
                # Nothing registered for this partial.  Leave any terminal
                # holder alone: a reentrant partial dispatch (from inside a
                # watcher running under the final dispatch below) must not
                # release the list the outer loop is still walking.
                return
        else:
            # A final result is terminal: release the registry entry first,
            # but keep the list reachable for unwatch calls mid-dispatch.
            live = self._result_watchers.pop(query_id, None)
            if live is not None:
                self._terminal_watchers[query_id] = live
            if not live:
                self._terminal_watchers.pop(query_id, None)
                return
        try:
            for watcher in list(live):
                holder = (
                    self._result_watchers.get(query_id)
                    if result.partial
                    else self._terminal_watchers.get(query_id)
                )
                if holder is None or watcher not in holder:
                    continue  # unregistered while dispatch was running
                watcher(result)
        finally:
            self._terminal_watchers.pop(query_id, None)

    # -- chunk watching (how QueryHandle.items() streams) --------------------- #

    def watch_chunks(
        self, query_id: str, callback: Callable[[list[XMLElement], str], None]
    ) -> None:
        """Invoke ``callback(items, stream)`` per batch of arrived chunk items.

        The stream token identifies the delivery the batch belongs to; a
        token change means a new delivery superseded the previous one.
        """
        self._chunk_watchers.setdefault(query_id, []).append(callback)

    def unwatch_chunks(
        self, query_id: str, callback: Callable[[list[XMLElement], str], None] | None = None
    ) -> None:
        """Drop chunk watchers for ``query_id`` — all of them, or one."""
        if callback is None:
            self._chunk_watchers.pop(query_id, None)
            return
        watchers = self._chunk_watchers.get(query_id)
        if watchers is None:
            return
        try:
            watchers.remove(callback)
        except ValueError:
            pass
        if not watchers:
            self._chunk_watchers.pop(query_id, None)

    def chunk_items(self, query_id: str) -> list[XMLElement]:
        """Every chunk item received so far for ``query_id`` (arrival order)."""
        return list(self._chunk_buffers.get(query_id, ()))

    # ------------------------------------------------------------------ #
    # Continuous queries (flags.continuous_queries)
    # ------------------------------------------------------------------ #

    def subscribe_plan(self, plan: QueryPlan, sub_id: str | None = None) -> str:
        """Register ``plan`` as a standing query and return its id.

        The plan must be subscribable (select/project over one
        interest-area URN — :func:`~repro.catalog.matcher.subscribable_shape`
        raises otherwise).  The subscribe envelope travels to the
        authoritative index servers covering the area, which fan it out to
        the base servers actually holding overlapping data; deltas then
        flow directly publisher → subscriber.
        """
        self._require_network()
        if not flags.continuous_queries:
            raise PeerError(
                "continuous queries are disabled (enable flags.continuous_queries)"
            )
        if not self.online:
            raise PeerOffline(f"{self.address} is offline and cannot subscribe")
        subscribable_shape(plan)  # validate before anything is registered
        if sub_id is None:
            self._sub_counter += 1
            sub_id = f"{self.address}#sub{self._sub_counter}"
        state = SubscriberState(sub_id=sub_id, document=serialize_plan(plan))
        self.my_subscriptions[sub_id] = state
        self._send_subscribe(state)
        return sub_id

    def resubscribe(self, sub_id: str) -> None:
        """Re-send a subscription with resume tokens (after churn).

        A rejoining subscriber calls this (``go_online`` does it
        automatically) so every publisher replays from the last sequence
        number this peer released — no gaps, no duplicates.
        """
        state = self.my_subscriptions.get(sub_id)
        if state is None:
            raise PeerError(f"{self.address}: unknown subscription {sub_id!r}")
        self.resubscribes += 1
        self._send_subscribe(state)

    def unsubscribe(self, sub_id: str) -> None:
        """Tear the subscription down at every hop.  Idempotent.

        Mirrors :meth:`cancel_query`'s upstream propagation: the
        unsubscribe notice retraces the subscribe fan-out (authorities
        drop their registry entries and forward; publishers disarm their
        matchers and cancel pending delta retransmissions).
        """
        state = self.my_subscriptions.pop(sub_id, None)
        if state is None:
            return
        state.active = False
        self._delta_watchers.pop(sub_id, None)
        self._cancel_sub_transfers(sub_id)
        if self.network is None or not self.online:
            return
        for target in sorted(set(state.targets) | set(state.feeds)):
            self._send_query_traffic(
                target, "unsubscribe", {"sub": sub_id, "hops": 0}, 64, query_id=sub_id
            )

    def subscription_state(self, sub_id: str) -> SubscriberState | None:
        """The subscriber-side state for ``sub_id`` (``None`` when unknown)."""
        return self.my_subscriptions.get(sub_id)

    # -- delta watching (how repro.api.Subscription streams) ------------------- #

    def watch_deltas(self, sub_id: str, callback: Callable[[DeltaRecord], None]) -> None:
        """Invoke ``callback`` for every delta released under ``sub_id``."""
        self._delta_watchers.setdefault(sub_id, []).append(callback)

    def unwatch_deltas(
        self, sub_id: str, callback: Callable[[DeltaRecord], None] | None = None
    ) -> None:
        """Drop delta watchers for ``sub_id`` — all of them, or one."""
        if callback is None:
            self._delta_watchers.pop(sub_id, None)
            return
        watchers = self._delta_watchers.get(sub_id)
        if watchers is None:
            return
        try:
            watchers.remove(callback)
        except ValueError:
            pass
        if not watchers:
            self._delta_watchers.pop(sub_id, None)

    # -- subscriber side ------------------------------------------------------- #

    def _send_subscribe(self, state: SubscriberState) -> None:
        shape = subscribable_shape(parse_plan(state.document))
        targets = [
            entry.address
            for entry in self.catalog.authoritative_servers(shape.area)
            if entry.address != self.address
        ]
        if not targets:
            targets = [
                entry.address
                for entry in self.catalog.servers_overlapping(
                    shape.area, roles=(ServerRole.INDEX, ServerRole.META_INDEX)
                )
                if entry.address != self.address
            ]
        holds_data = self._holds_overlap(shape.area)
        if not targets and not holds_data:
            raise PeerError(
                f"{self.address}: no index server known for area {shape.area}"
            )
        resume = {
            publisher: [feed.epoch, feed.next_seq - 1]
            for publisher, feed in state.feeds.items()
        }
        envelope = {
            "document": state.document,
            "sub": state.sub_id,
            "subscriber": self.address,
            "authority": "",
            "resume": resume,
            "hops": 0,
        }
        state.targets = list(targets)
        for target in targets:
            self._send_query_traffic(
                target,
                "subscribe",
                dict(envelope),
                len(state.document),
                query_id=state.sub_id,
            )
        if holds_data:
            # Self-subscription: this peer's own collections feed the query.
            self._arm_subscription(state.sub_id, self.address, shape, "", resume)

    def _handle_delta_chunk(self, message: Message) -> None:
        envelope: dict = message.payload
        sub_id = envelope["sub"]
        publisher = str(envelope.get("publisher", message.sender))
        state = self.my_subscriptions.get(sub_id)
        if state is None or not state.active:
            # A straggler feed for a dead subscription: tell the publisher
            # to tear down — once, not once per frame already in flight
            # (the same notify-once idiom as cancelled-query chunks).
            if (sub_id, publisher) not in self._cancel_notified:
                _insert_capped(
                    self._cancel_notified, (sub_id, publisher), None, self.cancel_memory
                )
                self.send(publisher, "unsubscribe", {"sub": sub_id, "hops": 0}, size_bytes=64)
            return
        epoch = str(envelope["epoch"])
        seq = int(envelope["seq"])
        feed = state.feeds.get(publisher)
        if feed is None or feed.epoch != epoch:
            if feed is not None and epoch_counter(epoch) <= epoch_counter(feed.epoch):
                return  # a stale retransmit from before the publisher re-armed
            feed = PublisherFeed(epoch=epoch)
            state.feeds[publisher] = feed
        if seq < feed.next_seq or seq in feed.pending:
            # Already released (or already held): a fault-cloned frame or a
            # replay overlapping the resume point.  Re-acknowledge so the
            # publisher trims its log even if the original ack was lost.
            self.delta_duplicates += 1
            self.send(
                publisher,
                "delta-ack",
                {"sub": sub_id, "seq": feed.next_seq - 1},
                size_bytes=32,
            )
            return
        feed.pending[seq] = envelope
        while feed.next_seq in feed.pending:
            held = feed.pending.pop(feed.next_seq)
            record = DeltaRecord(
                sub_id=sub_id,
                kind=str(held.get("kind", "insert")),
                items=list(parse_xml(held["document"]).children),
                publisher=publisher,
                epoch=epoch,
                seq=feed.next_seq,
                received_at=self.now,
            )
            feed.next_seq += 1
            state.deltas.append(record)
            self.deltas_delivered += 1
            watchers = self._delta_watchers.get(sub_id)
            if watchers:
                for watcher in list(watchers):
                    if watcher in (self._delta_watchers.get(sub_id) or ()):
                        watcher(record)
        self.send(
            publisher,
            "delta-ack",
            {"sub": sub_id, "seq": feed.next_seq - 1},
            size_bytes=32,
        )

    def _handle_sub_conflict(self, message: Message) -> None:
        envelope: dict = message.payload
        state = self.my_subscriptions.get(envelope["sub"])
        if state is not None:
            state.conflicts.append(dict(envelope))

    # -- authority side -------------------------------------------------------- #

    def _handle_subscribe(self, message: Message) -> None:
        if not flags.continuous_queries:
            return  # a straggler from a run that had the flag on
        envelope: dict = message.payload
        sub_id = str(envelope["sub"])
        subscriber = str(envelope["subscriber"])
        hops = int(envelope.get("hops", 0))
        shape = subscribable_shape(parse_plan(envelope["document"]))
        if subscriber != self.address and self._holds_overlap(shape.area):
            self._arm_subscription(
                sub_id,
                subscriber,
                shape,
                str(envelope.get("authority", "")),
                dict(envelope.get("resume") or {}),
            )
        if ({ServerRole.INDEX, ServerRole.META_INDEX} & self.roles
                and hops < self.max_subscribe_hops):
            stored = dict(envelope)
            stored["hops"] = hops
            _insert_capped(
                self.subscription_registry,
                sub_id,
                {"envelope": stored, "shape": shape},
                self.subscription_memory,
            )
            self._forward_subscription(stored, shape)

    def _forward_subscription(self, envelope: dict, shape: SubscriptionShape) -> None:
        """Fan a subscribe envelope out towards the data it watches.

        An authoritative indexer stamps itself as the subscription's
        authority; base servers receiving the same subscription from two
        *different* authorities raise the MOAS-style conflict instead of
        arming twice.
        """
        forwarded = dict(envelope)
        if self.authoritative or not forwarded.get("authority"):
            forwarded["authority"] = self.address
        forwarded["hops"] = int(envelope.get("hops", 0)) + 1
        subscriber = str(envelope["subscriber"])
        for address in self._subscription_fanout(shape.area, subscriber):
            self._send_query_traffic(
                address,
                "subscribe",
                dict(forwarded),
                len(str(envelope["document"])),
                query_id=str(envelope["sub"]),
            )

    def _subscription_fanout(self, area: InterestArea, subscriber: str) -> list[str]:
        """Where a subscribe/unsubscribe travels next from this hop."""
        roles: tuple[ServerRole, ...] = (ServerRole.BASE,)
        if ServerRole.META_INDEX in self.roles:
            # The meta-index also seeds the index layer, so a failed-over
            # authority can re-arm publishers from its own registry.
            roles = (ServerRole.BASE, ServerRole.INDEX)
        return [
            entry.address
            for entry in self.catalog.servers_overlapping(area, roles=roles)
            if entry.address not in (self.address, subscriber)
            and entry.address not in self.suspected_dead
        ]

    def _rearm_registrant(self, entry: ServerEntry) -> None:
        """Re-forward stored subscriptions to a (re)registering server.

        This is how matchers survive churn: a publisher that crashed and
        rejoined registers here, and every overlapping subscription in the
        registry travels back to it — arming a fresh epoch.  A server that
        registers *after* a subscription was made is armed the same way.
        """
        for sub_id, record in list(self.subscription_registry.items()):
            envelope: dict = record["envelope"]
            shape: SubscriptionShape = record["shape"]
            if envelope["subscriber"] == entry.address:
                continue
            if not shape.area.overlaps(entry.area):
                continue
            forwarded = dict(envelope)
            if self.authoritative or not forwarded.get("authority"):
                forwarded["authority"] = self.address
            forwarded["hops"] = int(envelope.get("hops", 0)) + 1
            self._send_query_traffic(
                entry.address,
                "subscribe",
                forwarded,
                len(str(envelope["document"])),
                query_id=sub_id,
            )

    def _handle_unsubscribe(self, message: Message) -> None:
        envelope: dict = message.payload
        sub_id = str(envelope["sub"])
        hops = int(envelope.get("hops", 0))
        armed = self.armed_subscriptions.pop(sub_id, None)
        if armed is not None:
            self.matcher.disarm(sub_id)
            self._cancel_sub_transfers(sub_id)
        record = self.subscription_registry.pop(sub_id, None)
        if record is not None and hops < self.max_subscribe_hops:
            shape: SubscriptionShape = record["shape"]
            subscriber = str(record["envelope"]["subscriber"])
            for address in self._subscription_fanout(shape.area, subscriber):
                self._send_query_traffic(
                    address,
                    "unsubscribe",
                    {"sub": sub_id, "hops": hops + 1},
                    64,
                    query_id=sub_id,
                )

    def _cancel_sub_transfers(self, sub_id: str) -> None:
        """Kill pending delta retransmissions for one subscription.

        Delta transfers are keyed by subscription id exactly like query
        transfers are keyed by query id, so teardown mirrors
        :meth:`cancel_query`'s timer sweep.
        """
        for transfer, state in list(self._pending_transfers.items()):
            if state.query_id == sub_id:
                del self._pending_transfers[transfer]
                if state.timer is not None:
                    state.timer.cancel()

    # -- publisher side -------------------------------------------------------- #

    def _holds_overlap(self, area: InterestArea) -> bool:
        return any(
            area.overlaps(collection_area)
            for collection_area in self.collection_areas.values()
        )

    def _arm_subscription(
        self,
        sub_id: str,
        subscriber: str,
        shape: SubscriptionShape,
        authority: str,
        resume: dict,
    ) -> None:
        existing = self.armed_subscriptions.get(sub_id)
        if existing is not None:
            if authority and existing.authority and authority != existing.authority:
                # MOAS-style conflict: a second authority claims this
                # subscription's area.  Keep the original arming — never
                # double-deliver — and surface the overlap to the
                # subscriber (once per conflicting authority).
                self.authority_conflicts += 1
                if (sub_id, authority) not in self._conflict_notified:
                    self._conflict_notified.add((sub_id, authority))
                    self.send(
                        subscriber,
                        "sub-conflict",
                        {
                            "sub": sub_id,
                            "publisher": self.address,
                            "authorities": sorted((existing.authority, authority)),
                            "at_ms": round(self.now, 3),
                        },
                        size_bytes=96,
                    )
                return
            if authority and not existing.authority:
                existing.authority = authority
            existing.paused = False
            self._replay_deltas(existing, resume)
            return
        self._epoch_counter += 1
        armed = ArmedSubscription(
            sub_id=sub_id,
            subscriber=subscriber,
            shape=shape,
            authority=authority,
            epoch=f"{self.address}/e{self._epoch_counter}",
        )
        self.armed_subscriptions[sub_id] = armed
        self.matcher.arm(sub_id, shape)
        self._replay_deltas(armed, resume)

    def _replay_deltas(self, armed: ArmedSubscription, resume: dict) -> None:
        """Retransmit everything the subscriber has not seen, in order.

        The resume token names the last sequence the subscriber released
        for *this* publisher and epoch; without one (or across an epoch
        change) the whole unacknowledged log replays.  A hole in the log —
        an unacknowledged delta the bounded log already evicted — means
        this epoch cannot be resumed without a silent gap, so the
        subscription re-arms under a fresh epoch instead (the subscriber
        observes the continuity break and can fall back to a snapshot).
        """
        token = resume.get(self.address)
        if token is not None and str(token[0]) == armed.epoch:
            start = int(token[1]) + 1
        else:
            start = armed.acked_seq + 1
        if any(seq not in armed.log for seq in range(start, armed.next_seq)):
            self.delta_gaps += 1
            self._epoch_counter += 1
            armed.epoch = f"{self.address}/e{self._epoch_counter}"
            armed.next_seq = 0
            armed.acked_seq = -1
            armed.log.clear()
            return
        for seq in range(start, armed.next_seq):
            self._transmit_delta(armed, armed.log[seq])

    def _emit_mutation(
        self,
        path: str,
        inserts: Sequence[XMLElement] = (),
        updates: Sequence[tuple[XMLElement, XMLElement]] = (),
        retracts: Sequence[XMLElement] = (),
    ) -> None:
        """Match one collection mutation against the armed subscriptions.

        Candidate subscriptions come from the matcher's trie walk over the
        collection's area — O(depth + matches), never O(armed plans) — and
        each candidate classifies the mutation through its own predicate:
        an update whose old state matched but whose new state does not is
        that subscriber's ``retract``, and vice versa.
        """
        if not flags.continuous_queries or not self.armed_subscriptions:
            return
        if self.network is None or not self.online:
            return
        area = self.collection_areas.get(path)
        if area is None:
            return
        for sub_id, shape in self.matcher.matching(area):
            armed = self.armed_subscriptions[sub_id]
            inserted = [item for item in inserts if shape.relevant(item)]
            updated: list[XMLElement] = []
            retracted = [item for item in retracts if shape.relevant(item)]
            for old, new in updates:
                was_relevant = shape.relevant(old)
                is_relevant = shape.relevant(new)
                if was_relevant and is_relevant:
                    updated.append(new)
                elif is_relevant:
                    inserted.append(new)
                elif was_relevant:
                    retracted.append(old)
            for kind, batch in (
                ("insert", inserted),
                ("update", updated),
                ("retract", retracted),
            ):
                if batch:
                    self._publish_delta(armed, shape, kind, batch)

    def _publish_delta(
        self,
        armed: ArmedSubscription,
        shape: SubscriptionShape,
        kind: str,
        items: list[XMLElement],
    ) -> None:
        out = shape.apply(items)
        if not flags.shared_wire_trees:
            out = [item.copy() for item in out]
        document = serialize_xml(
            XMLElement(
                "delta",
                {"sub": armed.sub_id, "kind": kind, "seq": str(armed.next_seq)},
                out,
            )
        )
        envelope = {
            "document": document,
            "sub": armed.sub_id,
            "publisher": self.address,
            "epoch": armed.epoch,
            "seq": armed.next_seq,
            "kind": kind,
        }
        armed.log[armed.next_seq] = envelope
        armed.next_seq += 1
        while len(armed.log) > self.delta_log_memory:
            del armed.log[next(iter(armed.log))]
        self.deltas_published += 1
        if not armed.paused:
            self._transmit_delta(armed, envelope)

    def _transmit_delta(self, armed: ArmedSubscription, envelope: dict) -> None:
        # Keyed by subscription id the way query traffic is keyed by query
        # id, so the reliable-delivery ack/retry machinery — and the
        # teardown sweep in _cancel_sub_transfers — apply unchanged.
        self._send_query_traffic(
            armed.subscriber,
            "delta-chunk",
            dict(envelope),
            len(envelope["document"]),
            armed.sub_id,
        )

    def _handle_delta_ack(self, message: Message) -> None:
        envelope: dict = message.payload
        armed = self.armed_subscriptions.get(envelope["sub"])
        if armed is None:
            return
        seq = int(envelope["seq"])
        if seq > armed.acked_seq:
            armed.acked_seq = seq
            for logged in [s for s in armed.log if s <= seq]:
                del armed.log[logged]

    def _pause_subscription(self, sub_id: str) -> None:
        """Delivery to the subscriber failed: stop transmitting, keep logging.

        Deltas published while paused accumulate in the replay log; the
        subscriber's re-subscription (its rejoin path) resumes the feed
        from its last released sequence.
        """
        armed = self.armed_subscriptions.get(sub_id)
        if armed is not None:
            armed.paused = True

    # ------------------------------------------------------------------ #
    # Message handling
    # ------------------------------------------------------------------ #

    def handle_message(self, message: Message) -> None:
        if message.kind != "peer-unreachable":
            # Any delivered message proves its sender is alive again.
            self.suspected_dead.discard(message.sender)
        if message.kind == "delivery-ack":
            self._handle_delivery_ack(message)
            return
        if message.transfer is not None:
            # At-least-once delivery: acknowledge *every* attempt (the ack
            # for an earlier attempt may itself have been lost), but process
            # only the first copy — a retransmitted plan must not be
            # evaluated twice, a retransmitted chunk not counted twice.
            self.acks_sent += 1
            self.send(message.sender, "delivery-ack", message.transfer, size_bytes=32)
            duplicate = message.transfer in self._seen_transfers
            _insert_capped(self._seen_transfers, message.transfer, None, self.dedupe_memory)
            if duplicate:
                self.duplicates_dropped += 1
                return
        if message.kind == "mqp":
            self._handle_mqp(message)
        elif message.kind in ("result", "partial-result"):
            self._handle_result(message)
        elif message.kind == "result-chunk":
            self._handle_result_chunk(message)
        elif message.kind == "result-end":
            self._handle_result_end(message)
        elif message.kind == "cancel-query":
            self.cancel_query(message.payload)
        elif message.kind == "subscribe":
            self._handle_subscribe(message)
        elif message.kind == "unsubscribe":
            self._handle_unsubscribe(message)
        elif message.kind == "delta-chunk":
            self._handle_delta_chunk(message)
        elif message.kind == "delta-ack":
            self._handle_delta_ack(message)
        elif message.kind == "sub-conflict":
            self._handle_sub_conflict(message)
        elif message.kind == "recon-request":
            self._handle_recon_request(message)
        elif message.kind == "recon-reply":
            self._handle_recon_reply(message)
        elif message.kind == "register":
            self._handle_register(message)
        elif message.kind == "register-ack":
            self._handle_register_ack(message)
        elif message.kind == "unregister":
            self._handle_unregister(message)
        elif message.kind == "peer-unreachable":
            self._handle_unreachable(message)
        else:
            raise PeerError(f"{self.address}: unknown message kind {message.kind!r}")

    # -- MQP handling --------------------------------------------------------- #

    def enable_batching(self, window_ms: float = 0.0) -> None:
        """Buffer incoming plans and process them through the batched pipeline.

        Plans arriving within ``window_ms`` of the first buffered plan (0
        means the same simulated instant) are parsed, bound, optimized and
        evaluated together, sharing catalog lookups and evaluation results
        across the batch (the scale-out fast path).
        """
        self.batch_window_ms = window_ms

    def _handle_mqp(self, message: Message) -> None:
        if self.batch_window_ms is None:
            mqp = MutantQueryPlan.deserialize(message.payload)
            self._process_and_act(mqp)
            return
        self._mqp_buffer.append(message.payload)
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self.schedule(self.batch_window_ms, self._flush_mqp_batch)

    def _flush_mqp_batch(self) -> None:
        self._flush_scheduled = False
        documents, self._mqp_buffer = self._mqp_buffer, []
        if not documents:
            return
        mqps = [MutantQueryPlan.deserialize(document) for document in documents]
        if self.cancelled_queries:
            kept = [mqp for mqp in mqps if mqp.query_id not in self.cancelled_queries]
            self.plans_cancelled += len(mqps) - len(kept)
            mqps = kept
            if not mqps:
                return
        self.batches_processed += 1
        self.plans_processed += len(mqps)
        for mqp in mqps:
            trace = self.network.metrics.trace(mqp.query_id)  # type: ignore[union-attr]
            trace.visited.append(self.address)
        results = self.processor.process_batch(mqps, now=self.now, avoid=self.suspected_dead)
        for result in results:
            self.processor.learn_from(result.mqp)
            self._act_on(result)

    def _process_and_act(self, mqp: MutantQueryPlan, rerouted: bool = False) -> None:
        if mqp.query_id in self.cancelled_queries:
            self.plans_cancelled += 1
            return
        if rerouted:
            self.plans_rerouted += 1
        else:
            self.plans_processed += 1
        trace = self.network.metrics.trace(mqp.query_id)  # type: ignore[union-attr]
        trace.visited.append(self.address)
        result = self.processor.process(mqp, now=self.now, avoid=self.suspected_dead)
        self.processor.learn_from(mqp)
        self._act_on(result)

    def _act_on(self, result: ProcessingResult) -> None:
        mqp = result.mqp
        trace = self.network.metrics.trace(mqp.query_id)  # type: ignore[union-attr]

        if result.action is ProcessingAction.DELIVER:
            self._deliver(mqp, partial=False)
        elif result.action is ProcessingAction.DELIVER_PARTIAL:
            self._deliver(mqp, partial=True)
        elif result.action is ProcessingAction.FORWARD:
            assert result.next_hop is not None
            self.plans_forwarded += 1
            self._remember_forward(mqp.query_id, result.next_hop)
            payload = mqp.serialize()
            sent = self._send_query_traffic(
                result.next_hop, "mqp", payload, len(payload), mqp.query_id
            )
            trace.messages += 1
            trace.bytes += sent.size_bytes
        else:  # STUCK: deliver whatever partial answer exists rather than dropping
            self.plans_stuck += 1
            self._deliver(mqp, partial=True)

    def _deliver(self, mqp: MutantQueryPlan, partial: bool) -> None:
        target = mqp.target or self.address
        self._forwarded_to.pop(mqp.query_id, None)
        mqp.provenance.add(self.address, ProvenanceAction.DELIVERED, self.now, detail=target)
        items = self._extract_result_items(mqp, partial)
        if flags.streaming_results and target != self.address:
            self._stream_result(mqp, items, partial, target)
            return
        # The wrapper shares the items: it exists only to be serialized on
        # the next line, and serialization never mutates, so the per-item
        # deep copy the seed made here bought nothing at delivery scale.
        if not flags.shared_wire_trees:
            items = [item.copy() for item in items]
        collection = XMLElement("result", {"query-id": mqp.query_id}, items)
        payload = serialize_xml(collection)
        kind = "partial-result" if partial else "result"
        envelope = {
            "document": payload,
            "query_id": mqp.query_id,
            "partial": partial,
            "hops": mqp.provenance.hop_count(),
            "staleness": mqp.provenance.max_staleness(),
        }
        failures = self.delivery_failures.get(mqp.query_id)
        if failures:
            # Per-hop failure provenance travels with the answer, so the
            # issuer can annotate a degraded result with *where* delivery
            # gave up — not just that something is missing.
            envelope["failures"] = [dict(record) for record in failures]
        trace = self.network.metrics.trace(mqp.query_id)  # type: ignore[union-attr]
        if target == self.address:
            # Same guards as _handle_result: a duplicate plan copy that goes
            # stuck here must not overwrite a recorded complete answer (and
            # a cancelled query records nothing).
            if mqp.query_id not in self.cancelled_queries and not self._is_answered(
                mqp.query_id
            ):
                self._record_result(envelope)
            return
        sent = self._send_query_traffic(target, kind, envelope, len(payload), mqp.query_id)
        trace.messages += 1
        trace.bytes += sent.size_bytes

    # -- chunked result delivery (flags.streaming_results) --------------------- #

    def _stream_result(
        self, mqp: MutantQueryPlan, items: Sequence[XMLElement], partial: bool, target: str
    ) -> None:
        """Open a chunked delivery: the result leaves as framed chunks.

        The stream token distinguishes deliveries when one query is
        answered more than once (a partial from a stuck branch, then a
        complete answer): the receiver reassembles per stream, never
        mixing two deliveries' items.
        """
        # A newer delivery supersedes any stream still pumping for this
        # query: close its iterator instead of silently truncating it.
        self._teardown_stream(mqp.query_id)
        self._stream_counter += 1
        state = _ResultStream(
            query_id=mqp.query_id,
            target=target,
            iterator=iter(items),
            partial=partial,
            hops=mqp.provenance.hop_count(),
            staleness=mqp.provenance.max_staleness(),
            stream=f"{self.address}/{self._stream_counter}",
        )
        self._open_streams[mqp.query_id] = state
        self._pump_stream(mqp.query_id, state.stream)

    def _pump_stream(self, query_id: str, stream: str) -> None:
        """Send the next chunk of an open stream, or close it with result-end.

        Each chunk is its own framed message on the wire, and the next pump
        is a fresh event on the logical clock — so a bounded receiving
        inbox (the aio backend) exerts backpressure between chunks, and a
        cancel notice arriving mid-stream tears the iterator down before
        the remaining chunks are produced.
        """
        state = self._open_streams.get(query_id)
        if state is None or state.stream != stream:
            # A stale pump event: its stream was torn down (or superseded
            # by a newer delivery, which drives its own pump chain — one
            # chunk per logical event, never two).
            return
        if not self.online or query_id in self.cancelled_queries:
            self._teardown_stream(query_id)
            return
        chunk = list(islice(state.iterator, self.result_chunk_items))
        trace = self.network.metrics.trace(query_id)  # type: ignore[union-attr]
        if chunk:
            if not flags.shared_wire_trees:
                chunk = [item.copy() for item in chunk]
            collection = XMLElement(
                "result-chunk", {"query-id": query_id, "seq": str(state.seq)}, chunk
            )
            payload = serialize_xml(collection)
            envelope = {
                "document": payload,
                "query_id": query_id,
                "stream": state.stream,
                "seq": state.seq,
            }
            sent = self._send_query_traffic(
                state.target, "result-chunk", envelope, len(payload), query_id
            )
            trace.messages += 1
            trace.bytes += sent.size_bytes
            state.seq += 1
            state.sent_items += len(chunk)
            self.schedule(0.0, lambda: self._pump_stream(query_id, stream))
            return
        envelope = {
            "query_id": query_id,
            "stream": state.stream,
            "seq": state.seq,
            "items_total": state.sent_items,
            "partial": state.partial,
            "hops": state.hops,
            "staleness": state.staleness,
        }
        failures = self.delivery_failures.get(query_id)
        if failures:
            envelope["failures"] = [dict(record) for record in failures]
        sent = self._send_query_traffic(state.target, "result-end", envelope, 128, query_id)
        trace.messages += 1
        trace.bytes += sent.size_bytes
        self._open_streams.pop(query_id, None)

    def _teardown_stream(self, query_id: str) -> None:
        state = self._open_streams.pop(query_id, None)
        if state is not None:
            close = getattr(state.iterator, "close", None)
            if close is not None:
                close()

    @staticmethod
    def _extract_result_items(mqp: MutantQueryPlan, partial: bool) -> list[XMLElement]:
        if mqp.is_fully_evaluated():
            return list(mqp.plan.result().children)
        if not partial:
            return []
        items: list[XMLElement] = []
        for leaf in mqp.plan.verbatim_leaves():
            items.extend(leaf.items)
        return items

    def _handle_result(self, message: Message) -> None:
        query_id = message.payload["query_id"]
        if query_id in self.cancelled_queries:
            return  # the issuer no longer wants this answer
        if self._is_answered(query_id):
            # A complete result is terminal: a straggling partial from a
            # slower relay path (or a duplicate) must not overwrite it.
            return
        self._record_result(message.payload)

    def _record_result(self, envelope: dict) -> None:
        self._absorb_failures(envelope)
        document = parse_xml(envelope["document"])
        self._finalize_result(
            envelope["query_id"],
            list(document.children),
            partial=bool(envelope.get("partial", False)),
            hops=int(envelope.get("hops", 0)),
            staleness=float(envelope.get("staleness", 0.0)),
        )

    def _finalize_result(
        self, query_id: str, items: list[XMLElement], partial: bool, hops: int, staleness: float
    ) -> None:
        result = QueryResult(
            query_id=query_id,
            items=items,
            partial=partial,
            received_at=self.now,
            provenance_hops=hops,
            max_staleness_minutes=staleness,
        )
        self.results[query_id] = result
        trace = self.network.metrics.trace(query_id)  # type: ignore[union-attr]
        trace.completed_at = self.now
        trace.answers = result.count
        self._dispatch_result(query_id, result)  # handle completion

    # -- chunked result reassembly ------------------------------------------- #

    def _assembly_for(self, query_id: str, stream: str) -> _ChunkAssembly:
        # Keyed by (query, stream): concurrent deliveries for one query
        # (a partial from a stuck branch interleaved with the complete
        # answer) reassemble independently instead of clobbering each other.
        key = (query_id, stream)
        assembly = self._chunk_assemblies.get(key)
        if assembly is None:
            assembly = _ChunkAssembly(stream=stream)
        # Each chunk arrival refreshes recency, so under the cap the
        # eviction victim is always a stream whose producer went quiet
        # mid-delivery.  Past the cap (more than assembly_memory deliveries
        # reassembling at once) the least-recently-fed live stream is
        # abandoned too: bounded memory wins over completeness, and the
        # waiting handle degrades exactly as if the producer had died
        # (idle → partial answer or QueryTimeout).
        _insert_capped(
            self._chunk_assemblies,
            key,
            assembly,
            self.assembly_memory,
            self._assembly_evicted,
        )
        return assembly

    def _assembly_evicted(self, key: object) -> None:
        query_id = key[0]  # type: ignore[index]
        if not any(k[0] == query_id for k in self._chunk_assemblies):
            self._chunk_buffers.pop(query_id, None)

    def _drop_assemblies(self, query_id: str) -> None:
        for key in [key for key in self._chunk_assemblies if key[0] == query_id]:
            del self._chunk_assemblies[key]

    def _is_answered(self, query_id: str) -> bool:
        """True once a complete (non-partial) result has been recorded.

        A superseded stream's in-flight chunks can straggle in after the
        superseding delivery already closed; replaying them would repopulate
        the arrival buffer with stale items (or strand an orphan assembly),
        so chunk and end frames for an answered query are dropped.
        """
        recorded = self.results.get(query_id)
        return recorded is not None and not recorded.partial

    def _handle_result_chunk(self, message: Message) -> None:
        envelope: dict = message.payload
        query_id = envelope["query_id"]
        if query_id in self.cancelled_queries:
            # Upstream teardown, driven by arriving traffic: tell the
            # producer to close its stream instead of pumping the rest —
            # once, not once per straggler frame already on the link.
            if (query_id, message.sender) not in self._cancel_notified:
                _insert_capped(
                    self._cancel_notified,
                    (query_id, message.sender),
                    None,
                    self.cancel_memory,
                )
                self.send(message.sender, "cancel-query", query_id, size_bytes=64)
            return
        if self._is_answered(query_id):
            return
        stream = str(envelope.get("stream", message.sender))
        seq = int(envelope.get("seq", 0))
        assembly = self._assembly_for(query_id, stream)
        items = list(parse_xml(envelope["document"]).children)
        if seq in assembly.pending or seq < assembly.next_seq:
            if self.network is not None and self.network.faults.active:
                # An injected duplicate (reliable transfers are deduped
                # before dispatch, so only fault-cloned frames land here):
                # drop it rather than double-count the items.
                self.duplicates_dropped += 1
                return
            raise PeerError(
                f"{self.address}: duplicate result-chunk {seq} for query {query_id!r}"
            )
        assembly.pending[seq] = items
        self._release_in_order(query_id, assembly)

    def _release_in_order(self, query_id: str, assembly: _ChunkAssembly) -> None:
        """Move consecutively sequenced chunks into the arrival buffer."""
        while assembly.next_seq in assembly.pending:
            items = assembly.pending.pop(assembly.next_seq)
            assembly.next_seq += 1
            assembly.items.extend(items)
            if self._chunk_buffers.get(query_id) is not assembly.items:
                # The arrival buffer mirrors whichever delivery released
                # most recently — always one delivery's in-order items,
                # never a mix of interleaved streams.  Buffers of degraded
                # (partial) answers a long-running issuer accumulates are
                # bounded exactly like the reassembly state.
                _insert_capped(
                    self._chunk_buffers, query_id, assembly.items, self.assembly_memory
                )
            watchers = self._chunk_watchers.get(query_id)
            if watchers:
                for watcher in list(watchers):
                    if watcher in (self._chunk_watchers.get(query_id) or ()):
                        watcher(items, assembly.stream)
        end = assembly.end
        if end is not None and assembly.next_seq >= int(end.get("seq", 0)):
            self._close_assembly(query_id, assembly)

    def _handle_result_end(self, message: Message) -> None:
        envelope: dict = message.payload
        query_id = envelope["query_id"]
        if query_id in self.cancelled_queries:
            self._chunk_buffers.pop(query_id, None)
            self._drop_assemblies(query_id)
            return
        if self._is_answered(query_id):
            return
        stream = str(envelope.get("stream", message.sender))
        assembly = self._assembly_for(query_id, stream)
        assembly.end = envelope
        if assembly.next_seq >= int(envelope.get("seq", 0)):
            self._close_assembly(query_id, assembly)
        # Otherwise the end overtook its chunks; it closes the stream the
        # moment the missing sequence numbers arrive.

    def _close_assembly(self, query_id: str, assembly: _ChunkAssembly) -> None:
        envelope = assembly.end
        assert envelope is not None
        self._absorb_failures(envelope)
        self._chunk_assemblies.pop((query_id, assembly.stream), None)
        items = assembly.items
        expected_items = int(envelope.get("items_total", len(items)))
        if len(items) != expected_items:
            raise PeerError(
                f"{self.address}: result-end for query {query_id!r} closes stream "
                f"{assembly.stream!r} with {expected_items} item(s), "
                f"but {len(items)} arrived"
            )
        partial = bool(envelope.get("partial", False))
        if not partial:
            # The query is answered: any other delivery still reassembling
            # (a superseded stream the producer tore down) is stale.
            self._chunk_buffers.pop(query_id, None)
            self._drop_assemblies(query_id)
        self._finalize_result(
            query_id,
            items,
            partial=partial,
            hops=int(envelope.get("hops", 0)),
            staleness=float(envelope.get("staleness", 0.0)),
        )

    # -- cancellation --------------------------------------------------------- #

    def _remember_forward(self, query_id: str, next_hop: str) -> None:
        _insert_capped(self._forwarded_to, query_id, next_hop, self.forward_memory)

    def _remember_cancelled(self, query_id: str) -> None:
        _insert_capped(self.cancelled_queries, query_id, None, self.cancel_memory)

    def cancel_query(self, query_id: str) -> None:
        """Cancel a query here and propagate along the forwarding chain.

        Idempotent.  Open result streams for the query are torn down (their
        iterators closed), buffered chunks dropped, watchers released, and
        the plan — should it arrive or still be in flight downstream — is
        discarded by every peer the cancel notice reaches.
        """
        if query_id in self.cancelled_queries:
            return
        self._remember_cancelled(query_id)
        self._teardown_stream(query_id)
        self._chunk_buffers.pop(query_id, None)
        self._drop_assemblies(query_id)
        self.unwatch_results(query_id)
        self.unwatch_chunks(query_id)
        for transfer, state in list(self._pending_transfers.items()):
            if state.query_id == query_id:
                # The issuer no longer wants the answer: stop retransmitting
                # its traffic instead of burning the retry budget on it.
                del self._pending_transfers[transfer]
                if state.timer is not None:
                    state.timer.cancel()
        next_hop = self._forwarded_to.pop(query_id, None)
        if next_hop is not None and self.network is not None and self.online:
            self.send(next_hop, "cancel-query", query_id, size_bytes=64)

    # -- reliable delivery (flags.reliable_delivery) --------------------------- #

    def _send_query_traffic(
        self, recipient: str, kind: str, payload: object, size_bytes: int, query_id: str
    ) -> Message:
        """Send query traffic, reliably when ``flags.reliable_delivery`` is on.

        The reliable path stamps the message with a transfer id, remembers
        it in the retransmit queue, and arms a backoff timer on the logical
        clock; fire-and-forget behaviour (and wire bytes) are unchanged
        when the flag is off.  Query traffic — plans, results, chunks — and
        subscription control (subscribe/unsubscribe, keyed by subscription
        id like deltas are) ride the protocol; exactly-once delta delivery
        is only as strong as the arming envelope's delivery.  Registration
        stays fire-and-forget, matching the paper's best-effort catalog.
        """
        if not flags.reliable_delivery:
            return self.send(recipient, kind, payload, size_bytes=size_bytes)
        self._transfer_counter += 1
        state = _PendingTransfer(
            transfer=f"{self.address}#{self._transfer_counter}",
            recipient=recipient,
            kind=kind,
            payload=payload,
            size_bytes=size_bytes,
            query_id=query_id,
        )
        self._pending_transfers[state.transfer] = state
        return self._transmit(state)

    def _transmit(self, state: _PendingTransfer) -> Message:
        """(Re)send one pending transfer and arm its retransmission timer."""
        message = self.send(
            state.recipient,
            state.kind,
            state.payload,
            size_bytes=state.size_bytes,
            transfer=state.transfer,
            attempt=state.attempts,
        )
        state.last_message = message
        state.timer = self.schedule(
            self.retry_policy.delay_for(state.transfer, state.attempts),
            lambda: self._retry_transfer(state.transfer),
        )
        return message

    def _handle_delivery_ack(self, message: Message) -> None:
        state = self._pending_transfers.pop(message.payload, None)
        if state is not None and state.timer is not None:
            # A late ack (after failure or cancellation) finds no state and
            # is simply ignored — the protocol is idempotent on both ends.
            state.timer.cancel()

    def _retry_transfer(self, transfer: str) -> None:
        state = self._pending_transfers.get(transfer)
        if state is None:
            return  # acknowledged (or torn down) before the timer fired
        if not self.online or self.network is None or state.query_id in self.cancelled_queries:
            self._pending_transfers.pop(transfer, None)
            return
        if self.retry_policy.exhausted(state.attempts):
            self._pending_transfers.pop(transfer, None)
            self._transfer_failed(state)
            return
        state.attempts += 1
        self.retries_sent += 1
        self._transmit(state)

    def _transfer_failed(self, state: _PendingTransfer) -> None:
        """The retry budget is spent: degrade instead of waiting forever.

        The unresponsive peer is treated exactly like a detected crash —
        purged from the routing state — and the payload gets the same
        last-resort handling as an unreachable bounce: plans reroute,
        streams tear down, results are dead-lettered.  The failure record
        travels with the (partial) answer so the issuer can report per-hop
        delivery provenance.
        """
        self.transfers_failed += 1
        self._record_delivery_failure(
            state.query_id,
            {
                "hop": self.address,
                "peer": state.recipient,
                "kind": state.kind,
                "attempts": state.attempts + 1,
                "at_ms": round(self.now, 3),
            },
        )
        self.suspected_dead.add(state.recipient)
        self.cache.forget_server(state.recipient)
        self.catalog.prune_server(state.recipient)
        self._note_tier_failover(state.recipient)
        if state.kind == "mqp":
            mqp = MutantQueryPlan.deserialize(state.payload)
            self._process_and_act(mqp, rerouted=True)
            return
        if state.kind in ("result-chunk", "result-end"):
            envelope: dict = state.payload  # type: ignore[assignment]
            stream_state = self._open_streams.get(state.query_id)
            if stream_state is not None and stream_state.stream == envelope.get("stream"):
                self._teardown_stream(state.query_id)
        if state.kind == "delta-chunk":
            # The subscriber is unreachable: pause the feed (the replay log
            # keeps accumulating) instead of burning retries per delta.
            self._pause_subscription(state.query_id)
        if state.last_message is not None:
            self._dead_letter(state.last_message)

    def _record_delivery_failure(self, query_id: str, record: dict) -> None:
        failures = self.delivery_failures.get(query_id)
        if failures is None:
            failures = []
        _insert_capped(self.delivery_failures, query_id, failures, self.failure_memory)
        if record not in failures and len(failures) < 32:
            failures.append(record)

    def _absorb_failures(self, envelope: dict) -> None:
        """Adopt the per-hop failure records a result envelope carries."""
        for record in envelope.get("failures", ()):
            self._record_delivery_failure(envelope["query_id"], dict(record))

    def _dead_letter(self, message: Message) -> None:
        self.dead_letters.append(message)
        if self.network is not None:
            self.network.metrics.record_dead_letter(message)

    # -- registration handling --------------------------------------------------- #

    def _handle_register(self, message: Message) -> None:
        payload: RegistrationPayload = message.payload
        entry = payload.entry
        if not self._accepts_registration(entry):
            return
        self.catalog.register_server(entry)
        for statement in payload.statements:
            self.catalog.register_statement(statement)
        for named in payload.named_resources:
            self.catalog.register_named_resource(named)
        acknowledgement = self.send(
            message.sender, "register-ack", self.server_entry(), size_bytes=256
        )
        del acknowledgement  # traffic is accounted for by the network metrics
        if flags.continuous_queries and self.subscription_registry:
            # A (re)registering server may hold data an armed subscription
            # watches: push the stored subscriptions back to it so its
            # matchers re-arm after churn (or arm for the first time).
            self._rearm_registrant(entry)

    def _accepts_registration(self, entry: ServerEntry) -> bool:
        if not ({ServerRole.INDEX, ServerRole.META_INDEX} & self.roles):
            return False
        return self.interest_area.overlaps(entry.area)

    def _handle_register_ack(self, message: Message) -> None:
        entry: ServerEntry = message.payload
        self.learn_about(entry)

    def _handle_unregister(self, message: Message) -> None:
        """A peer announced a graceful departure: drop its routing state."""
        departing: str = message.payload
        self.catalog.prune_server(departing)
        self.cache.forget_server(departing)

    # -- failure detection (churn) ------------------------------------------------ #

    def _handle_unreachable(self, message: Message) -> None:
        """A message this peer sent could not be delivered.

        The network's failure detection hands back the original message.
        The dead peer is purged from the routing cache and catalog, and an
        undeliverable *plan* is reprocessed here so it reroutes around the
        failure (or degrades to a partial answer) — plans are never silently
        dropped.  Undeliverable results are dead-lettered for inspection.
        """
        dead = message.sender
        original: Message = message.payload
        self.suspected_dead.add(dead)
        self.cache.forget_server(dead)
        self.catalog.prune_server(dead)
        self._note_tier_failover(dead)
        transfer = getattr(original, "transfer", None)
        if transfer is not None:
            # The bounce already tells us delivery failed: stand the retry
            # machinery down so the reroute below is not repeated when the
            # budget runs out later.
            pending = self._pending_transfers.pop(transfer, None)
            if pending is not None and pending.timer is not None:
                pending.timer.cancel()
        if original.kind == "mqp":
            mqp = MutantQueryPlan.deserialize(original.payload)
            self._process_and_act(mqp, rerouted=True)
            return
        if original.kind in ("result-chunk", "result-end"):
            # The consumer is gone: close the open stream instead of
            # pumping every remaining chunk into the dead-letter queue
            # one unreachable bounce at a time.  Matched by stream token —
            # a stale bounce from an already-superseded delivery must not
            # kill the live successor (same hazard _pump_stream guards).
            state = self._open_streams.get(original.payload["query_id"])
            if state is not None and state.stream == original.payload.get("stream"):
                self._teardown_stream(state.query_id)
        if original.kind == "delta-chunk":
            # The subscriber crashed: pause its feed until it resubscribes.
            self._pause_subscription(original.payload["sub"])
        # Every other undeliverable kind is dead-lettered — results,
        # registrations, acks, unregisters alike.  The previous
        # allowlist silently discarded kinds it did not anticipate,
        # which made failure accounting undercount under churn.
        self._dead_letter(original)

    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:
        roles = ",".join(sorted(role.value for role in self.roles))
        return f"QueryPeer({self.address!r}, roles=[{roles}], area={self.interest_area})"
