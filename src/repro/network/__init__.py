"""Simulated peer-to-peer network substrate (discrete-event, deterministic)."""

from .failures import FailureEvent, FailureInjector
from .latency import LatencyModel
from .message import Message
from .metrics import NetworkMetrics, QueryTrace
from .network import Network
from .node import NetworkNode
from .simulator import Event, Simulator
from .topology import Topology, random_topology, small_world_topology, star_topology

__all__ = [
    "Simulator",
    "Event",
    "Message",
    "LatencyModel",
    "Network",
    "NetworkNode",
    "NetworkMetrics",
    "QueryTrace",
    "Topology",
    "random_topology",
    "small_world_topology",
    "star_topology",
    "FailureInjector",
    "FailureEvent",
]
