"""The gene-expression workload of Figure 1 ("Of Mice and Men").

Biomedical groups host repositories of MIAME-style expression records and
"indicate their interest areas relative to organism and cell-type
hierarchies".  The three groups of Figure 1 are generated verbatim (fruit
fly neural cells; rodent connective and muscle cells; all human cell
types), plus any number of additional synthetic groups, and the canonical
query — "a query related to cardiac muscle cells in mammals" — is provided
together with its ground truth: it must reach groups 2 and 3 but never
group 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..namespace import (
    InterestArea,
    InterestCell,
    MultiHierarchicNamespace,
    gene_expression_namespace,
)
from ..xmlmodel import XMLElement, text_element
from .distributions import make_rng

__all__ = ["GeneExpressionConfig", "Repository", "GeneExpressionWorkload"]

_GENES = ["BRCA1", "TP53", "MYC", "ACTB", "GATA4", "NKX2-5", "TNNT2", "MYH7", "SCN5A", "FOXP2"]


@dataclass(frozen=True)
class GeneExpressionConfig:
    """Parameters of the generated repository population."""

    extra_repositories: int = 0
    records_per_cell: int = 5
    seed: int = 7


@dataclass
class Repository:
    """One research group's repository: address, interest area, records."""

    address: str
    name: str
    area: InterestArea
    records: list[XMLElement] = field(default_factory=list)


class GeneExpressionWorkload:
    """Generates the Figure 1 repositories and their expression records."""

    def __init__(
        self,
        config: GeneExpressionConfig | None = None,
        namespace: MultiHierarchicNamespace | None = None,
    ) -> None:
        self.config = config or GeneExpressionConfig()
        self.namespace = namespace or gene_expression_namespace()
        self._rng = make_rng(self.config.seed)
        self.repositories: list[Repository] = []
        self._build_figure1_groups()
        self._build_extra_groups()

    # -- the three groups of Figure 1 ----------------------------------------------------- #

    def _build_figure1_groups(self) -> None:
        fly_neural = self.namespace.area(
            ["Coelomata/Protostomia/Drosophila/Melanogaster", "Neural"]
        )
        rodent_conn_muscle = self.namespace.area(
            ["Coelomata/Deuterostomia/Mammalia/Eutheria/Rodentia", "Connective"],
            ["Coelomata/Deuterostomia/Mammalia/Eutheria/Rodentia", "Muscle"],
        )
        human_all = self.namespace.area(
            ["Coelomata/Deuterostomia/Mammalia/Eutheria/Primates/HomoSapiens", "*"]
        )
        self.repositories.append(self._make_repository("fly-lab:9020", "Fly neural lab", fly_neural))
        self.repositories.append(
            self._make_repository("rodent-lab:9020", "Rodent connective/muscle lab", rodent_conn_muscle)
        )
        self.repositories.append(self._make_repository("human-lab:9020", "Human atlas project", human_all))

    def _build_extra_groups(self) -> None:
        organisms = self.namespace.dimensions[0].leaves()
        cell_types = [
            category
            for category in self.namespace.dimensions[1].categories()
            if category.depth == 1
        ]
        for index in range(self.config.extra_repositories):
            organism = organisms[int(self._rng.integers(len(organisms)))]
            cell_type = cell_types[int(self._rng.integers(len(cell_types)))]
            area = InterestArea([InterestCell((organism, cell_type))])
            self.repositories.append(
                self._make_repository(f"lab{index:03d}:9020", f"Synthetic lab {index}", area)
            )

    def _make_repository(self, address: str, name: str, area: InterestArea) -> Repository:
        repository = Repository(address, name, area)
        for cell in area:
            leaves = self._covered_leaf_cells(cell)
            for leaf in leaves:
                for record_index in range(self.config.records_per_cell):
                    repository.records.append(self._make_record(leaf, record_index))
        return repository

    def _covered_leaf_cells(self, cell: InterestCell) -> list[InterestCell]:
        organism_dim, cell_dim = self.namespace.dimensions
        organisms = [leaf for leaf in organism_dim.leaves() if cell.coordinate(0).covers(leaf)]
        cell_types = [leaf for leaf in cell_dim.leaves() if cell.coordinate(1).covers(leaf)]
        return [InterestCell((organism, cell_type)) for organism in organisms for cell_type in cell_types]

    def _make_record(self, cell: InterestCell, index: int) -> XMLElement:
        gene = _GENES[int(self._rng.integers(len(_GENES)))]
        level = round(float(self._rng.lognormal(2.0, 0.8)), 3)
        return XMLElement(
            "experiment",
            {"id": f"{cell.coordinate(0).label}-{cell.coordinate(1).label}-{index}"},
            [
                text_element("organism", str(cell.coordinate(0))),
                text_element("cellType", str(cell.coordinate(1))),
                text_element("gene", gene),
                text_element("expression", level),
                text_element("platform", "microarray"),
            ],
        )

    # -- the Figure 1 query --------------------------------------------------------------- #

    def mammalian_cardiac_query_area(self) -> InterestArea:
        """The paper's example query: cardiac muscle cells in mammals."""
        return self.namespace.area(
            ["Coelomata/Deuterostomia/Mammalia", "Muscle/Cardiac"]
        )

    def relevant_repositories(self, area: InterestArea) -> list[Repository]:
        """Repositories whose interest area overlaps the query (may hold data)."""
        return [repository for repository in self.repositories if repository.area.overlaps(area)]

    def irrelevant_repositories(self, area: InterestArea) -> list[Repository]:
        """Repositories that can safely be skipped (the paper's group 1)."""
        return [repository for repository in self.repositories if not repository.area.overlaps(area)]

    def matching_records(self, area: InterestArea) -> list[XMLElement]:
        """Ground truth: records whose (organism, cellType) cell is covered by the area."""
        matches: list[XMLElement] = []
        for repository in self.repositories:
            for record in repository.records:
                cell = InterestCell(
                    (
                        self.namespace.dimensions[0].approximate(record.child_text("organism") or "*"),
                        self.namespace.dimensions[1].approximate(record.child_text("cellType") or "*"),
                    )
                )
                if area.covers_cell(cell):
                    matches.append(record)
        return matches
