"""The "Gnutella" (pure) baseline: query broadcasting with a horizon (paper §1).

"No central indices are maintained; queries are broadcast to a node's
neighbors (which then broadcast them to all of their neighbors, and so on,
up to a fixed number of steps, called the horizon)."

Peers hold data items tagged with interest cells.  A query floods the
overlay up to ``horizon`` hops; every peer that holds matching items sends
a hit directly back to the query origin.  The baseline exists to make the
paper's qualitative claims measurable: broadcast "wastes network bandwidth
and hurts result quality by limiting the availability of rare content"
(content beyond the horizon is simply never found).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Sequence

from ..namespace import InterestArea, InterestCell
from ..network import Message, NetworkNode, Topology
from ..xmlmodel import XMLElement, serialize_xml

__all__ = ["GnutellaQuery", "GnutellaHit", "GnutellaPeer"]

_query_counter = itertools.count(1)


@dataclass
class GnutellaQuery:
    """A flooded query: an interest area plus the remaining time-to-live."""

    query_id: str
    origin: str
    area: InterestArea
    ttl: int


@dataclass
class GnutellaHit:
    """A peer's answer: the matching items it holds."""

    query_id: str
    server: str
    items: list[XMLElement] = field(default_factory=list)


class GnutellaPeer(NetworkNode):
    """A peer of the unstructured broadcast overlay."""

    def __init__(self, address: str, topology: Topology | None = None) -> None:
        super().__init__(address)
        self.topology = topology
        self.items: list[tuple[InterestCell, XMLElement]] = []
        self.seen_queries: set[str] = set()
        self.hits: dict[str, list[GnutellaHit]] = {}
        self.queries_forwarded = 0

    # -- data ------------------------------------------------------------------ #

    def add_items(self, cell: InterestCell, items: Sequence[XMLElement]) -> None:
        """Store items filed under one interest cell."""
        for item in items:
            self.items.append((cell, item))

    def matching_items(self, area: InterestArea) -> list[XMLElement]:
        """Items whose cell is covered by the query area."""
        return [item for cell, item in self.items if area.covers_cell(cell)]

    def neighbors(self) -> list[str]:
        """Overlay neighbours of this peer."""
        if self.topology is None:
            return []
        return self.topology.neighbors(self.address)

    # -- querying ---------------------------------------------------------------- #

    def issue_query(self, area: InterestArea, horizon: int, query_id: str | None = None) -> str:
        """Broadcast a query to all neighbours with the given horizon."""
        query_id = query_id or f"gq{next(_query_counter)}"
        self.seen_queries.add(query_id)
        self.hits.setdefault(query_id, [])
        trace = self.network.metrics.trace(query_id)  # type: ignore[union-attr]
        trace.issued_at = self.now
        trace.visited.append(self.address)
        # The origin answers from its own store as well.
        local = self.matching_items(area)
        if local:
            self.hits[query_id].append(GnutellaHit(query_id, self.address, local))
            trace.answers += len(local)
        query = GnutellaQuery(query_id, self.address, area, horizon)
        self._flood(query, exclude=None)
        return query_id

    def results_for(self, query_id: str) -> list[XMLElement]:
        """All items received in hits for a query."""
        collected: list[XMLElement] = []
        for hit in self.hits.get(query_id, []):
            collected.extend(hit.items)
        return collected

    # -- protocol ------------------------------------------------------------------ #

    def handle_message(self, message: Message) -> None:
        if message.kind == "g-query":
            self._handle_query(message)
        elif message.kind == "g-hit":
            self._handle_hit(message)

    def _handle_query(self, message: Message) -> None:
        query: GnutellaQuery = message.payload
        trace = self.network.metrics.trace(query.query_id)  # type: ignore[union-attr]
        if query.query_id in self.seen_queries:
            return
        self.seen_queries.add(query.query_id)
        trace.visited.append(self.address)
        matches = self.matching_items(query.area)
        if matches:
            hit = GnutellaHit(query.query_id, self.address, [item.copy() for item in matches])
            size = sum(len(serialize_xml(item).encode()) for item in matches) + 64
            sent = self.send(query.origin, "g-hit", hit, size_bytes=size)
            trace.messages += 1
            trace.bytes += sent.size_bytes
        if query.ttl > 1:
            self._flood(
                GnutellaQuery(query.query_id, query.origin, query.area, query.ttl - 1),
                exclude=message.sender,
            )

    def _flood(self, query: GnutellaQuery, exclude: str | None) -> None:
        trace = self.network.metrics.trace(query.query_id)  # type: ignore[union-attr]
        for neighbor in self.neighbors():
            if neighbor == exclude:
                continue
            sent = self.send(neighbor, "g-query", query, size_bytes=200)
            self.queries_forwarded += 1
            trace.messages += 1
            trace.bytes += sent.size_bytes

    def _handle_hit(self, message: Message) -> None:
        hit: GnutellaHit = message.payload
        self.hits.setdefault(hit.query_id, []).append(hit)
        trace = self.network.metrics.trace(hit.query_id)  # type: ignore[union-attr]
        trace.answers += len(hit.items)
        trace.completed_at = self.now
