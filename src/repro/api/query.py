"""Fluent query building: from a resource name to a submitted handle.

The builder compiles to exactly the :class:`~repro.algebra.plan.QueryPlan`
trees the MQP machinery has always consumed — every structural method
mirrors a :class:`~repro.algebra.builder.PlanBuilder` constructor, so a
fluent query and its hand-built equivalent serialize identically (a
property ``tests/test_api.py`` asserts).  On top of the structure it
carries the *query controls* that previously travelled as loose arguments:
preferences (§4.3), the expected-answer count for recall accounting, and
an explicit query id for deterministic reports.

    handle = (
        session.query()
        .urn("urn:ForSale:Portland-CDs")
        .where("price < 10")
        .expecting(2)
        .submit()
    )

A pre-built plan drops in through the escape hatch: ``session.query(plan)``
or ``builder.plan(query_plan)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..algebra import PlanBuilder, QueryPlan
from ..algebra.expressions import Expression
from ..algebra.operators import PlanNode
from ..errors import APIError
from ..mqp import QueryPreferences
from ..namespace import InterestArea, InterestAreaURN
from ..xmlmodel import XMLElement

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from .handle import QueryHandle
    from .session import Session
    from .subscription import Subscription

__all__ = ["QueryBuilder"]


class QueryBuilder:
    """Chainable construction of one query, bound to the issuing session."""

    def __init__(self, session: "Session", plan: QueryPlan | None = None) -> None:
        self._session = session
        self._builder: PlanBuilder | None = None
        self._raw: QueryPlan | None = plan
        self._target: str | None = None
        self._prefer: str | None = None
        self._target_time_ms: float | None = None
        self._preferences: QueryPreferences | None = None
        self._expected: int | None = None
        self._query_id: str | None = None

    # -- sources ----------------------------------------------------------- #

    def urn(self, urn: str) -> "QueryBuilder":
        """Query an abstract resource name (resolved en route, §3.4)."""
        return self._start(PlanBuilder.urn(urn))

    def area(self, area: "InterestArea | Sequence[str]") -> "QueryBuilder":
        """Query an interest area (compiled to its URN form).

        Accepts an :class:`~repro.namespace.InterestArea` or the coordinate
        paths one describes, e.g. ``["USA/OR/Portland", "Music/CDs"]``
        (resolved against the session peer's namespace).
        """
        if not isinstance(area, InterestArea):
            area = self._session.peer.namespace.area(list(area))
        return self.urn(str(InterestAreaURN.for_area(area)))

    def url(self, url: str, path: str | None = None) -> "QueryBuilder":
        """Query a concrete resource location directly."""
        return self._start(PlanBuilder.url(url, path))

    def data(
        self, items: "Sequence[XMLElement] | XMLElement", name: str | None = None
    ) -> "QueryBuilder":
        """Query verbatim XML data carried inside the plan."""
        return self._start(PlanBuilder.data(items, name))

    def plan(self, plan: QueryPlan) -> "QueryBuilder":
        """Escape hatch: use a pre-built :class:`QueryPlan` as-is.

        The plan is taken structurally complete (including its ``Display``
        root); the builder's structural methods are unavailable after this,
        while the query controls (``prefer``/``within``/``expecting``/
        ``labelled``) still apply.  ``.to()`` cannot retarget a raw plan —
        its ``Display`` target is authoritative and a conflicting ``.to()``
        raises at compile time rather than being silently ignored.
        """
        if self._builder is not None:
            raise APIError("this query already has a fluent body; cannot adopt a raw plan")
        if self._raw is not None:
            raise APIError("this query already has a raw plan")
        self._raw = plan
        return self

    # -- structure (mirrors PlanBuilder one-for-one) ------------------------ #

    def where(self, predicate: "Expression | str") -> "QueryBuilder":
        """Filter by a predicate (textual form accepted); alias: :meth:`select`."""
        return self._chain(self._body().select(predicate))

    # ``select`` is the paper's (and PlanBuilder's) name for the operator.
    select = where

    def project(
        self, columns: Sequence[tuple[str, str]], item_tag: str = "item"
    ) -> "QueryBuilder":
        """Keep only the listed ``(path, output_tag)`` fields."""
        return self._chain(self._body().project(columns, item_tag))

    def join(
        self,
        other: "QueryBuilder | PlanBuilder | PlanNode",
        on: tuple[str, str],
        join_type: str = "inner",
        output_tag: str = "tuple",
    ) -> "QueryBuilder":
        """Equality-join with another query body on ``(left, right)`` paths."""
        return self._chain(self._body().join(self._operand(other), on, join_type, output_tag))

    def union(self, *others: "QueryBuilder | PlanBuilder | PlanNode") -> "QueryBuilder":
        """Bag union with one or more other query bodies."""
        return self._chain(self._body().union(*(self._operand(other) for other in others)))

    def conjoint_or(self, *others: "QueryBuilder | PlanBuilder | PlanNode") -> "QueryBuilder":
        """Conjoint union (§4.2): any one branch suffices."""
        return self._chain(
            self._body().conjoint_or(*(self._operand(other) for other in others))
        )

    def difference(
        self, other: "QueryBuilder | PlanBuilder | PlanNode", key_path: str | None = None
    ) -> "QueryBuilder":
        """Set difference with another query body."""
        return self._chain(self._body().difference(self._operand(other), key_path))

    def aggregate(
        self,
        function: str,
        value_path: str | None = None,
        group_path: str | None = None,
        output_tag: str = "aggregate",
    ) -> "QueryBuilder":
        """Aggregate (optionally grouped) over a value path."""
        return self._chain(self._body().aggregate(function, value_path, group_path, output_tag))

    def count(self) -> "QueryBuilder":
        """Shorthand for an ungrouped count aggregate."""
        return self._chain(self._body().count())

    def order_by(self, path: str, descending: bool = False) -> "QueryBuilder":
        """Sort by the value at ``path``."""
        return self._chain(self._body().order_by(path, descending))

    def top_n(self, limit: int, path: str, descending: bool = True) -> "QueryBuilder":
        """Keep the best ``limit`` items ordered by ``path``."""
        return self._chain(self._body().top_n(limit, path, descending))

    # -- query controls ------------------------------------------------------ #

    def prefer(self, preference: str) -> "QueryBuilder":
        """Set the §4.3 tradeoff: ``complete``, ``current``, or ``fast``."""
        self._prefer = preference
        return self

    def within(self, target_time_ms: float) -> "QueryBuilder":
        """Set the evaluation-time budget in simulated milliseconds."""
        self._target_time_ms = target_time_ms
        return self

    def preferences(self, preferences: QueryPreferences) -> "QueryBuilder":
        """Adopt a fully-built :class:`QueryPreferences` (overrides the above)."""
        self._preferences = preferences
        return self

    def expecting(self, answers: int) -> "QueryBuilder":
        """Declare the ground-truth answer count (drives recall metrics)."""
        self._expected = answers
        return self

    def labelled(self, query_id: str) -> "QueryBuilder":
        """Pin the query id (deterministic ids keep reports reproducible)."""
        self._query_id = query_id
        return self

    def to(self, target_address: str) -> "QueryBuilder":
        """Deliver the answer to another peer (default: the issuing session)."""
        self._target = target_address
        return self

    # -- terminals ------------------------------------------------------------ #

    def compile(self) -> QueryPlan:
        """Compile to the :class:`QueryPlan` that would be submitted."""
        if self._raw is not None:
            if self._target is not None and self._target != self._raw.target:
                raise APIError(
                    "cannot retarget a raw plan with .to(); the adopted plan "
                    f"already delivers to {self._raw.target!r}"
                )
            return self._raw
        if self._builder is None:
            raise APIError(
                "the query has no source; start with .urn()/.area()/.url()/"
                ".data() or adopt a plan with .plan()"
            )
        return self._builder.display(self._target or self._session.address)

    def build_preferences(self) -> QueryPreferences:
        """The :class:`QueryPreferences` the submission will carry."""
        if self._preferences is not None:
            return self._preferences
        return QueryPreferences(
            target_time_ms=self._target_time_ms,
            prefer=self._prefer if self._prefer is not None else "complete",
        )

    def submit(self) -> "QueryHandle":
        """Issue the query at the session's peer; answers resolve the handle."""
        return self._session.submit(
            self.compile(),
            preferences=self.build_preferences(),
            expected_answers=self._expected,
            query_id=self._query_id,
        )

    def subscribe(self) -> "Subscription":
        """Register the query as a standing query instead of answering once.

        Requires ``repro.perf.flags.continuous_queries`` and a subscribable
        shape (select/project over one interest-area source); deltas flow
        to the issuing session as publishers mutate matching data.
        """
        return self._session.subscribe(self)

    # -- internals ------------------------------------------------------------- #

    def _start(self, builder: PlanBuilder) -> "QueryBuilder":
        if self._raw is not None:
            raise APIError("this query adopted a raw plan; structural methods are unavailable")
        if self._builder is not None:
            raise APIError(
                "the query already has a source; combine plans with "
                ".join()/.union()/.conjoint_or() instead"
            )
        self._builder = builder
        return self

    def _chain(self, builder: PlanBuilder) -> "QueryBuilder":
        self._builder = builder
        return self

    def _body(self) -> PlanBuilder:
        if self._raw is not None:
            raise APIError("this query adopted a raw plan; structural methods are unavailable")
        if self._builder is None:
            raise APIError(
                "the query has no source yet; start with .urn()/.area()/.url()/.data()"
            )
        return self._builder

    @staticmethod
    def _operand(other: "QueryBuilder | PlanBuilder | PlanNode") -> "PlanBuilder | PlanNode":
        if isinstance(other, QueryBuilder):
            return other._body()
        return other

    def __repr__(self) -> str:
        if self._raw is not None:
            shape = "raw-plan"
        elif self._builder is None:
            shape = "empty"
        else:
            shape = type(self._builder.node).__name__
        return f"QueryBuilder(session={self._session.address!r}, {shape})"
