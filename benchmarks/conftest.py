"""Shared helpers for the benchmark suite.

Every benchmark prints the table or series it reproduces (the measurable
version of one of the paper's figures or qualitative claims) and uses
``pytest-benchmark`` to time the core operation involved.  Workload sizes
are kept small enough that the whole suite runs in a couple of minutes.
"""

from __future__ import annotations

import pytest


def emit(title: str, body: str) -> None:
    """Print a reproduced table/series under a recognizable banner."""
    print(f"\n=== {title} ===\n{body}\n")


@pytest.fixture(scope="session")
def garage_sale_small():
    """A small, deterministic garage-sale population shared across benches."""
    from repro.workloads import GarageSaleConfig, GarageSaleWorkload

    return GarageSaleWorkload(GarageSaleConfig(sellers=16, mean_items_per_seller=8, seed=11))
