"""The per-server optimizer (the "Optimizer" box of Figure 2).

Every server that receives a mutant query plan re-optimizes it with purely
local knowledge: the standard algebraic rules, then the availability-aware
MQP rules, and finally cost estimation of the locally-evaluable sub-plans
so the policy manager can decide what to evaluate and what to defer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algebra.operators import PlanNode
from ..algebra.plan import QueryPlan
from ..engine.cost import CostEstimate, CostModel
from .mqp_rules import AvailabilityCheck, deferrable_nodes, mqp_rules
from .rewrite import RewriteEngine, RewriteResult
from .rules import standard_rules

__all__ = ["OptimizationOutcome", "Optimizer"]


@dataclass
class OptimizationOutcome:
    """The optimizer's output handed to the policy manager."""

    plan: QueryPlan
    rewrites: RewriteResult
    evaluable: list[PlanNode] = field(default_factory=list)
    estimates: dict[int, CostEstimate] = field(default_factory=dict)
    deferrable: list[PlanNode] = field(default_factory=list)

    def estimate_for(self, node: PlanNode) -> CostEstimate | None:
        """Return the cost estimate computed for an evaluable sub-plan."""
        return self.estimates.get(node.node_id)

    @property
    def fired_rules(self) -> list[str]:
        """Names of rewrite rules that fired, in order."""
        return self.rewrites.fired_rules


class Optimizer:
    """Rewrites a plan and costs its locally evaluable sub-plans.

    Parameters
    ----------
    cost_model:
        Model used for estimates and for the absorption / deferment tests.
    use_mqp_rules:
        Disable to get a "classical only" optimizer — used by the ablation
        benchmark to quantify what the MQP-specific rewrites buy.
    """

    def __init__(self, cost_model: CostModel | None = None, use_mqp_rules: bool = True) -> None:
        self.cost_model = cost_model or CostModel()
        self.use_mqp_rules = use_mqp_rules

    def optimize(
        self,
        plan: QueryPlan,
        available: AvailabilityCheck | None = None,
    ) -> OptimizationOutcome:
        """Optimize ``plan`` given which leaves are locally available.

        The input plan is not modified; the outcome carries the rewritten
        copy, the evaluable sub-plans found in it, their cost estimates and
        the subset the deferment heuristic recommends skipping.
        """
        availability: AvailabilityCheck = available or (lambda leaf: False)

        rules = standard_rules()
        if self.use_mqp_rules:
            rules = rules + mqp_rules(availability, self.cost_model)
        engine = RewriteEngine(rules)
        rewritten = engine.rewrite_plan(plan)

        evaluable = rewritten.plan.evaluable_subplans(availability)
        estimates = {node.node_id: self.cost_model.estimate(node) for node in evaluable}
        deferred = deferrable_nodes(rewritten.plan, availability, self.cost_model)

        return OptimizationOutcome(
            plan=rewritten.plan,
            rewrites=rewritten,
            evaluable=evaluable,
            estimates=estimates,
            deferrable=deferred,
        )
