"""Query routing strategies: catalog-driven MQP routing plus the baselines.

The paper's own routing is implemented by the catalog / peer machinery
(:mod:`repro.catalog`, :mod:`repro.peers`); this package holds the
comparison baselines: Gnutella-style broadcast, Napster-style central
indexing, and Crespo & Garcia-Molina routing indices.
"""

from .gnutella import GnutellaHit, GnutellaPeer, GnutellaQuery
from .napster import NapsterIndexServer, NapsterPeer
from .routing_index import RoutingIndexPeer

__all__ = [
    "GnutellaPeer",
    "GnutellaQuery",
    "GnutellaHit",
    "NapsterIndexServer",
    "NapsterPeer",
    "RoutingIndexPeer",
]
