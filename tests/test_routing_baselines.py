"""Tests for the Gnutella, Napster, and routing-index baselines."""


from repro.network import Network, random_topology
from repro.routing import GnutellaPeer, NapsterIndexServer, NapsterPeer, RoutingIndexPeer
from tests.conftest import make_item


def _cell(namespace, city, category):
    return namespace.cell(city, category)


class TestGnutella:
    def _build(self, namespace, peer_count=8, degree=3):
        network = Network()
        addresses = [f"g{i}:1" for i in range(peer_count)]
        topology = random_topology(addresses, degree=degree, seed=4)
        peers = []
        for index, address in enumerate(addresses):
            peer = GnutellaPeer(address, topology)
            network.register(peer)
            peers.append(peer)
        return network, peers

    def test_broadcast_reaches_data_within_horizon(self, namespace):
        network, peers = self._build(namespace)
        cell = _cell(namespace, "USA/OR/Portland", "Music/CDs")
        peers[3].add_items(cell, [make_item("Abbey Road", 8)])
        peers[5].add_items(cell, [make_item("Blue Train", 6)])
        area = namespace.area(["USA/OR/Portland", "Music/CDs"])
        query_id = peers[0].issue_query(area, horizon=4)
        network.run_until_idle()
        assert len(peers[0].results_for(query_id)) == 2

    def test_small_horizon_misses_rare_content(self, namespace):
        """The paper's claim: broadcasting 'hurts result quality by limiting
        the availability of rare content'."""
        network, peers = self._build(namespace, peer_count=12, degree=2)
        cell = _cell(namespace, "USA/OR/Portland", "Music/CDs")
        # Put the only copy far from the origin in the ring-ish topology.
        holder = peers[6]
        holder.add_items(cell, [make_item("Rare", 5)])
        area = namespace.area(["USA/OR/Portland", "Music/CDs"])
        short = peers[0].issue_query(area, horizon=1)
        network.run_until_idle()
        long = peers[0].issue_query(area, horizon=8)
        network.run_until_idle()
        assert len(peers[0].results_for(short)) <= len(peers[0].results_for(long))
        assert len(peers[0].results_for(long)) == 1

    def test_broadcast_message_volume_grows_with_horizon(self, namespace):
        area = namespace.area(["USA/OR/Portland", "Music/CDs"])
        network1, peers1 = self._build(namespace, peer_count=16, degree=4)
        peers1[0].issue_query(area, horizon=1)
        network1.run_until_idle()
        messages_h1 = network1.metrics.messages_sent
        network2, peers2 = self._build(namespace, peer_count=16, degree=4)
        peers2[0].issue_query(area, horizon=4)
        network2.run_until_idle()
        assert network2.metrics.messages_sent > messages_h1

    def test_duplicate_queries_not_reflooded(self, namespace):
        network, peers = self._build(namespace, peer_count=6, degree=3)
        area = namespace.area(["USA/OR/Portland", "*"])
        peers[0].issue_query(area, horizon=5)
        network.run_until_idle()
        # every peer sees the query at most once
        for peer in peers:
            assert len(peer.seen_queries) <= 1


class TestNapster:
    def _build(self, namespace):
        network = Network()
        index = NapsterIndexServer("central:1")
        network.register(index)
        peers = []
        for i in range(4):
            peer = NapsterPeer(f"n{i}:1", "central:1")
            network.register(peer)
            peers.append(peer)
        return network, index, peers

    def test_publish_then_query_fetches_from_owners(self, namespace):
        network, index, peers = self._build(namespace)
        cell = _cell(namespace, "USA/OR/Portland", "Music/CDs")
        peers[1].publish(cell, [make_item("Abbey Road", 8)])
        peers[2].publish(cell, [make_item("Blue Train", 6)])
        network.run_until_idle()
        assert len(index.records) == 2
        area = namespace.area(["USA/OR/Portland", "Music/CDs"])
        query_id = peers[0].issue_query(area)
        network.run_until_idle()
        assert len(peers[0].results_for(query_id)) == 2
        assert index.lookups_served == 1

    def test_all_queries_go_through_the_central_index(self, namespace):
        network, index, peers = self._build(namespace)
        area = namespace.area(["USA/OR/Portland", "*"])
        for peer in peers:
            peer.issue_query(area)
        network.run_until_idle()
        assert index.lookups_served == len(peers)

    def test_query_with_no_matches_completes(self, namespace):
        network, index, peers = self._build(namespace)
        area = namespace.area(["France", "*"])
        query_id = peers[0].issue_query(area)
        network.run_until_idle()
        assert peers[0].results_for(query_id) == []
        assert network.metrics.trace(query_id).completed_at is not None


class TestRoutingIndex:
    def _build(self, namespace, peer_count=6):
        network = Network()
        addresses = [f"r{i}:1" for i in range(peer_count)]
        topology = random_topology(addresses, degree=3, seed=9)
        peers = []
        for address in addresses:
            peer = RoutingIndexPeer(address, namespace, topology)
            network.register(peer)
            peers.append(peer)
        return network, peers

    def test_advertisements_build_routing_index(self, namespace):
        network, peers = self._build(namespace)
        cell = _cell(namespace, "USA/OR/Portland", "Music/CDs")
        peers[2].add_items(cell, [make_item("Abbey Road", 8)])
        for peer in peers:
            peer.advertise()
        network.run_until_idle()
        neighbor_of_holder = peers[2].neighbors()[0]
        holder_counts = next(p for p in peers if p.address == neighbor_of_holder).routing_index["r2:1"]
        assert holder_counts["Music"] == 1

    def test_query_guided_to_promising_neighbor(self, namespace):
        network, peers = self._build(namespace)
        cell = _cell(namespace, "USA/OR/Portland", "Music/CDs")
        holder = peers[3]
        holder.add_items(cell, [make_item("Abbey Road", 8), make_item("Blue Train", 6)])
        for peer in peers:
            peer.advertise()
        network.run_until_idle()
        area = namespace.area(["USA/OR/Portland", "Music/CDs"])
        query_id = peers[0].issue_query(area, wanted=2)
        network.run_until_idle()
        # Guided search forwards one query per hop instead of flooding.
        trace = network.metrics.trace(query_id)
        assert trace.answers >= 0
        forwarded = network.metrics.messages_by_kind["ri-query"]
        assert forwarded <= len(peers)

    def test_local_results_complete_without_forwarding(self, namespace):
        network, peers = self._build(namespace)
        cell = _cell(namespace, "USA/OR/Portland", "Music/CDs")
        peers[0].add_items(cell, [make_item("Abbey Road", 8)])
        area = namespace.area(["USA/OR/Portland", "Music/CDs"])
        query_id = peers[0].issue_query(area, wanted=1)
        network.run_until_idle()
        assert len(peers[0].results_for(query_id)) == 1
        assert network.metrics.messages_by_kind["ri-query"] == 0
