"""Statistical experiment matrices over the scale-out harness.

The harness runs one seeded scenario; this package runs *grids* of them —
scenario × seed × repeat — streams one row per run to JSONL/CSV, and
reduces every cell to a Wilson confidence interval on answer completeness
plus a two-proportion z-test against a baseline cell.  The statistics
(:mod:`repro.experiments.stats`) are dependency-free so the analysis layer
never drags in more than the simulator already needs.

Programmatic entry point::

    from repro.experiments import ExperimentSpec, run_experiment

Command line::

    repro experiment --scenarios smoke,free-riders --seeds 11,17 --repeats 3
"""

from .grid import (
    ROW_COLUMNS,
    ROW_SCHEMA_VERSION,
    Experiment,
    ExperimentResult,
    ExperimentSpec,
    derive_run_seed,
    run_experiment,
)
from .stats import (
    ConfidenceInterval,
    ZTestResult,
    mean,
    normal_cdf,
    two_prop_ztest,
    wilson_ci,
    z_for_confidence,
)

__all__ = [
    "ROW_COLUMNS",
    "ROW_SCHEMA_VERSION",
    "Experiment",
    "ExperimentResult",
    "ExperimentSpec",
    "derive_run_seed",
    "run_experiment",
    "ConfidenceInterval",
    "ZTestResult",
    "mean",
    "normal_cdf",
    "two_prop_ztest",
    "wilson_ci",
    "z_for_confidence",
]
