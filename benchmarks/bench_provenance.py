"""EXP-PROVENANCE — provenance: spoof detection and its wire-format overhead (§5.1).

One benchmark reproduces the paper's spoofing example: a misbehaving server
binds a competitor's resource to the empty set; the provenance log shows
the plan never visited any server for that resource, which triggers a
verification count query that exposes the discrepancy.  The second
benchmark measures how much carrying provenance and the original plan
inflates the MQP wire size — the cost §5.1 accepts for those benefits.
"""

from __future__ import annotations

from repro.algebra import PlanBuilder
from repro.engine import QueryEngine
from repro.harness import format_table
from repro.mqp import MutantQueryPlan, ProvenanceAction, ProvenanceLog
from repro.xmlmodel import XMLElement, text_element
from conftest import emit


def _records(count: int, seller: str):
    return [
        XMLElement("item", {}, [text_element("title", f"{seller}-{index}"), text_element("price", 5)])
        for index in range(count)
    ]


def test_spoof_detection_with_verification_query(benchmark):
    """Server S binds its own resource A but spoofs competitor T's resource B to empty."""
    a_items = _records(4, "S")
    b_items = _records(3, "T")

    def detect():
        # The spoofed execution: S evaluated A, never visited T for B.
        provenance = ProvenanceLog()
        provenance.add("S:9020", ProvenanceAction.BOUND, 1.0, detail="urn:ForSale:A")
        provenance.add("S:9020", ProvenanceAction.EVALUATED, 2.0, detail="select->4 items")
        provenance.add("S:9020", ProvenanceAction.DELIVERED, 3.0, detail="client:9020")
        suspicious = provenance.suspicious_resources(["urn:ForSale:A", "urn:ForSale:B"])
        # The client sends the verification query count(sigma(B)) to T directly.
        verification = PlanBuilder.data(b_items, name="B").count().build()
        count_items = QueryEngine().evaluate(verification)
        true_count = int(count_items[0].child_text("value"))
        return suspicious, true_count

    suspicious, true_count = benchmark(detect)
    emit(
        "EXP-PROVENANCE  Spoof detection",
        format_table(
            [
                {
                    "suspicious_resources": ", ".join(suspicious),
                    "reported_items_for_B": 0,
                    "verification_count_at_T": true_count,
                    "spoof_detected": true_count > 0,
                }
            ]
        ),
    )
    assert suspicious == ["urn:ForSale:B"]
    assert true_count == 3


def test_provenance_wire_overhead(benchmark):
    items = _records(20, "S")
    plan = PlanBuilder.data(items, name="partial").display("client:9020")

    def sizes():
        bare = MutantQueryPlan(plan.copy())
        bare.original = None
        bare_size = bare.wire_size()

        full = MutantQueryPlan(plan.copy())
        for hop in range(8):
            full.provenance.add(f"peer{hop}:9020", ProvenanceAction.FORWARDED, float(hop), detail=f"peer{hop + 1}:9020")
            full.provenance.add(f"peer{hop}:9020", ProvenanceAction.EVALUATED, float(hop) + 0.5, detail="select->5 items")
        return bare_size, full.wire_size()

    bare_size, full_size = benchmark(sizes)
    overhead = (full_size - bare_size) / bare_size
    emit(
        "EXP-PROVENANCE  Wire-format overhead",
        format_table(
            [
                {"variant": "plan only", "bytes": bare_size},
                {"variant": "plan + original + 16 provenance records", "bytes": full_size},
                {"variant": "relative overhead", "bytes": round(overhead, 3)},
            ]
        ),
    )
    assert full_size > bare_size


if __name__ == "__main__":
    import benchjson

    raise SystemExit(benchjson.run_as_script(__file__))
