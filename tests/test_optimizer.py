"""Tests for the rewrite framework, classical rules, and MQP-specific rules."""


from repro.algebra import (
    ConjointOr,
    Join,
    PlanBuilder,
    Select,
    Union,
    URLRef,
    VerbatimData,
)
from repro.engine import CostModel, QueryEngine
from repro.optimizer import (
    Optimizer,
    RewriteEngine,
    absorption_rule,
    consolidation_rule,
    deferrable_nodes,
    merge_adjacent_selects,
    standard_rules,
)
from repro.xmlmodel import element, text_element
from tests.conftest import make_item


def local_to(address):
    """Availability check: URL leaves on the given host are local."""
    return lambda leaf: isinstance(leaf, URLRef) and leaf.url == address


class TestStandardRules:
    def test_push_select_through_union_figure4a(self, cd_items):
        """Figure 4(a): the price selection is pushed through the seller union."""
        plan = (
            PlanBuilder.url("seller1:9020", "/cds")
            .union(PlanBuilder.url("seller2:9020", "/cds"))
            .select("price < 10")
            .display("client:9020")
        )
        result = RewriteEngine(standard_rules()).rewrite_plan(plan)
        assert "push-select-through-union" in result.fired_rules
        body = result.plan.body
        assert isinstance(body, Union)
        assert all(isinstance(child, Select) for child in body.children)

    def test_push_select_through_conjoint_or(self, cd_items):
        plan = (
            PlanBuilder.url("r:9020", "/a")
            .conjoint_or(PlanBuilder.url("s:9020", "/a"))
            .select("price < 10")
            .plan()
        )
        result = RewriteEngine(standard_rules()).rewrite_plan(plan)
        assert isinstance(result.plan.root, ConjointOr)

    def test_merge_adjacent_selects(self, cd_items):
        plan = PlanBuilder.data(cd_items).select("price < 10").select("price > 3").plan()
        result = RewriteEngine([merge_adjacent_selects]).rewrite_plan(plan)
        assert result.count("merge-adjacent-selects") == 1
        assert isinstance(result.plan.root, Select)
        assert not isinstance(result.plan.root.child, Select)

    def test_rewrites_preserve_semantics(self, cd_items):
        plan = (
            PlanBuilder.data(cd_items[:3], name="a")
            .union(PlanBuilder.data(cd_items[3:], name="b"))
            .select("price < 10")
            .plan()
        )
        before = QueryEngine().evaluate(plan)
        rewritten = RewriteEngine(standard_rules()).rewrite_plan(plan).plan
        after = QueryEngine().evaluate(rewritten)
        assert {item.child_text("title") for item in before} == {
            item.child_text("title") for item in after
        }

    def test_original_plan_untouched(self, cd_items):
        plan = PlanBuilder.data(cd_items).select("a = 1").select("b = 2").plan()
        RewriteEngine(standard_rules()).rewrite_plan(plan)
        assert isinstance(plan.root.child, Select)


class TestConsolidation:
    def test_join_distributed_over_union_when_one_branch_local(self):
        listings = [element("CD", {}, text_element("title", "A"))]
        plan = (
            PlanBuilder.url("local:9020", "/cds")
            .union(PlanBuilder.url("remote:9020", "/cds"))
            .join(PlanBuilder.data(listings, name="tl"), on=("//title", "//title"))
            .plan()
        )
        rule = consolidation_rule(local_to("local:9020"))
        result = RewriteEngine([rule]).rewrite_plan(plan)
        assert result.count("consolidation") == 1
        assert isinstance(result.plan.root, Union)
        assert all(isinstance(child, Join) for child in result.plan.root.children)

    def test_no_rewrite_when_all_branches_remote(self):
        listings = [element("CD", {}, text_element("title", "A"))]
        plan = (
            PlanBuilder.url("remote1:9020", "/cds")
            .union(PlanBuilder.url("remote2:9020", "/cds"))
            .join(PlanBuilder.data(listings), on=("//title", "//title"))
            .plan()
        )
        result = RewriteEngine([consolidation_rule(local_to("local:9020"))]).rewrite_plan(plan)
        assert result.count("consolidation") == 0

    def test_no_rewrite_when_other_side_remote(self):
        plan = (
            PlanBuilder.url("local:9020", "/cds")
            .union(PlanBuilder.url("remote:9020", "/cds"))
            .join(PlanBuilder.url("elsewhere:9020", "/tl"), on=("//title", "//title"))
            .plan()
        )
        result = RewriteEngine([consolidation_rule(local_to("local:9020"))]).rewrite_plan(plan)
        assert result.count("consolidation") == 0


class TestAbsorption:
    def _three_way_plan(self, a_items, b_items):
        return (
            PlanBuilder.data(a_items, name="A")
            .join(PlanBuilder.url("remote:9020", "/x"), on=("//seller", "//seller"))
            .join(PlanBuilder.data(b_items, name="B"), on=("//title", "//title"))
            .plan()
        )

    def test_absorption_fires_when_prejoin_is_small(self):
        a_items = [make_item(f"t{i}", 5, seller=f"s{i}") for i in range(6)]
        b_items = [make_item("t0", 5)]
        plan = self._three_way_plan(a_items, b_items)
        rule = absorption_rule(lambda leaf: isinstance(leaf, VerbatimData), CostModel())
        result = RewriteEngine([rule]).rewrite_plan(plan)
        assert result.count("absorption") == 1
        root = result.plan.root
        assert isinstance(root, Join)
        assert isinstance(root.left, Join)
        assert isinstance(root.right, URLRef)

    def test_absorption_skipped_when_outer_key_not_in_a(self):
        """The Figure 3 shape: the outer join key (song) comes from the remote input."""
        a_items = [make_item(f"t{i}", 5) for i in range(3)]
        b_items = [element("fav", {}, text_element("song", "s1"))]
        plan = (
            PlanBuilder.data(a_items, name="A")
            .join(PlanBuilder.url("remote:9020", "/tl"), on=("//title", "//CD/title"))
            .join(PlanBuilder.data(b_items, name="B"), on=("//song", "//fav/song"))
            .plan()
        )
        rule = absorption_rule(lambda leaf: isinstance(leaf, VerbatimData), CostModel())
        result = RewriteEngine([rule]).rewrite_plan(plan)
        assert result.count("absorption") == 0

    def test_absorption_skipped_when_prejoin_would_grow(self):
        a_items = [make_item("same", 5, seller="s") for _ in range(4)]
        b_items = [make_item("same", 5) for _ in range(50)]
        plan = self._three_way_plan(a_items, b_items)
        rule = absorption_rule(
            lambda leaf: isinstance(leaf, VerbatimData), CostModel(join_selectivity=1.0)
        )
        result = RewriteEngine([rule]).rewrite_plan(plan)
        assert result.count("absorption") == 0


class TestDefermentAndOptimizer:
    def test_deferrable_nodes_flags_exploding_join(self, cd_items):
        plan = (
            PlanBuilder.data(cd_items, name="a")
            .join(PlanBuilder.data(cd_items, name="b"), on=("//seller", "//seller"))
            .plan()
        )
        deferred = deferrable_nodes(plan, lambda leaf: True, CostModel(join_selectivity=1.0))
        assert len(deferred) == 1

    def test_optimizer_outcome_reports_evaluable_and_estimates(self, cd_items):
        plan = (
            PlanBuilder.url("here:9020", "/cds")
            .select("price < 10")
            .join(PlanBuilder.urn("urn:CD:TrackListings"), on=("//title", "//title"))
            .display("client:9020")
        )
        outcome = Optimizer().optimize(plan, local_to("here:9020"))
        assert len(outcome.evaluable) == 1
        estimate = outcome.estimate_for(outcome.evaluable[0])
        assert estimate is not None and estimate.cardinality > 0

    def test_optimizer_without_mqp_rules(self, cd_items):
        plan = (
            PlanBuilder.url("here:9020", "/a")
            .union(PlanBuilder.url("remote:9020", "/a"))
            .join(PlanBuilder.data(cd_items), on=("//title", "//title"))
            .plan()
        )
        with_rules = Optimizer(use_mqp_rules=True).optimize(plan, local_to("here:9020"))
        without_rules = Optimizer(use_mqp_rules=False).optimize(plan, local_to("here:9020"))
        assert "consolidation" in with_rules.fired_rules
        assert "consolidation" not in without_rules.fired_rules

    def test_optimizer_does_not_mutate_input(self, cd_items):
        plan = PlanBuilder.data(cd_items).select("a = 1").select("b = 2").plan()
        size_before = plan.size()
        Optimizer().optimize(plan)
        assert plan.size() == size_before
