"""Wiring the distributed catalog: registration and bootstrap helpers (paper §3.3).

"A base server joining the P2P network needs to register with index or
meta-index servers that intersect with its interest area ... Ideally, the
servers it registers with should include authoritative servers whose union
covers its interest area.  Thus servers with more specific interest areas
push the data about their existence to an authoritative server that covers
them."

Two styles are provided:

* :func:`register_online` drives the registration protocol over the
  simulated network (so registration traffic shows up in the metrics —
  used by the scalability benchmark);
* :func:`register_offline` populates catalogs directly (used by tests and
  by benchmarks that only care about query-time behaviour).

Both implement the same policy: every server registers with the *most
specific* authoritative index/meta-index servers that cover it, falling
back to any overlapping indexer when no single server covers its area.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..catalog import ServerRole
from ..errors import RegistrationError
from ..perf import flags
from .peer import QueryPeer, RegistrationPayload

__all__ = [
    "covering_indexers",
    "register_offline",
    "register_online",
    "seed_with_meta_index",
    "registration_plan",
]


def _indexers(peers: Sequence[QueryPeer]) -> list[QueryPeer]:
    return [
        peer
        for peer in peers
        if {ServerRole.INDEX, ServerRole.META_INDEX} & peer.roles
    ]


def covering_indexers(peer: QueryPeer, indexers: Sequence[QueryPeer]) -> list[QueryPeer]:
    """The index/meta-index servers ``peer`` should register with.

    Preference order: authoritative servers covering the peer's whole area,
    most specific (smallest) first; otherwise any server whose area overlaps.
    With the catalog tier on (and a shard map attached to ``peer``), each
    chosen indexer expands to its whole replica group — registering with
    every group member is what replicates the shard's catalog.
    """
    candidates = [indexer for indexer in indexers if indexer.address != peer.address]
    covering = [
        indexer
        for indexer in candidates
        if indexer.authoritative and indexer.interest_area.covers(peer.interest_area)
    ]
    if covering:
        covering.sort(key=lambda indexer: (-indexer.interest_area.specificity(), indexer.address))
        return _expand_replica_groups(peer, [covering[0]], candidates)
    overlapping = [
        indexer for indexer in candidates if indexer.interest_area.overlaps(peer.interest_area)
    ]
    overlapping.sort(key=lambda indexer: (-indexer.interest_area.specificity(), indexer.address))
    return _expand_replica_groups(peer, overlapping, candidates)


def _expand_replica_groups(
    peer: QueryPeer, chosen: list[QueryPeer], candidates: Sequence[QueryPeer]
) -> list[QueryPeer]:
    """Widen each chosen indexer to its full replica group (catalog tier)."""
    shard_map = peer.shard_map
    if not flags.catalog_tier or shard_map is None:
        return chosen
    by_address = {candidate.address: candidate for candidate in candidates}
    expanded: list[QueryPeer] = []
    seen: set[str] = set()
    for indexer in chosen:
        group = shard_map.group_of(indexer.address)
        members = group.members if group is not None else (indexer.address,)
        for address in members:
            target = by_address.get(address)
            if target is None and address == indexer.address:
                target = indexer
            if target is not None and target.address not in seen:
                seen.add(target.address)
                expanded.append(target)
    return expanded


def registration_plan(peers: Sequence[QueryPeer]) -> list[tuple[str, str]]:
    """Return (registering peer, indexer) pairs the policy would produce."""
    indexers = _indexers(peers)
    plan: list[tuple[str, str]] = []
    for peer in peers:
        if ServerRole.CLIENT in peer.roles and len(peer.roles) == 1:
            continue
        for indexer in covering_indexers(peer, indexers):
            plan.append((peer.address, indexer.address))
    return plan


def register_offline(peers: Sequence[QueryPeer]) -> int:
    """Directly populate catalogs according to the registration policy.

    Returns the number of registrations performed.  Both directions are
    recorded: the indexer learns the registering server's entry (with
    statements and named resources), and the registering server learns the
    indexer's entry so it can route future plans.
    """
    indexers = {peer.address: peer for peer in _indexers(peers)}
    by_address = {peer.address: peer for peer in peers}
    count = 0
    for registering_address, indexer_address in registration_plan(peers):
        registering = by_address[registering_address]
        indexer = indexers[indexer_address]
        payload = RegistrationPayload(
            entry=registering.server_entry(),
            statements=list(registering.statements),
            named_resources=list(registering.catalog.named_resources.values()),
        )
        if indexer.roles & {ServerRole.META_INDEX}:
            payload.entry.collections = []
        indexer.catalog.register_server(payload.entry)
        for statement in payload.statements:
            indexer.catalog.register_statement(statement)
        for named in payload.named_resources:
            indexer.catalog.register_named_resource(named)
        registering.learn_about(indexer.server_entry())
        # Remember where we registered so a rejoin after churn can
        # re-propagate the registration over the network.
        if indexer_address not in registering.registration_targets:
            registering.registration_targets.append(indexer_address)
        count += 1
    return count


def register_online(peers: Sequence[QueryPeer]) -> int:
    """Run the registration protocol over the simulated network.

    Every peer must already be attached to a network.  Returns the number
    of registration messages initiated; callers should then run the
    simulator so acknowledgements flow back.
    """
    indexers = _indexers(peers)
    count = 0
    for peer in peers:
        if peer.network is None:
            raise RegistrationError(f"{peer.address} is not attached to a network")
        if ServerRole.CLIENT in peer.roles and len(peer.roles) == 1:
            continue
        for indexer in covering_indexers(peer, indexers):
            # The registering peer must know the indexer's address to push
            # to it (bootstrap is out-of-band, §3.2), so record it first.
            peer.learn_about(indexer.server_entry())
            peer.register_with(indexer.address)
            count += 1
    return count


def seed_with_meta_index(clients: Iterable[QueryPeer], meta_servers: Iterable[QueryPeer]) -> None:
    """Give clients their out-of-band knowledge of top-level meta-index servers.

    The paper notes a peer joining for the first time "will have to discover
    category servers, and also meta-index servers that serve top-level
    categories ... for example by doing a search on a web search engine".
    """
    meta_entries = [server.server_entry() for server in meta_servers]
    for client in clients:
        for entry in meta_entries:
            client.learn_about(entry)
