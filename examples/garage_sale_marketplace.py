"""A larger garage-sale marketplace: strategy comparison and QoS tradeoffs.

Run with::

    python examples/garage_sale_marketplace.py

Opens with the public client API (``repro.api``): a small marketplace
cluster where one seller crashes mid-deployment, showing how a
:class:`~repro.api.QueryHandle` degrades loudly to a *partial* answer
instead of silently losing results.  Then generates a synthetic
marketplace (sellers with Zipf-skewed city and category specialties), runs
the same query batch under catalog-routed mutant query plans,
Gnutella-style broadcast, a Napster-style central index, and routing
indices, and prints the comparison table.  Finally it shows the §4.3
completeness/currency/latency tradeoff for a replicated deployment under
different time budgets.
"""

from __future__ import annotations

from repro.api import Cluster, QueryPreferences
from repro.catalog import (
    Binder,
    Catalog,
    CollectionRef,
    IntensionalStatement,
    ServerEntry,
    ServerRole,
)
from repro.harness import compare_routing_strategies, format_table
from repro.qos import TradeoffPlanner
from repro.workloads import GarageSaleConfig, GarageSaleWorkload, QueryWorkload


def fluent_api_with_partial_answers() -> None:
    """One fluent query surviving a seller crash (degrading to a partial answer)."""
    workload = GarageSaleWorkload(GarageSaleConfig(sellers=6, mean_items_per_seller=8, seed=7))
    namespace = workload.namespace
    with Cluster(namespace=namespace, notify_unreachable=True) as cluster:
        sessions = []
        for seller in workload.sellers:
            session = cluster.base_server(seller.address, seller.area)
            session.publish("items", seller.items)
            sessions.append(session)
        cluster.meta_index("meta-index:9020")
        buyer = cluster.client("buyer:9020")
        cluster.connect()

        # One seller drops off the network without notice.
        crashed = sessions[0]
        crashed.crash()

        # Query all sporting goods: the Dallas seller still answers, the
        # crashed Paris seller cannot — the plan reroutes around the
        # failure and the answer degrades to a *partial* result, loudly
        # flagged on the handle instead of silently shrinking.
        area = namespace.area(["*", "SportingGoods"])
        expected = workload.ground_truth_count(area, None)
        handle = (
            buyer.query()
            .area(area)
            .where("category contains 'SportingGoods'")
            .expecting(expected)
            .submit()
        )
        result = handle.result(timeout=120_000)
        print(
            f"Sporting-goods query with {crashed.address} crashed: "
            f"{result.count}/{expected} items, partial={result.partial}, "
            f"recall {handle.trace().recall:.2f}\n"
        )


def strategy_comparison() -> None:
    workload = GarageSaleWorkload(GarageSaleConfig(sellers=20, mean_items_per_seller=8, seed=7))
    queries = QueryWorkload(workload.namespace, seed=19).batch(5)
    print(f"Marketplace: {len(workload.sellers)} sellers, {len(workload.all_items())} items, 5 queries\n")
    rows = compare_routing_strategies(workload, queries, gnutella_horizon=3)
    print(
        format_table(
            rows,
            ["strategy", "messages", "bytes", "mean_peers_per_query", "mean_latency_ms", "mean_recall"],
            title="Routing strategy comparison",
        )
    )


def qos_tradeoffs() -> None:
    workload = GarageSaleWorkload(GarageSaleConfig(sellers=4, seed=7))
    namespace = workload.namespace
    portland = namespace.area(["USA/OR/Portland", "*"])
    catalog = Catalog("client")
    for address in ("archive:9020", "mirror-a:9020", "mirror-b:9020"):
        catalog.register_server(
            ServerEntry(address, ServerRole.BASE, portland, collections=[CollectionRef(address, "/items")])
        )
    catalog.register_statement(
        IntensionalStatement.parse(
            "base[(USA.OR.Portland,*)]@archive:9020 >= base[(USA.OR.Portland,*)]@mirror-a:9020{30}"
        )
    )
    catalog.register_statement(
        IntensionalStatement.parse(
            "base[(USA.OR.Portland,*)]@archive:9020 >= base[(USA.OR.Portland,*)]@mirror-b:9020{30}"
        )
    )
    binding = Binder(catalog).bind_area(namespace.area(["USA/OR/Portland", "Music/CDs"]))
    planner = TradeoffPlanner(per_server_latency_ms=60, base_latency_ms=40)

    rows = []
    for budget in (120, 250, None):
        for prefer in ("complete", "current", "fast"):
            option = planner.choose(binding, QueryPreferences(target_time_ms=budget, prefer=prefer))
            rows.append(
                {
                    "budget_ms": budget if budget is not None else "unbounded",
                    "prefer": prefer,
                    "servers": option.alternative.server_count,
                    "latency_ms": option.predicted_latency_ms,
                    "staleness_min": option.staleness_minutes,
                    "completeness": option.completeness,
                }
            )
    print()
    print(format_table(rows, title="Completeness / currency / latency tradeoffs (section 4.3)"))


def main() -> None:
    fluent_api_with_partial_answers()
    strategy_comparison()
    qos_tradeoffs()


if __name__ == "__main__":
    main()
