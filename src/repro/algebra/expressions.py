"""Scalar expressions used by query-plan predicates and projections.

Predicates in the paper's examples are simple comparisons over values
reached by path expressions inside XML data bundles ("price < $10",
"id = 245"), optionally combined with boolean connectives.  Expressions
evaluate against a single XML item (an element representing one data
bundle) and must round-trip through a compact textual form so they can be
carried inside the XML serialization of a mutant query plan.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

from ..errors import PlanError
from ..perf import flags
from ..xmlmodel import XMLElement, evaluate_path_values

__all__ = [
    "Expression",
    "Literal",
    "PathRef",
    "Comparison",
    "And",
    "Or",
    "Not",
    "parse_predicate",
]


class Expression:
    """Base class for scalar and boolean expressions."""

    def evaluate(self, item: XMLElement) -> object:
        """Evaluate this expression against a single XML item."""
        raise NotImplementedError

    def matches(self, item: XMLElement) -> bool:
        """Evaluate as a boolean predicate."""
        return bool(self.evaluate(item))

    def to_text(self) -> str:
        """Serialize to the compact textual predicate form."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.to_text()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Expression) and self.to_text() == other.to_text()

    def __hash__(self) -> int:
        return hash(self.to_text())


@dataclass(frozen=True, eq=False)
class Literal(Expression):
    """A constant string or numeric value."""

    value: object

    def evaluate(self, item: XMLElement) -> object:
        return self.value

    def to_text(self) -> str:
        if isinstance(self.value, (int, float)):
            return repr(self.value)
        return f"'{self.value}'"


@dataclass(frozen=True, eq=False)
class PathRef(Expression):
    """A reference to a value inside the item, located by an XPath-lite path.

    Evaluation returns the first selected value (string), or ``None`` when
    the path selects nothing.
    """

    path: str

    def evaluate(self, item: XMLElement) -> object:
        values = evaluate_path_values(item, self.path)
        return values[0] if values else None

    def evaluate_all(self, item: XMLElement) -> list[str]:
        """Return every value the path selects (used by set-valued predicates)."""
        return evaluate_path_values(item, self.path)

    def to_text(self) -> str:
        return self.path


_OPS = {"=", "!=", "<", "<=", ">", ">=", "contains"}


@dataclass(frozen=True, eq=False)
class Comparison(Expression):
    """A binary comparison between two scalar expressions.

    Numeric comparison is attempted first; when either side does not parse
    as a number the comparison falls back to string semantics, matching the
    loosely typed XML data model.  The ``contains`` operator provides the
    IR-style substring matching the paper contrasts against.
    """

    left: Expression
    op: str
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise PlanError(f"unsupported comparison operator {self.op!r}")

    def evaluate(self, item: XMLElement) -> object:
        left = self.left.evaluate(item)
        right = self.right.evaluate(item)
        if left is None or right is None:
            return False
        if self.op == "contains":
            return str(right).lower() in str(left).lower()
        try:
            left_value: object = float(left)  # type: ignore[arg-type]
            right_value: object = float(right)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            left_value, right_value = str(left), str(right)
        if self.op == "=":
            return left_value == right_value
        if self.op == "!=":
            return left_value != right_value
        if self.op == "<":
            return left_value < right_value  # type: ignore[operator]
        if self.op == "<=":
            return left_value <= right_value  # type: ignore[operator]
        if self.op == ">":
            return left_value > right_value  # type: ignore[operator]
        return left_value >= right_value  # type: ignore[operator]

    def to_text(self) -> str:
        return f"{self.left.to_text()} {self.op} {self.right.to_text()}"


@dataclass(frozen=True, eq=False)
class And(Expression):
    """Logical conjunction of predicates."""

    operands: tuple[Expression, ...]

    def __init__(self, *operands: Expression) -> None:
        object.__setattr__(self, "operands", tuple(operands))
        if len(self.operands) < 2:
            raise PlanError("And needs at least two operands")

    def evaluate(self, item: XMLElement) -> object:
        return all(operand.matches(item) for operand in self.operands)

    def to_text(self) -> str:
        return " and ".join(f"({operand.to_text()})" for operand in self.operands)


@dataclass(frozen=True, eq=False)
class Or(Expression):
    """Logical disjunction of predicates."""

    operands: tuple[Expression, ...]

    def __init__(self, *operands: Expression) -> None:
        object.__setattr__(self, "operands", tuple(operands))
        if len(self.operands) < 2:
            raise PlanError("Or needs at least two operands")

    def evaluate(self, item: XMLElement) -> object:
        return any(operand.matches(item) for operand in self.operands)

    def to_text(self) -> str:
        return " or ".join(f"({operand.to_text()})" for operand in self.operands)


@dataclass(frozen=True, eq=False)
class Not(Expression):
    """Logical negation of a predicate."""

    operand: Expression

    def evaluate(self, item: XMLElement) -> object:
        return not self.operand.matches(item)

    def to_text(self) -> str:
        return f"not ({self.operand.to_text()})"


# --------------------------------------------------------------------------- #
# Parsing of the compact textual predicate form
# --------------------------------------------------------------------------- #

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<lparen>\()|(?P<rparen>\))|(?P<op>!=|<=|>=|=|<|>)"
    r"|(?P<word>and|or|not|contains)(?![\w/])"
    r"|(?P<string>'[^']*')|(?P<number>-?\d+(?:\.\d+)?)"
    r"|(?P<path>[@\w*/][\w@/.\[\]'\"=<>!\-()*]*))"
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if not match or match.end() == position:
            raise PlanError(f"cannot tokenize predicate at: {text[position:]!r}")
        position = match.end()
        for kind in ("lparen", "rparen", "op", "word", "string", "number", "path"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


class _PredicateParser:
    """Recursive-descent parser for the textual predicate grammar."""

    def __init__(self, tokens: Sequence[tuple[str, str]], source: str) -> None:
        self.tokens = list(tokens)
        self.position = 0
        self.source = source

    def parse(self) -> Expression:
        expression = self._parse_or()
        if self.position != len(self.tokens):
            raise PlanError(f"trailing tokens in predicate {self.source!r}")
        return expression

    def _peek(self) -> tuple[str, str] | None:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def _take(self) -> tuple[str, str]:
        token = self._peek()
        if token is None:
            raise PlanError(f"unexpected end of predicate {self.source!r}")
        self.position += 1
        return token

    def _parse_or(self) -> Expression:
        operands = [self._parse_and()]
        while self._peek() == ("word", "or"):
            self._take()
            operands.append(self._parse_and())
        return operands[0] if len(operands) == 1 else Or(*operands)

    def _parse_and(self) -> Expression:
        operands = [self._parse_unary()]
        while self._peek() == ("word", "and"):
            self._take()
            operands.append(self._parse_unary())
        return operands[0] if len(operands) == 1 else And(*operands)

    def _parse_unary(self) -> Expression:
        token = self._peek()
        if token == ("word", "not"):
            self._take()
            return Not(self._parse_unary())
        if token is not None and token[0] == "lparen":
            self._take()
            inner = self._parse_or()
            closing = self._take()
            if closing[0] != "rparen":
                raise PlanError(f"missing ')' in predicate {self.source!r}")
            return inner
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        left = self._parse_operand()
        token = self._peek()
        if token is None or token[0] not in ("op", "word") or (
            token[0] == "word" and token[1] != "contains"
        ):
            raise PlanError(f"expected comparison operator in predicate {self.source!r}")
        op = self._take()[1]
        right = self._parse_operand()
        return Comparison(left, op, right)

    def _parse_operand(self) -> Expression:
        kind, value = self._take()
        if kind == "string":
            return Literal(value[1:-1])
        if kind == "number":
            number = float(value)
            return Literal(int(number) if number.is_integer() else number)
        if kind == "path":
            return PathRef(value)
        raise PlanError(f"unexpected token {value!r} in predicate {self.source!r}")


@lru_cache(maxsize=4096)
def _parse_predicate_cached(stripped: str) -> Expression:
    return _PredicateParser(_tokenize(stripped), stripped).parse()


def parse_predicate(text: str) -> Expression:
    """Parse the compact textual form back into an :class:`Expression`.

    Expression nodes are immutable (frozen dataclasses), so identical
    predicate texts — which recur at every hop of every plan carrying the
    same ``<select>`` — share one memoized AST instead of re-running the
    tokenizer.  The seed-baseline flag restores per-call parsing.
    """
    stripped = text.strip()
    if not stripped:
        raise PlanError("empty predicate")
    if flags.cached_predicates:
        return _parse_predicate_cached(stripped)
    return _PredicateParser(_tokenize(stripped), stripped).parse()
