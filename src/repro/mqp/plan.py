"""The mutant query plan itself: algebra plan + target + provenance + preferences.

A :class:`MutantQueryPlan` packages everything that travels between peers:

* the (partially evaluated) algebraic plan,
* the target address the final result must reach,
* the provenance log (§5.1),
* a copy of the original, unevaluated plan (§5.1: "maintaining the original
  query along with the partially evaluated query also allows a server to
  improve or enhance bindings, or even undo them"),
* the query preferences of §4.3 (time budget plus a binary preference for
  complete versus current answers).

The wire format wraps the plan's XML serialization, so shipping an MQP is
just shipping one XML document.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..algebra import QueryPlan, plan_from_xml, plan_to_xml
from ..errors import PlanError
from ..xmlmodel import XMLElement, parse_xml, serialize_xml
from .provenance import ProvenanceLog

__all__ = ["QueryPreferences", "MutantQueryPlan"]

_query_counter = itertools.count(1)


@dataclass(frozen=True)
class QueryPreferences:
    """The simple tradeoff controls the paper proposes in §4.3.

    ``target_time_ms`` is the query's evaluation-time budget in simulated
    milliseconds (``None`` means unbounded), and ``prefer`` is the binary
    completeness-versus-currency preference, extended with ``fast`` for the
    latency-first behaviour used by several benchmarks.
    """

    target_time_ms: float | None = None
    prefer: str = "complete"

    VALID = ("complete", "current", "fast")

    def __post_init__(self) -> None:
        if self.prefer not in self.VALID:
            raise PlanError(f"preference must be one of {self.VALID}, got {self.prefer!r}")
        if self.target_time_ms is not None and self.target_time_ms <= 0:
            raise PlanError("target_time_ms must be positive")

    def to_xml(self) -> XMLElement:
        attributes: dict[str, object] = {"prefer": self.prefer}
        if self.target_time_ms is not None:
            attributes["target-time-ms"] = f"{self.target_time_ms:g}"
        return XMLElement("preferences", attributes)

    @classmethod
    def from_xml(cls, element: XMLElement) -> "QueryPreferences":
        target = element.get("target-time-ms")
        return cls(
            target_time_ms=float(target) if target is not None else None,
            prefer=element.get("prefer", "complete") or "complete",
        )


@dataclass
class MutantQueryPlan:
    """Everything a peer receives, mutates, and forwards."""

    plan: QueryPlan
    query_id: str = field(default_factory=lambda: f"q{next(_query_counter)}")
    provenance: ProvenanceLog = field(default_factory=ProvenanceLog)
    original: QueryPlan | None = None
    preferences: QueryPreferences = field(default_factory=QueryPreferences)
    issued_at: float = 0.0

    def __post_init__(self) -> None:
        if self.original is None:
            self.original = self.plan.copy()

    # -- convenience ------------------------------------------------------------ #

    @property
    def target(self) -> str | None:
        """The address the fully evaluated result must be sent to."""
        return self.plan.target

    def is_fully_evaluated(self) -> bool:
        """True when the plan is a constant piece of XML data."""
        return self.plan.is_fully_evaluated()

    def remaining_urns(self) -> list[str]:
        """URN strings still unresolved in the plan."""
        return [ref.urn for ref in self.plan.urn_refs()]

    def remaining_urls(self) -> list[str]:
        """URLs still unresolved in the plan."""
        return [ref.url for ref in self.plan.url_refs()]

    def original_resources(self) -> list[str]:
        """The resource names the original query referenced (for spoof checks)."""
        assert self.original is not None
        resources = [ref.urn for ref in self.original.urn_refs()]
        resources.extend(ref.url for ref in self.original.url_refs())
        return resources

    def elapsed_ms(self, now: float) -> float:
        """Simulated time since the query was issued."""
        return max(0.0, now - self.issued_at)

    def over_budget(self, now: float) -> bool:
        """True when the query's time budget has been exhausted."""
        budget = self.preferences.target_time_ms
        return budget is not None and self.elapsed_ms(now) > budget

    # -- wire format --------------------------------------------------------------- #

    def to_xml(self) -> XMLElement:
        """Serialize the complete MQP (plan, original, provenance, preferences)."""
        children = [
            XMLElement("current", {}, [plan_to_xml(self.plan)]),
            self.preferences.to_xml(),
            self.provenance.to_xml(),
        ]
        if self.original is not None:
            children.append(XMLElement("original", {}, [plan_to_xml(self.original)]))
        return XMLElement(
            "mutant-query",
            {"id": self.query_id, "issued-at": f"{self.issued_at:.3f}"},
            children,
        )

    def serialize(self, indent: int | None = None) -> str:
        """The XML string shipped between peers."""
        return serialize_xml(self.to_xml(), indent=indent)

    def wire_size(self) -> int:
        """Size in bytes of the wire encoding (partial results included)."""
        return len(self.serialize().encode("utf-8"))

    @classmethod
    def from_xml(cls, element: XMLElement) -> "MutantQueryPlan":
        """Parse the element form produced by :meth:`to_xml`."""
        if element.tag != "mutant-query":
            raise PlanError(f"expected <mutant-query>, got <{element.tag}>")
        current = element.find("current")
        if current is None or not current.children:
            raise PlanError("<mutant-query> has no <current> plan")
        plan = plan_from_xml(current.children[0])
        original_wrapper = element.find("original")
        original = (
            plan_from_xml(original_wrapper.children[0])
            if original_wrapper is not None and original_wrapper.children
            else None
        )
        preferences_element = element.find("preferences")
        preferences = (
            QueryPreferences.from_xml(preferences_element)
            if preferences_element is not None
            else QueryPreferences()
        )
        provenance_element = element.find("provenance")
        provenance = (
            ProvenanceLog.from_xml(provenance_element)
            if provenance_element is not None
            else ProvenanceLog()
        )
        return cls(
            plan=plan,
            query_id=element.get("id", f"q{next(_query_counter)}"),
            provenance=provenance,
            original=original,
            preferences=preferences,
            issued_at=float(element.get("issued-at", "0") or 0.0),
        )

    @classmethod
    def deserialize(cls, document: str) -> "MutantQueryPlan":
        """Parse the XML string form."""
        return cls.from_xml(parse_xml(document))

    def __repr__(self) -> str:
        return (
            f"MutantQueryPlan({self.query_id!r}, nodes={self.plan.size()}, "
            f"urns={len(self.remaining_urns())}, evaluated={self.is_fully_evaluated()})"
        )
