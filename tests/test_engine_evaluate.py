"""Tests for the local query engine (plan interpreter + physical operators)."""

import pytest

from repro.algebra import PlanBuilder, URLRef
from repro.engine import QueryEngine
from repro.engine.operators import (
    evaluate_aggregate,
    evaluate_difference,
    evaluate_join,
    evaluate_order_by,
    evaluate_project,
    evaluate_select,
    evaluate_top_n,
    evaluate_union,
)
from repro.algebra import parse_predicate
from repro.errors import EvaluationError
from repro.xmlmodel import element, text_element
from tests.conftest import make_item


class TestPhysicalOperators:
    def test_select(self, cd_items):
        cheap = evaluate_select(cd_items, parse_predicate("price < 10"))
        assert {item.child_text("title") for item in cheap} == {"Abbey Road", "Blue Train", "Green Onions"}

    def test_project(self, cd_items):
        projected = evaluate_project(cd_items, [("title", "t"), ("price", "p")], item_tag="row")
        assert projected[0].tag == "row"
        assert projected[0].child_text("t") == "Abbey Road"
        assert len(projected) == len(cd_items)

    def test_join_inner(self):
        left = [make_item("A", 5), make_item("B", 6)]
        right = [
            element("CD", {}, text_element("title", "A"), text_element("song", "s1")),
            element("CD", {}, text_element("title", "C"), text_element("song", "s2")),
        ]
        joined = evaluate_join(left, right, "//title", "//CD/title")
        assert len(joined) == 1
        assert joined[0].tag == "tuple"
        assert len(joined[0].children) == 2

    def test_join_left_outer_keeps_unmatched(self):
        left = [make_item("A", 5), make_item("B", 6)]
        right = [element("CD", {}, text_element("title", "A"))]
        joined = evaluate_join(left, right, "//title", "//title", join_type="left_outer")
        assert len(joined) == 2
        unmatched = [item for item in joined if len(item.children) == 1]
        assert len(unmatched) == 1

    def test_join_multivalued_paths(self):
        favorites = [element("fav", {}, text_element("song", "x"), text_element("song", "y"))]
        listings = [element("CD", {}, text_element("title", "T"), text_element("song", "y"))]
        joined = evaluate_join(favorites, listings, "//song", "//song")
        assert len(joined) == 1

    def test_join_rejects_unknown_type(self):
        with pytest.raises(EvaluationError):
            evaluate_join([], [], "a", "b", join_type="full_outer")

    def test_union_concatenates(self, cd_items):
        merged = evaluate_union([cd_items[:2], cd_items[2:]])
        assert len(merged) == len(cd_items)

    def test_difference_by_key(self, cd_items):
        remaining = evaluate_difference(cd_items, cd_items[:2], key_path="title")
        assert len(remaining) == len(cd_items) - 2

    def test_difference_structural(self, cd_items):
        assert evaluate_difference(cd_items, [item.copy() for item in cd_items]) == []

    def test_aggregate_count_and_avg(self, cd_items):
        count = evaluate_aggregate(cd_items, "count")
        assert count[0].child_text("value") == str(len(cd_items))
        average = evaluate_aggregate(cd_items, "avg", value_path="price")
        assert float(average[0].child_text("value")) == pytest.approx(10.2)

    def test_aggregate_grouped(self, furniture_items):
        groups = evaluate_aggregate(furniture_items, "count", group_path="city")
        assert len(groups) == 3
        by_group = {item.child_text("group"): item.child_text("value") for item in groups}
        assert by_group["USA/OR/Portland"] == "2"

    def test_aggregate_count_on_empty(self):
        result = evaluate_aggregate([], "count")
        assert result[0].child_text("value") == "0"

    def test_aggregate_non_numeric_raises(self, cd_items):
        with pytest.raises(EvaluationError):
            evaluate_aggregate(cd_items, "sum", value_path="title")

    def test_order_by_numeric_and_topn(self, cd_items):
        ordered = evaluate_order_by(cd_items, "price")
        prices = [float(item.child_text("price")) for item in ordered]
        assert prices == sorted(prices)
        top = evaluate_top_n(cd_items, 2, "price", descending=True)
        assert [item.child_text("title") for item in top] == ["Giant Steps", "Kind of Blue"]

    def test_order_by_missing_values_sort_last(self, cd_items):
        items = cd_items + [element("item", {}, text_element("title", "No price"))]
        ordered = evaluate_order_by(items, "price")
        assert ordered[-1].child_text("title") == "No price"


class TestQueryEngine:
    def test_full_plan_evaluation(self, cd_items):
        plan = (
            PlanBuilder.data(cd_items, name="cds")
            .select("price < 10")
            .project([("title", "title")])
            .display("client:9020")
        )
        engine = QueryEngine()
        result = engine.evaluate(plan)
        assert {item.child_text("title") for item in result} == {
            "Abbey Road",
            "Blue Train",
            "Green Onions",
        }
        assert engine.operators_evaluated >= 3

    def test_conjoint_or_falls_back_to_first_branch(self, cd_items):
        plan = (
            PlanBuilder.data(cd_items[:2], name="a")
            .conjoint_or(PlanBuilder.data(cd_items, name="b"))
            .plan()
        )
        assert len(QueryEngine().evaluate(plan)) == 2

    def test_unresolved_leaf_raises(self):
        plan = PlanBuilder.url("remote:9020", "/cds").select("price < 10").plan()
        with pytest.raises(EvaluationError):
            QueryEngine().evaluate(plan)

    def test_resolver_supplies_url_data(self, cd_items):
        def resolver(leaf):
            if isinstance(leaf, URLRef) and leaf.url == "remote:9020":
                return cd_items
            return None

        plan = PlanBuilder.url("remote:9020", "/cds").select("price < 10").plan()
        assert len(QueryEngine(resolver).evaluate(plan)) == 3

    def test_evaluate_collection_wraps_items(self, cd_items):
        collection = QueryEngine().evaluate_collection(PlanBuilder.data(cd_items).build())
        assert collection.tag == "result"
        assert len(collection.children) == len(cd_items)

    def test_multiway_join_matches_central_answer(self, cd_items):
        listings = [
            element("CD", {}, text_element("title", item.child_text("title")), text_element("song", f"s{i}"))
            for i, item in enumerate(cd_items)
        ]
        favorites = [element("fav", {}, text_element("song", "s0")), element("fav", {}, text_element("song", "s2"))]
        plan = (
            PlanBuilder.data(cd_items, name="cds")
            .select("price < 10")
            .join(PlanBuilder.data(listings, name="tl"), on=("//title", "//CD/title"))
            .join(PlanBuilder.data(favorites, name="fav"), on=("//song", "//fav/song"))
            .plan()
        )
        result = QueryEngine().evaluate(plan)
        titles = {title.text for item in result for title in item.iter_tag("title")}
        assert titles == {"Abbey Road", "Blue Train"}
