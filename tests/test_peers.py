"""Tests for peer roles, registration, and end-to-end MQP query processing."""

import pytest

from repro.algebra import PlanBuilder
from repro.catalog import IntensionalStatement, ServerRole
from repro.errors import PeerOffline
from repro.mqp import QueryPreferences
from repro.namespace import InterestAreaURN
from repro.network import Network
from repro.peers import (
    BaseServer,
    ClientPeer,
    IndexServer,
    MetaIndexServer,
    covering_indexers,
    register_offline,
    register_online,
    registration_plan,
    seed_with_meta_index,
)
from tests.conftest import make_item


@pytest.fixture()
def small_network(namespace):
    """Two Portland CD sellers, an Oregon index, a meta-index, and a client."""
    network = Network()
    portland_cds = namespace.area(["USA/OR/Portland", "Music/CDs"])
    seller1 = BaseServer("seller1:9020", namespace, portland_cds)
    seller2 = BaseServer("seller2:9020", namespace, portland_cds)
    index_or = IndexServer("index-or:9020", namespace, namespace.area(["USA/OR", "*"]))
    meta = MetaIndexServer("meta:9020", namespace)
    client = ClientPeer("client:9020", namespace)
    for peer in (seller1, seller2, index_or, meta, client):
        network.register(peer)
    seller1.publish_collection(
        "cds", [make_item("Abbey Road", 8), make_item("Kind of Blue", 12)]
    )
    seller2.publish_collection("cds", [make_item("Blue Train", 6)])
    return network, namespace, seller1, seller2, index_or, meta, client


class TestPublishing:
    def test_publish_collection_registers_self(self, namespace):
        server = BaseServer("s:1", namespace, namespace.area(["USA/OR/Portland", "Music/CDs"]))
        reference = server.publish_collection("cds", [make_item("A", 5)])
        assert reference.path == "/cds"
        assert server.collection_items("cds")[0].child_text("title") == "A"
        entry = server.server_entry()
        assert entry.role is ServerRole.BASE
        assert entry.collections[0].cardinality == 1

    def test_publish_named_resource(self, namespace):
        server = BaseServer("s:1", namespace, namespace.top_area())
        server.publish_collection("cds", [make_item("A", 5)])
        server.publish_named_resource("urn:ForSale:Portland-CDs", "cds")
        assert server.catalog.lookup_named("urn:ForSale:Portland-CDs") is not None
        with pytest.raises(Exception):
            server.publish_named_resource("urn:X:y", "missing")


class TestRegistration:
    def test_covering_indexers_prefers_most_specific_authoritative(self, namespace):
        seller = BaseServer("s:1", namespace, namespace.area(["USA/OR/Portland", "Music/CDs"]))
        index_or = IndexServer("i-or:1", namespace, namespace.area(["USA/OR", "*"]))
        meta = MetaIndexServer("meta:1", namespace)
        chosen = covering_indexers(seller, [meta, index_or])
        assert [peer.address for peer in chosen] == ["i-or:1"]

    def test_registration_plan_links_index_to_meta(self, namespace):
        seller = BaseServer("s:1", namespace, namespace.area(["USA/OR/Portland", "Music/CDs"]))
        index_or = IndexServer("i-or:1", namespace, namespace.area(["USA/OR", "*"]))
        meta = MetaIndexServer("meta:1", namespace)
        client = ClientPeer("c:1", namespace)
        plan = registration_plan([seller, index_or, meta, client])
        assert ("s:1", "i-or:1") in plan
        assert ("i-or:1", "meta:1") in plan
        assert all(source != "c:1" for source, _ in plan)

    def test_register_offline_populates_catalogs(self, small_network):
        network, namespace, seller1, seller2, index_or, meta, client = small_network
        count = register_offline([seller1, seller2, index_or, meta, client])
        assert count >= 3
        assert "seller1:9020" in index_or.catalog.known_addresses()
        assert "index-or:9020" in meta.catalog.known_addresses()
        # Meta-index servers keep only namespace indices (no collection detail).
        assert all(not entry.collections for entry in meta.catalog.servers.values())
        # The registering peer learns about its indexer in return.
        assert "index-or:9020" in seller1.catalog.known_addresses()

    def test_register_online_uses_messages(self, small_network):
        network, namespace, seller1, seller2, index_or, meta, client = small_network
        initiated = register_online([seller1, seller2, index_or, meta, client])
        network.run_until_idle()
        assert initiated >= 3
        assert network.metrics.messages_by_kind["register"] == initiated
        assert network.metrics.messages_by_kind["register-ack"] >= 1
        assert "seller1:9020" in index_or.catalog.known_addresses()

    def test_intensional_statements_travel_with_registration(self, small_network):
        network, namespace, seller1, seller2, index_or, meta, client = small_network
        statement = IntensionalStatement.parse(
            "base[(USA.OR.Portland,Music.CDs)]@seller1:9020 >= "
            "base[(USA.OR.Portland,Music.CDs)]@seller2:9020{15}"
        )
        seller1.announce_statement(statement)
        register_offline([seller1, seller2, index_or, meta, client])
        assert statement in index_or.catalog.statements


class TestEndToEndQuery:
    def _prepare(self, small_network):
        network, namespace, seller1, seller2, index_or, meta, client = small_network
        register_offline([seller1, seller2, index_or, meta, client])
        seed_with_meta_index([client], [meta])
        return network, namespace, client

    def test_query_finds_all_cheap_cds(self, small_network):
        network, namespace, client = self._prepare(small_network)
        area = namespace.area(["USA/OR/Portland", "Music/CDs"])
        plan = PlanBuilder.urn(str(InterestAreaURN.for_area(area))).select("price < 10").display(client.address)
        mqp = client.submit_plan(plan, QueryPreferences(), expected_answers=2)
        network.run_until_idle()
        result = client.results.get(mqp.query_id)
        assert result is not None and not result.partial
        assert {item.child_text("title") for item in result.items} == {"Abbey Road", "Blue Train"}
        trace = network.metrics.trace(mqp.query_id)
        assert trace.recall == pytest.approx(1.0)
        # The §3.4 resolution walk: meta-index, then the state index, then the sellers.
        assert trace.visited.index("meta:9020") < trace.visited.index("index-or:9020")
        assert trace.visited.index("index-or:9020") < trace.visited.index("seller1:9020")

    def test_query_skips_irrelevant_state(self, small_network):
        network, namespace, client = self._prepare(small_network)
        area = namespace.area(["USA/WA/Seattle", "Music/CDs"])
        plan = PlanBuilder.urn(str(InterestAreaURN.for_area(area))).display(client.address)
        mqp = client.submit_plan(plan, QueryPreferences(), expected_answers=0)
        network.run_until_idle()
        result = client.results.get(mqp.query_id)
        assert result is not None
        assert result.count == 0
        trace = network.metrics.trace(mqp.query_id)
        assert "seller1:9020" not in trace.visited
        assert "seller2:9020" not in trace.visited

    def test_failed_seller_yields_partial_answer(self, small_network):
        network, namespace, seller1, seller2, index_or, meta, client = small_network
        register_offline([seller1, seller2, index_or, meta, client])
        seed_with_meta_index([client], [meta])
        seller2.go_offline()
        area = namespace.area(["USA/OR/Portland", "Music/CDs"])
        plan = PlanBuilder.urn(str(InterestAreaURN.for_area(area))).select("price < 10").display(client.address)
        mqp = client.submit_plan(plan, QueryPreferences(), expected_answers=2)
        network.run_until_idle()
        # The plan dies at the offline seller; the system keeps working and
        # the client simply never hears back for this query (no crash).
        trace = network.metrics.trace(mqp.query_id)
        assert network.metrics.dropped_messages >= 1
        assert trace.visited  # the query did travel

    def test_query_result_records_provenance_hops(self, small_network):
        network, namespace, client = self._prepare(small_network)
        area = namespace.area(["USA/OR/Portland", "Music/CDs"])
        plan = PlanBuilder.urn(str(InterestAreaURN.for_area(area))).display(client.address)
        mqp = client.submit_plan(plan, QueryPreferences(), expected_answers=3)
        network.run_until_idle()
        result = client.results.get(mqp.query_id)
        assert result is not None
        assert result.provenance_hops >= 2

    def test_offline_peer_cannot_issue_query(self, small_network):
        """Regression: issuing from an offline peer fails loudly (PeerOffline).

        The seed silently accepted the query and produced no result — the
        plan left through ``send`` and died, with nothing telling the
        caller why.
        """
        network, namespace, client = self._prepare(small_network)
        area = namespace.area(["USA/OR/Portland", "Music/CDs"])
        plan = PlanBuilder.urn(str(InterestAreaURN.for_area(area))).display(client.address)
        client.go_offline()
        with pytest.raises(PeerOffline):
            client.submit_plan(plan, QueryPreferences())
        # The deprecated shim goes through the same check.
        with pytest.warns(DeprecationWarning):
            with pytest.raises(PeerOffline):
                client.issue_query(plan, QueryPreferences())
        client.go_online()
        assert client.submit_plan(plan, QueryPreferences()) is not None
