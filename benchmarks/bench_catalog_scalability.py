"""EXP-SCALE — the distributed catalog scales with the number of peers (§1, §3).

Sweeps the peer population and reports, per size: registration messages
needed to wire the catalog, the largest per-peer catalog footprint (no peer
holds a global catalog), resolution hops per query, messages per query, and
recall.  The paper's scalability argument is that none of these grow like
the all-to-all or central-index alternatives — the per-peer catalog stays
bounded by the peer's interest area, and queries walk a short meta-index →
index → base chain.
"""

from __future__ import annotations

import pytest

from repro.harness import build_mqp_scenario, format_table, run_mqp_queries
from repro.workloads import GarageSaleConfig, GarageSaleWorkload, QueryWorkload
from conftest import emit


def _measure(sellers: int, queries_per_run: int = 4):
    workload = GarageSaleWorkload(
        GarageSaleConfig(sellers=sellers, mean_items_per_seller=6, seed=41)
    )
    scenario = build_mqp_scenario(workload, online_registration=True)
    registration_messages = scenario.network.metrics.messages_by_kind.get("register", 0)
    queries = QueryWorkload(workload.namespace, seed=43).batch(queries_per_run)
    summary = run_mqp_queries(scenario, queries)
    catalog_sizes = [peer.catalog.size() for peer in scenario.peers]
    hops = [
        trace.distinct_peers
        for trace in scenario.network.metrics.traces.values()
        if trace.completed_at is not None
    ]
    return {
        "peers": len(scenario.peers),
        "registration_msgs": registration_messages,
        "max_catalog_size": max(catalog_sizes),
        "mean_catalog_size": sum(catalog_sizes) / len(catalog_sizes),
        "mean_peers_per_query": summary["mean_peers_per_query"],
        "mean_messages_per_query": summary["mean_messages_per_query"],
        "mean_recall": summary["mean_recall"],
        "resolution_hops": (sum(hops) / len(hops)) if hops else 0.0,
    }


def test_catalog_scalability_sweep(benchmark):
    sizes = [8, 16, 32, 64]
    rows = [_measure(size) for size in sizes[:-1]]

    def largest():
        return _measure(sizes[-1])

    rows.append(benchmark.pedantic(largest, rounds=1, iterations=1))
    emit("EXP-SCALE  Peer-count sweep", format_table(rows))

    # Registration traffic grows linearly (one registration per server),
    # not quadratically like all-to-all coordination would.
    assert rows[-1]["registration_msgs"] <= rows[-1]["peers"] * 2
    # No peer's catalog approaches global size.
    assert rows[-1]["max_catalog_size"] < rows[-1]["peers"]
    # Query cost stays bounded (a short resolution chain), independent of scale.
    assert rows[-1]["mean_peers_per_query"] <= rows[0]["mean_peers_per_query"] * 3
    assert all(row["mean_recall"] == pytest.approx(1.0) for row in rows)


def test_per_peer_catalog_stays_local(benchmark):
    workload = GarageSaleWorkload(GarageSaleConfig(sellers=40, mean_items_per_seller=4, seed=47))

    def build():
        scenario = build_mqp_scenario(workload)
        return scenario

    scenario = benchmark.pedantic(build, rounds=1, iterations=1)
    base_catalogs = [peer.catalog.size() for peer in scenario.base_servers]
    index_catalogs = [peer.catalog.size() for peer in scenario.index_servers]
    meta_catalog = scenario.meta_index.catalog.size()
    emit(
        "EXP-SCALE  Catalog footprint by role (40 sellers)",
        format_table(
            [
                {"role": "base server (max)", "catalog_entries": max(base_catalogs)},
                {"role": "index server (max)", "catalog_entries": max(index_catalogs)},
                {"role": "meta-index", "catalog_entries": meta_catalog},
            ]
        ),
    )
    # Base servers know only themselves plus their indexer; index servers know
    # the servers of their own state; only the meta-index sees every indexer.
    assert max(base_catalogs) <= 3
    assert max(index_catalogs) <= len(workload.sellers) + 2
