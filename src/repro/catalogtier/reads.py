"""Read fan-out policies over a replica group (first-answer and quorum).

The wire path routes a mutant plan to one replica at a time (failover
order comes from :meth:`ShardMap.owners`), but hot-area reads that stay
on one peer — registration-time indexer selection, harness-side ground
truth, the stats API — can consult several replica catalogs at once.
Two policies:

* **first-answer** — walk the group in failover order and return the
  first non-empty answer.  Minimum latency, single-replica currency.
* **quorum** — ask every live replica and keep the entries a majority
  agrees on.  One stale or conflicted replica cannot inject a server
  the rest of the group has already pruned.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..catalog import Catalog, ServerEntry, ServerRole, canonical_address
from ..namespace import InterestArea

__all__ = ["first_answer", "quorum_answer"]


def _lookup(
    catalog: Catalog,
    area: InterestArea,
    roles: Iterable[ServerRole] | None,
    require_cover: bool,
) -> list[ServerEntry]:
    if require_cover:
        return catalog.servers_covering(area, roles=roles)
    return catalog.servers_overlapping(area, roles=roles)


def first_answer(
    replicas: Sequence[tuple[str, Catalog]],
    area: InterestArea,
    *,
    roles: Iterable[ServerRole] | None = None,
    require_cover: bool = False,
) -> tuple[str | None, list[ServerEntry]]:
    """The first replica's non-empty answer, in failover order.

    Returns ``(answering_address, entries)``; ``(None, [])`` when every
    replica comes up empty.
    """
    for address, catalog in replicas:
        entries = _lookup(catalog, area, roles, require_cover)
        if entries:
            return address, entries
    return None, []


def quorum_answer(
    replicas: Sequence[tuple[str, Catalog]],
    area: InterestArea,
    *,
    roles: Iterable[ServerRole] | None = None,
    require_cover: bool = False,
) -> list[ServerEntry]:
    """Entries a majority of the queried replicas agree on.

    Entries are identified by canonical server address; each surviving
    address is represented by the first replica's entry for it, and the
    result keeps the deterministic catalog order (address-sorted, the
    order the underlying lookups already produce).
    """
    if not replicas:
        return []
    needed = len(replicas) // 2 + 1
    votes: dict[str, int] = {}
    witness: dict[str, ServerEntry] = {}
    for _, catalog in replicas:
        for entry in _lookup(catalog, area, roles, require_cover):
            key = canonical_address(entry.address)
            votes[key] = votes.get(key, 0) + 1
            witness.setdefault(key, entry)
    return [
        witness[key]
        for key in sorted(witness)
        if votes[key] >= needed
    ]
