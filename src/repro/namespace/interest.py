"""Interest cells, interest areas, and the multi-hierarchic namespace (paper §3.1).

A *multi-hierarchic namespace* is an ordered set of dimensions (categorization
hierarchies).  The coordinates of a data item are an n-tuple of categories,
one per dimension.  An *interest cell* is the cross product of one category
per dimension; an *interest area* is a set of interest cells.  Data providers
describe the data they serve with interest areas, and data consumers phrase
queries with them, so the coverage and overlap relations defined here drive
catalog registration, query routing, and redundancy reasoning.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Iterator, Mapping, Sequence

from ..errors import NamespaceError
from .hierarchy import TOP, CategoryPath, Hierarchy

__all__ = ["InterestCell", "InterestArea", "MultiHierarchicNamespace"]


# Cell-to-cell comparisons dominate every catalog lookup: each test walks the
# coordinate tuples and compares label prefixes.  Cells are immutable value
# objects with precomputed hashes, so the results are memoized process-wide;
# the cache bound comfortably holds the working set of a thousand-peer
# scenario (distinct server-cell × query-cell pairs) without growing without
# limit under adversarial workloads.
@lru_cache(maxsize=1 << 17)
def _cell_covers(mine: "InterestCell", theirs: "InterestCell") -> bool:
    return all(
        ours.covers(other) for ours, other in zip(mine.coordinates, theirs.coordinates)
    )


@lru_cache(maxsize=1 << 17)
def _cell_overlaps(mine: "InterestCell", theirs: "InterestCell") -> bool:
    return all(
        ours.overlaps(other) for ours, other in zip(mine.coordinates, theirs.coordinates)
    )


@dataclass(frozen=True, order=True)
class InterestCell:
    """One category per dimension, e.g. ``[USA/OR/Portland, Furniture]``.

    The tuple is positional: coordinate *i* belongs to dimension *i* of the
    namespace the cell is used with.  Cells are immutable and hashable so
    they can key catalog indexes.
    """

    coordinates: tuple[CategoryPath, ...]

    def __post_init__(self) -> None:
        if not self.coordinates:
            raise NamespaceError("an interest cell needs at least one dimension")
        object.__setattr__(self, "_hash", hash(self.coordinates))

    def __hash__(self) -> int:
        # Precomputed: cells key catalog-trie buckets and the comparison
        # caches, and the coordinate hashes are themselves precomputed.
        return self._hash  # type: ignore[attr-defined]

    @classmethod
    def of(cls, *coordinates: CategoryPath | str) -> "InterestCell":
        """Build a cell from paths or path strings, in dimension order."""
        parsed = tuple(
            CategoryPath.parse(coord) if isinstance(coord, str) else coord
            for coord in coordinates
        )
        return cls(parsed)

    @property
    def dimensionality(self) -> int:
        """Number of dimensions this cell spans."""
        return len(self.coordinates)

    def covers(self, other: "InterestCell") -> bool:
        """True when, per dimension, our category is an ancestor of (or equals) theirs."""
        self._check_compatible(other)
        return _cell_covers(self, other)

    def overlaps(self, other: "InterestCell") -> bool:
        """True when some item could belong to both cells."""
        self._check_compatible(other)
        return _cell_overlaps(self, other)

    def intersect(self, other: "InterestCell") -> "InterestCell | None":
        """Return the most general cell covered by both, or ``None`` if disjoint."""
        self._check_compatible(other)
        met: list[CategoryPath] = []
        for mine, theirs in zip(self.coordinates, other.coordinates):
            meet = mine.meet(theirs)
            if meet is None:
                return None
            met.append(meet)
        return InterestCell(tuple(met))

    def specificity(self) -> int:
        """Total depth across dimensions; larger means more specific."""
        return sum(coordinate.depth for coordinate in self.coordinates)

    def coordinate(self, dimension_index: int) -> CategoryPath:
        """Return the category for the given dimension position."""
        return self.coordinates[dimension_index]

    def _check_compatible(self, other: "InterestCell") -> None:
        if len(self.coordinates) != len(other.coordinates):
            raise NamespaceError(
                "cells span different numbers of dimensions: "
                f"{len(self.coordinates)} vs {len(other.coordinates)}"
            )

    def __str__(self) -> str:
        # Cached: str(cell) feeds str(area), which keys the routing cache
        # and the batched-processing contexts.
        text = self.__dict__.get("_text")
        if text is None:
            text = "[" + ", ".join(str(coord) for coord in self.coordinates) + "]"
            object.__setattr__(self, "_text", text)
        return text


class InterestArea:
    """A set of interest cells describing served data or a query's scope.

    The area keeps only *maximal* cells: adding a cell already covered by an
    existing cell is a no-op, and adding a cell that covers existing cells
    absorbs them.  This keeps coverage/overlap tests proportional to the
    number of genuinely distinct regions.
    """

    def __init__(self, cells: Iterable[InterestCell] = ()) -> None:
        self._cells: list[InterestCell] = []
        for cell in cells:
            self.add(cell)

    # -- construction -------------------------------------------------- #

    @classmethod
    def of(cls, *cells: InterestCell | Sequence[CategoryPath | str]) -> "InterestArea":
        """Build an area from cells or coordinate sequences."""
        area = cls()
        for cell in cells:
            if isinstance(cell, InterestCell):
                area.add(cell)
            else:
                area.add(InterestCell.of(*cell))
        return area

    def add(self, cell: InterestCell) -> None:
        """Add a cell, maintaining the maximal-cell invariant."""
        if not isinstance(cell, InterestCell):
            raise NamespaceError(f"expected InterestCell, got {type(cell).__name__}")
        if self._cells and cell.dimensionality != self._cells[0].dimensionality:
            raise NamespaceError("all cells of an area must span the same dimensions")
        if any(existing.covers(cell) for existing in self._cells):
            return
        self._cells = [existing for existing in self._cells if not cell.covers(existing)]
        self._cells.append(cell)
        self._cells.sort()

    # -- set-like protocol --------------------------------------------- #

    @property
    def cells(self) -> tuple[InterestCell, ...]:
        """The maximal cells of this area, in sorted order."""
        return tuple(self._cells)

    def __iter__(self) -> Iterator[InterestCell]:
        return iter(self._cells)

    def __len__(self) -> int:
        return len(self._cells)

    def __bool__(self) -> bool:
        return bool(self._cells)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InterestArea):
            return NotImplemented
        return self._cells == other._cells

    def __hash__(self) -> int:
        return hash(tuple(self._cells))

    # -- relations ------------------------------------------------------ #

    def covers_cell(self, cell: InterestCell) -> bool:
        """True when some cell of this area covers ``cell``."""
        return any(mine.covers(cell) for mine in self._cells)

    def covers(self, other: "InterestArea") -> bool:
        """True when every cell of ``other`` is covered by a cell of this area."""
        return all(self.covers_cell(cell) for cell in other)

    def overlaps(self, other: "InterestArea") -> bool:
        """True when there exists a cell both areas cover (paper §3.1)."""
        return any(
            mine.overlaps(theirs) for mine in self._cells for theirs in other
        )

    def intersection(self, other: "InterestArea") -> "InterestArea":
        """Return the area of cells covered by both areas."""
        result = InterestArea()
        for mine in self._cells:
            for theirs in other:
                met = mine.intersect(theirs)
                if met is not None:
                    result.add(met)
        return result

    def union(self, other: "InterestArea") -> "InterestArea":
        """Return the area covering everything either area covers."""
        result = InterestArea(self._cells)
        for cell in other:
            result.add(cell)
        return result

    def specificity(self) -> int:
        """Return the minimum specificity across cells (how broad the area is)."""
        if not self._cells:
            return 0
        return min(cell.specificity() for cell in self._cells)

    def __str__(self) -> str:
        return " + ".join(str(cell) for cell in self._cells) if self._cells else "(empty)"

    def __repr__(self) -> str:
        return f"InterestArea({list(map(str, self._cells))})"


class MultiHierarchicNamespace:
    """An ordered collection of dimensions plus validation helpers.

    The namespace is shared application-wide (the paper's garage sale uses
    Location × Merchandise; the gene-expression scenario uses Organism ×
    CellType).  It validates cells against the known hierarchies, builds the
    all-covering top cell/area, and computes how many known leaf cells a
    given area covers — the measure used by the routing benchmarks to
    reason about recall.
    """

    def __init__(self, dimensions: Sequence[Hierarchy]) -> None:
        if not dimensions:
            raise NamespaceError("a namespace needs at least one dimension")
        names = [dimension.name for dimension in dimensions]
        if len(set(names)) != len(names):
            raise NamespaceError(f"duplicate dimension names: {names}")
        self.dimensions: tuple[Hierarchy, ...] = tuple(dimensions)

    # -- basic structure ------------------------------------------------ #

    @property
    def dimension_names(self) -> tuple[str, ...]:
        """Names of the dimensions, in namespace order."""
        return tuple(dimension.name for dimension in self.dimensions)

    def dimension(self, name: str) -> Hierarchy:
        """Return the dimension named ``name``."""
        for candidate in self.dimensions:
            if candidate.name == name:
                return candidate
        raise NamespaceError(f"unknown dimension {name!r}")

    def dimension_index(self, name: str) -> int:
        """Return the position of dimension ``name``."""
        for index, candidate in enumerate(self.dimensions):
            if candidate.name == name:
                return index
        raise NamespaceError(f"unknown dimension {name!r}")

    def top_cell(self) -> InterestCell:
        """Return the cell covering everything (``[*, *, ...]``)."""
        return InterestCell(tuple(TOP for _ in self.dimensions))

    def top_area(self) -> InterestArea:
        """Return the area containing only the top cell."""
        return InterestArea([self.top_cell()])

    # -- construction & validation --------------------------------------- #

    def cell(self, *coordinates: CategoryPath | str) -> InterestCell:
        """Build and validate a cell with one coordinate per dimension."""
        built = InterestCell.of(*coordinates)
        return self.validate_cell(built)

    def cell_from_mapping(self, coordinates: Mapping[str, CategoryPath | str]) -> InterestCell:
        """Build a cell from ``{dimension name: category}``; missing dimensions get ``*``."""
        ordered: list[CategoryPath | str] = []
        unknown = set(coordinates) - set(self.dimension_names)
        if unknown:
            raise NamespaceError(f"unknown dimensions in cell: {sorted(unknown)}")
        for dimension in self.dimensions:
            ordered.append(coordinates.get(dimension.name, TOP))
        return self.cell(*ordered)

    def area(self, *cells: InterestCell | Sequence[CategoryPath | str]) -> InterestArea:
        """Build and validate an interest area."""
        built = InterestArea.of(*cells)
        for cell in built:
            self.validate_cell(cell)
        return built

    def validate_cell(self, cell: InterestCell) -> InterestCell:
        """Check dimensionality and that every coordinate names a known category."""
        if cell.dimensionality != len(self.dimensions):
            raise NamespaceError(
                f"cell {cell} has {cell.dimensionality} coordinates, "
                f"namespace has {len(self.dimensions)} dimensions"
            )
        for coordinate, dimension in zip(cell.coordinates, self.dimensions):
            if coordinate not in dimension:
                raise NamespaceError(
                    f"category {coordinate} is not part of dimension {dimension.name!r}"
                )
        return cell

    def approximate_cell(self, cell: InterestCell) -> InterestCell:
        """Replace unknown coordinates with their deepest known ancestors (§3.5)."""
        if cell.dimensionality != len(self.dimensions):
            raise NamespaceError(
                f"cell {cell} has {cell.dimensionality} coordinates, "
                f"namespace has {len(self.dimensions)} dimensions"
            )
        approximated = tuple(
            dimension.approximate(coordinate)
            for coordinate, dimension in zip(cell.coordinates, self.dimensions)
        )
        return InterestCell(approximated)

    # -- measurement ----------------------------------------------------- #

    def leaf_cells(self) -> list[InterestCell]:
        """Return the cross product of leaf categories (the finest-grained cells)."""
        leaf_lists = [dimension.leaves() for dimension in self.dimensions]
        cells: list[InterestCell] = []
        self._cross(leaf_lists, 0, [], cells)
        return cells

    def _cross(
        self,
        leaf_lists: list[list[CategoryPath]],
        index: int,
        prefix: list[CategoryPath],
        out: list[InterestCell],
    ) -> None:
        if index == len(leaf_lists):
            out.append(InterestCell(tuple(prefix)))
            return
        for leaf in leaf_lists[index]:
            prefix.append(leaf)
            self._cross(leaf_lists, index + 1, prefix, out)
            prefix.pop()

    def coverage_fraction(self, area: InterestArea) -> float:
        """Return the fraction of leaf cells covered by ``area``.

        Used by the experiment harness as a namespace-level proxy for how
        broad a server's holdings or a query's scope is.
        """
        leaves = self.leaf_cells()
        if not leaves:
            return 0.0
        covered = sum(1 for leaf in leaves if area.covers_cell(leaf))
        return covered / len(leaves)

    def __repr__(self) -> str:
        return f"MultiHierarchicNamespace({', '.join(self.dimension_names)})"
