"""The per-peer catalog (the "Catalog" box of Figure 2).

Every peer maintains a local catalog mapping URNs to URLs (or to servers
that can resolve them), recording the servers it knows about together with
their interest areas and roles, and retaining any intensional statements
those servers announced at registration time.  The catalog never claims
global knowledge — "mutant query plans ... allow query optimization and
source discovery to work with whatever information is available locally".

Lookups are served by the trie-backed :class:`~repro.catalog.index.CatalogIndex`
in O(depth + matches); the seed's linear scans survive as private
``_scan_*`` oracles, selected when :data:`repro.perf.flags` disables the
index, and are what the equivalence tests diff the index against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import CatalogError
from ..namespace import InterestArea
from ..perf import flags
from .entries import (
    CollectionRef,
    NamedResourceEntry,
    ServerEntry,
    ServerRole,
    canonical_address,
)
from .index import CatalogIndex, StatementIndex
from .intensional import CatalogLevel, IntensionalStatement

if TYPE_CHECKING:  # pragma: no cover - typing-only import (avoids a cycle)
    from ..catalogtier.answercache import AnswerCache

__all__ = ["Catalog"]


@dataclass
class Catalog:
    """Local knowledge about data, servers, and their relationships."""

    owner: str = "local"
    servers: dict[str, ServerEntry] = field(default_factory=dict)
    named_resources: dict[str, NamedResourceEntry] = field(default_factory=dict)
    statements: list[IntensionalStatement] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._index = CatalogIndex()
        self._statement_index = StatementIndex()
        self._statement_keys: set[IntensionalStatement] = set()
        self.answer_cache: AnswerCache | None = None
        for entry in self.servers.values():
            self._index.add(entry)
        for sequence, statement in enumerate(self.statements):
            self._statement_keys.add(statement)
            self._statement_index.add(sequence, statement)

    def attach_answer_cache(self, cache: "AnswerCache") -> None:
        """Memoize lookup answers in ``cache`` (the sharded tier's hot path).

        Consulted only while :data:`repro.perf.flags.catalog_tier` is on;
        invalidation runs whenever a cache is attached, so toggling the
        flag mid-process can never surface a stale answer.
        """
        self.answer_cache = cache

    # -- registration -------------------------------------------------------- #

    def register_server(self, entry: ServerEntry) -> None:
        """Add or update what we know about a server.

        Re-registration replaces the previous entry for the same address and
        role combination only if the new entry covers at least the old area;
        otherwise areas are merged, so repeated registrations never lose
        knowledge.
        """
        existing = self.servers.get(entry.address)
        if existing is None or entry.covers(existing.area):
            self.servers[entry.address] = entry
            self._index.add(entry)
            self._invalidate_answers(entry.area)
            return
        merged = ServerEntry(
            address=entry.address,
            role=entry.role,
            area=existing.area.union(entry.area),
            authoritative=existing.authoritative or entry.authoritative,
            collections=list({*existing.collections, *entry.collections}),
            registered_at=entry.registered_at,
        )
        self.servers[entry.address] = merged
        self._index.add(merged)
        self._invalidate_answers(merged.area)

    def register_named_resource(self, entry: NamedResourceEntry) -> None:
        """Add resolution data for an application-level URN."""
        existing = self.named_resources.get(entry.name)
        if existing is None:
            self.named_resources[entry.name] = entry
        else:
            existing.merge(entry)

    def register_statement(self, statement: IntensionalStatement) -> None:
        """Retain an intensional statement announced by some server.

        Deduplication is a set-membership test: registration floods replay
        the same statements at every re-propagation, and the seed's
        ``statement not in list`` check made each replay O(statements).
        """
        if statement in self._statement_keys:
            return
        self._statement_keys.add(statement)
        self._statement_index.add(len(self.statements), statement)
        self.statements.append(statement)
        self._invalidate_answers(statement.lhs.area)

    def forget_server(self, address: str) -> None:
        """Drop a server (e.g. after repeated failures)."""
        dropped = self.servers.pop(address, None)
        if dropped is not None:
            self._index.discard(address)
            self._invalidate_answers(dropped.area)

    def prune_server(self, address: str) -> int:
        """Purge everything that routes through an unreachable server.

        Drops the server entry and every named-resource collection or
        resolver pointer hosted at ``address``; named resources left with no
        resolution data disappear entirely.  Returns the number of records
        removed.  A rejoining peer restores its records through registration
        re-propagation, so pruning is safe under churn.
        """
        removed = 0
        pruned = self.servers.pop(address, None)
        if pruned is not None:
            self._index.discard(address)
            self._invalidate_answers(pruned.area)
            removed += 1
        target = canonical_address(address)
        replacements: dict[str, NamedResourceEntry | None] = {}
        for name, entry in self.named_resources.items():
            kept = [
                collection
                for collection in entry.collections
                if canonical_address(collection.url) != target
            ]
            resolvers = [
                server
                for server in entry.resolver_servers
                if canonical_address(server) != target
            ]
            dropped = (len(entry.collections) - len(kept)) + (
                len(entry.resolver_servers) - len(resolvers)
            )
            if not dropped:
                continue
            removed += dropped
            # Entries are shared by reference with the catalogs that
            # registered them (including the origin peer's own), so build a
            # pruned replacement instead of mutating in place.
            replacements[name] = (
                NamedResourceEntry(name, kept, resolvers, entry.area)
                if kept or resolvers
                else None
            )
        for name, replacement in replacements.items():
            if replacement is None:
                del self.named_resources[name]
            else:
                self.named_resources[name] = replacement
        return removed

    # -- lookups --------------------------------------------------------------- #

    def lookup_named(self, name: str) -> NamedResourceEntry | None:
        """Return resolution data for a named URN, if known."""
        return self.named_resources.get(name)

    def servers_overlapping(
        self,
        area: InterestArea,
        roles: tuple[ServerRole, ...] | None = None,
    ) -> list[ServerEntry]:
        """Servers whose interest area overlaps ``area`` (optionally by role)."""
        cached = self._cached_answer("overlap", area, roles)
        if cached is not None:
            return cached
        if flags.indexed_catalog:
            result = self._index.overlapping(area, roles)
        else:
            result = self._scan_overlapping(area, roles)
        self._store_answer("overlap", area, roles, result)
        return result

    def servers_covering(
        self,
        area: InterestArea,
        roles: tuple[ServerRole, ...] | None = None,
    ) -> list[ServerEntry]:
        """Servers whose interest area covers all of ``area``."""
        cached = self._cached_answer("cover", area, roles)
        if cached is not None:
            return cached
        if flags.indexed_catalog:
            result = self._index.covering(area, roles)
        else:
            result = self._scan_covering(area, roles)
        self._store_answer("cover", area, roles, result)
        return result

    def servers_with_roles(self, roles: tuple[ServerRole, ...]) -> list[ServerEntry]:
        """Every known server holding one of ``roles``, in address order."""
        if flags.indexed_catalog:
            return self._index.with_roles(roles)
        return sorted(
            (entry for entry in self.servers.values() if entry.role in roles),
            key=lambda entry: entry.address,
        )

    def authoritative_servers(self, area: InterestArea) -> list[ServerEntry]:
        """Authoritative index / meta-index servers covering ``area``."""
        return [
            entry
            for entry in self.servers_covering(
                area, roles=(ServerRole.INDEX, ServerRole.META_INDEX)
            )
            if entry.authoritative
        ]

    def collections_overlapping(self, area: InterestArea) -> list[CollectionRef]:
        """Base collections indexed here whose owning server overlaps ``area``."""
        collections: list[CollectionRef] = []
        for entry in self.servers_overlapping(area, roles=(ServerRole.BASE,)):
            collections.extend(entry.collections)
        return sorted(collections)

    def statements_for(self, level: CatalogLevel, area: InterestArea) -> list[IntensionalStatement]:
        """Intensional statements applicable to a query over ``area``."""
        if flags.indexed_catalog:
            return self._statement_index.applicable(level, area)
        return [statement for statement in self.statements if statement.applies_to(level, area)]

    # -- answer-cache plumbing ---------------------------------------------------- #
    #
    # Active only with an attached cache *and* flags.catalog_tier on: the
    # key captures the lookup's full identity (kind, roles, area text), and
    # every mutation path above invalidates by area overlap, so a cached
    # answer is always exactly what recomputing would return.

    def _cached_answer(
        self,
        kind: str,
        area: InterestArea,
        roles: tuple[ServerRole, ...] | None,
    ) -> list[ServerEntry] | None:
        if self.answer_cache is None or not flags.catalog_tier:
            return None
        cached = self.answer_cache.get((kind, roles, str(area)))
        return list(cached) if cached is not None else None

    def _store_answer(
        self,
        kind: str,
        area: InterestArea,
        roles: tuple[ServerRole, ...] | None,
        result: list[ServerEntry],
    ) -> None:
        if self.answer_cache is not None and flags.catalog_tier:
            self.answer_cache.put((kind, roles, str(area)), area, tuple(result))

    def _invalidate_answers(self, area: InterestArea) -> None:
        # Unconditional on the flag: a mutation landing while the tier is
        # toggled off must still evict answers cached while it was on.
        if self.answer_cache is not None:
            self.answer_cache.invalidate_overlapping(area)

    # -- linear-scan oracles ------------------------------------------------------ #
    #
    # The seed implementation, kept verbatim: the churn equivalence suite
    # asserts the trie index returns byte-identical results, and the
    # benchmarks measure the index against these under `seed_baseline()`.

    def _scan_overlapping(
        self,
        area: InterestArea,
        roles: tuple[ServerRole, ...] | None = None,
    ) -> list[ServerEntry]:
        matches = [
            entry
            for entry in self.servers.values()
            if entry.overlaps(area) and (roles is None or entry.role in roles)
        ]
        return sorted(matches, key=lambda entry: entry.address)

    def _scan_covering(
        self,
        area: InterestArea,
        roles: tuple[ServerRole, ...] | None = None,
    ) -> list[ServerEntry]:
        matches = [
            entry
            for entry in self.servers.values()
            if entry.covers(area) and (roles is None or entry.role in roles)
        ]
        return sorted(matches, key=lambda entry: entry.address)

    # -- introspection ------------------------------------------------------------ #

    def size(self) -> int:
        """Number of server entries plus named-resource entries plus statements.

        Used by the scalability benchmark as the per-peer catalog footprint.
        """
        return len(self.servers) + len(self.named_resources) + len(self.statements)

    def known_addresses(self) -> list[str]:
        """Addresses of all servers known to this catalog."""
        return sorted(self.servers)

    def require_server(self, address: str) -> ServerEntry:
        """Return the entry for ``address`` or raise."""
        try:
            return self.servers[address]
        except KeyError:
            raise CatalogError(f"{self.owner}: unknown server {address!r}") from None
