"""Clusters: one object that owns the network, transport, topology and churn.

Standing up a scenario used to mean hand-wiring a ``Network``, a transport
backend, role peers, catalog registration, overlay neighbour knowledge and
a churn schedule — in that order, in every harness and example.  A
:class:`Cluster` owns that composition:

    with Cluster(namespace=ns, transport="sim") as cluster:
        seller = cluster.base_server("seller:9020", area)
        seller.publish("cds", items)
        index = cluster.index_server("index-or:9020", state_area)
        meta = cluster.meta_index("meta:9020")
        client = cluster.client("client:9020")
        cluster.connect()                      # catalog registration + client seeding
        handle = client.query().area(area).where("price < 10").submit()
        print(handle.result().items)

The cluster is context-managed: leaving the ``with`` block closes the
transport (sockets, loops) exactly once, on every backend.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from ..catalog import ServerRole
from ..errors import APIError
from ..namespace import InterestArea, MultiHierarchicNamespace
from ..perf import flags
from ..network import (
    ChurnPlan,
    ChurnProfile,
    FailureInjector,
    FaultPlan,
    LatencyModel,
    Network,
    NetworkNode,
    Topology,
    Transport,
    build_transport,
)
from ..peers import (
    BaseServer,
    ClientPeer,
    IndexServer,
    MetaIndexServer,
    QueryPeer,
    register_offline,
    register_online,
    seed_with_meta_index,
)
from .session import Session

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from ..catalogtier import ShardMap
    from ..network import NetworkMetrics

__all__ = ["Cluster"]


class Cluster:
    """Context-managed owner of a network, its transport, and its wiring."""

    def __init__(
        self,
        transport: "Transport | str | None" = None,
        *,
        namespace: MultiHierarchicNamespace | None = None,
        latency: LatencyModel | None = None,
        notify_unreachable: bool = False,
        unreachable_delay_ms: float = 5.0,
        topology: Topology | None = None,
        faults: FaultPlan | None = None,
        workers: int = 0,
    ) -> None:
        if workers < 0:
            raise APIError("workers must be >= 0 (0 = single-process)")
        if workers > 0 and not flags.multiprocess:
            raise APIError(
                "Cluster(workers=...) needs flags.multiprocess; the harness "
                "launcher (repro.multicore.run_multicore) scopes the flag — "
                "or use perf.overrides(multiprocess=True) directly"
            )
        # Advisory at this layer: the Cluster itself always hosts a full
        # in-process network.  The multicore launcher reads the count to
        # shard the peer population across worker processes.
        self.workers = workers
        if transport is None:
            transport = build_transport("sim")
        elif isinstance(transport, str):
            transport = build_transport(transport)
        self.network = Network(
            latency=latency,
            notify_unreachable=notify_unreachable,
            unreachable_delay_ms=unreachable_delay_ms,
            transport=transport,
            faults=faults,
        )
        self.namespace = namespace
        self.topology = topology
        self.churn_plans: list[ChurnPlan] = []
        self._sessions: dict[str, Session] = {}
        self._join_order: list[str] = []

    # -- membership --------------------------------------------------------- #

    def join(self, peer: QueryPeer) -> Session:
        """Register an already-constructed peer and return its session."""
        self.network.register(peer)
        session = Session(self, peer)
        self._sessions[peer.address] = session
        self._join_order.append(peer.address)
        return session

    def add(self, node: NetworkNode) -> NetworkNode:
        """Register a non-:class:`QueryPeer` node (baseline strategies).

        The node shares the cluster's network and lifecycle but gets no
        session — sessions speak the paper's catalog/MQP protocol.
        """
        self.network.register(node)
        return node

    def base_server(self, address: str, area: InterestArea) -> Session:
        """Add a base server holding data within ``area``."""
        return self.join(BaseServer(address, self._require_namespace(), area))

    def index_server(
        self, address: str, area: InterestArea, authoritative: bool = True
    ) -> Session:
        """Add an index server covering ``area``."""
        return self.join(
            IndexServer(address, self._require_namespace(), area, authoritative=authoritative)
        )

    def meta_index(
        self,
        address: str,
        area: InterestArea | None = None,
        authoritative: bool = True,
    ) -> Session:
        """Add a meta-index server (defaults to covering the whole namespace)."""
        return self.join(
            MetaIndexServer(
                address, self._require_namespace(), interest_area=area,
                authoritative=authoritative,
            )
        )

    def client(self, address: str, area: InterestArea | None = None) -> Session:
        """Add a query-issuing client peer."""
        return self.join(ClientPeer(address, self._require_namespace(), interest_area=area))

    def session(self, address: str) -> Session:
        """The session wrapping the peer registered under ``address``."""
        try:
            return self._sessions[address]
        except KeyError:
            raise APIError(f"no session for address {address!r} in this cluster") from None

    def sessions(self) -> list[Session]:
        """Every session, in join order."""
        return [self._sessions[address] for address in self._join_order]

    def peers(self) -> list[QueryPeer]:
        """Every session's peer, in join order."""
        return [session.peer for session in self.sessions()]

    # -- catalog wiring ------------------------------------------------------- #

    def connect(self, online: bool = False, seed_clients: bool = True) -> int:
        """Wire the distributed catalog across every joined peer (§3.3).

        Registration follows the covering-indexer policy, in join order.
        With ``online=True`` the protocol runs as real messages (and the
        network is driven until the acknowledgements settle); otherwise
        catalogs are populated directly.  Pure clients are then seeded with
        the meta-index servers — their out-of-band bootstrap knowledge —
        unless ``seed_clients`` is false.  Returns the registration count.
        """
        peers = self.peers()
        if online:
            count = register_online(peers)
            self.network.run_until_idle()
        else:
            count = register_offline(peers)
        if seed_clients:
            self.seed_clients()
        return count

    def seed_clients(self) -> None:
        """Give pure-client peers their out-of-band meta-index knowledge."""
        clients = [session.peer for session in self.sessions() if _is_pure_client(session.peer)]
        metas = [session.peer for session in self.sessions() if _is_meta_index(session.peer)]
        seed_with_meta_index(clients, metas)

    def join_catalog_tier(self, shard_map: "ShardMap") -> None:
        """Hand every joined peer the sharded catalog tier's shard map.

        Call before :meth:`connect` so registrations fan out to whole
        replica groups.  Replica members attach their answer caches on
        join; peers joining later can be joined individually via
        :meth:`repro.peers.QueryPeer.join_catalog_tier`.
        """
        for peer in self.peers():
            peer.join_catalog_tier(shard_map)

    def catalog_tier_stats(self) -> dict[str, object]:
        """Aggregate catalog-tier counters across every joined peer.

        Returns shard/replica-group structure, summed answer-cache
        counters over the replica servers, and the failover/reconciliation
        totals — the same numbers the scale-out report's ``catalog_tier``
        block carries, exposed for API consumers.
        """
        peers = self.peers()
        maps = [peer.shard_map for peer in peers if peer.shard_map is not None]
        if not maps:
            return {"enabled": False}
        shard_map = maps[0]
        caches = [
            peer.catalog.answer_cache
            for peer in peers
            if peer.catalog.answer_cache is not None
        ]
        hits = sum(cache.hits for cache in caches)
        misses = sum(cache.misses for cache in caches)
        total = hits + misses
        return {
            "enabled": True,
            "shards": shard_map.shards,
            "groups": [list(group.members) for group in shard_map.groups],
            "answer_cache": {
                "hits": hits,
                "misses": misses,
                "hit_rate": round(hits / total, 4) if total else 0.0,
                "invalidations": sum(cache.invalidations for cache in caches),
                "evictions": sum(cache.evictions for cache in caches),
            },
            "tier_failovers": sum(peer.tier_failovers for peer in peers),
            "reconciliations": sum(peer.reconciliations for peer in peers),
            "recon_entries_adopted": sum(peer.recon_entries_adopted for peer in peers),
            "recon_conflicts": sum(len(peer.recon_conflicts) for peer in peers),
        }

    def wire_topology(
        self,
        topology: Topology | None = None,
        exclude: Iterable[str] = (),
    ) -> None:
        """Teach overlay neighbours each other's catalog entries.

        For every edge of the topology whose endpoints are both joined
        peers (and not excluded), each endpoint learns the other's server
        entry — so mid-route binding and candidate choice reflect the
        overlay shape.  Clients are typically excluded: seeding them with a
        handful of random neighbours would masquerade as a complete answer.
        """
        if topology is None:
            topology = self.topology
        if topology is None:
            raise APIError("no topology attached to this cluster")
        self.topology = topology
        excluded = set(exclude)
        by_address = {address: session.peer for address, session in self._sessions.items()}
        for first, second in sorted(topology.graph.edges):
            if first in excluded or second in excluded:
                continue
            if first in by_address and second in by_address:
                by_address[first].learn_about(by_address[second].server_entry())
                by_address[second].learn_about(by_address[first].server_entry())

    def configure_peers(
        self,
        max_hops: int | None = None,
        batch_window_ms: float | None = None,
    ) -> None:
        """Apply processing policy uniformly across every joined peer."""
        for peer in self.peers():
            if max_hops is not None:
                peer.processor.max_hops = max_hops
            if batch_window_ms is not None:
                peer.enable_batching(batch_window_ms)

    # -- churn ------------------------------------------------------------------ #

    def schedule_churn(
        self,
        addresses: Sequence[str] | None = None,
        profile: "ChurnProfile | str" = "moderate",
        window_ms: tuple[float, float] = (100.0, 4_000.0),
        seed: int = 13,
        regions: dict[str, str] | None = None,
        only: "Callable[[str], bool] | None" = None,
    ) -> ChurnPlan:
        """Schedule a churn plan (leaves, crashes, rejoins) on the clock.

        ``addresses`` defaults to every joined peer.  ``regions`` (address →
        region key) enables correlated profiles to fail whole regions at
        once.  ``only`` restricts which drawn events get scheduled (multicore
        workers pass their shard predicate); the plan itself — and therefore
        the report's churn summary — is computed over all addresses either
        way.  The plan is recorded on :attr:`churn_plans` for reporting.
        """
        if addresses is None:
            addresses = list(self._join_order)
        injector = FailureInjector(self.network)
        plan = injector.schedule_churn(
            list(addresses), profile, window_ms=window_ms, seed=seed, regions=regions,
            only=only,
        )
        self.churn_plans.append(plan)
        return plan

    # -- lifecycle ---------------------------------------------------------------- #

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self.network.now

    @property
    def metrics(self) -> "NetworkMetrics":
        """The network's traffic metrics and per-query traces."""
        return self.network.metrics

    def run(self, until: float | None = None) -> None:
        """Run the scenario (until idle, or until the given simulated time)."""
        self.network.run(until=until)

    def run_until_idle(self) -> None:
        """Run until no scheduled work remains."""
        self.network.run_until_idle()

    def close(self) -> None:
        """Release transport resources (sockets, loops).  Idempotent."""
        self.network.close()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- internals ------------------------------------------------------------------ #

    def _require_namespace(self) -> MultiHierarchicNamespace:
        if self.namespace is None:
            raise APIError(
                "this cluster has no namespace; pass namespace=... to Cluster() "
                "or construct peers yourself and cluster.join() them"
            )
        return self.namespace

    def __repr__(self) -> str:
        return (
            f"Cluster(sessions={len(self._sessions)}, now={self.now:.1f}ms, "
            f"transport={self.network.transport.name})"
        )


def _is_pure_client(peer: QueryPeer) -> bool:
    return peer.roles == {ServerRole.CLIENT}


def _is_meta_index(peer: QueryPeer) -> bool:
    return ServerRole.META_INDEX in peer.roles
