"""The experiment matrix: scenario × seed × repeat grids with statistics.

One deterministic trajectory per configuration is a demo, not a claim.  An
:class:`Experiment` composes a grid over the existing harness scenarios —
every :class:`~repro.harness.scaleout.ScaleoutSpec` is one *cell*, run once
per (seed, repeat) — streams one row per run to JSONL/CSV through
:class:`~repro.harness.report.RowLog`, and reduces each cell to a Wilson
confidence interval on answer completeness plus a two-proportion z-test
against the grid's baseline cell (:mod:`repro.experiments.stats`).

Determinism is the whole point: a run's seed is derived as
``seed * 1000 + repeat``, every row is computed from the seeded report
alone (no timestamps, no wall clock), so the same grid always produces the
same JSONL bytes — on every transport backend.

    spec = ExperimentSpec(
        name="churn-robustness",
        scenarios=(baseline_spec, adversarial_spec),
        seeds=(11, 17, 23),
        repeats=3,
    )
    result = Experiment(spec).run(jsonl_path="reports/rows.jsonl")
    for cell in result.cells:
        print(cell["scenario"], cell["completeness"], cell.get("vs_baseline"))
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterator, Mapping, Sequence

from ..errors import SimulationError
from ..harness.report import RowLog
from ..harness.scaleout import ScaleoutSpec, run_scaleout
from .stats import mean, two_prop_ztest, wilson_ci

__all__ = [
    "ROW_SCHEMA_VERSION",
    "ROW_COLUMNS",
    "ExperimentSpec",
    "ExperimentResult",
    "Experiment",
    "run_experiment",
    "derive_run_seed",
]

ROW_SCHEMA_VERSION = 1

ROW_COLUMNS = (
    "schema",
    "experiment",
    "scenario",
    "seed",
    "repeat",
    "run_seed",
    "queries",
    "complete_queries",
    "completeness",
    "mean_recall",
    "mean_latency_ms",
    "messages",
    "bytes",
    "dropped",
    "answers",
    "expected",
)
"""Every per-run row carries exactly these keys, in this order."""


def derive_run_seed(seed: int, repeat: int) -> int:
    """The seed one (seed, repeat) run actually executes with.

    Repeats must differ (a deterministic simulator replays the identical
    trajectory for the identical seed) yet stay reproducible in isolation:
    ``seed * 1000 + repeat`` lets anyone re-run row ``(seed=17, repeat=2)``
    as ``--seed 17002`` without the experiment machinery.
    """
    return seed * 1000 + repeat


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything that defines an experiment grid.

    ``baseline`` names the scenario cell the z-tests compare against
    (default: the first scenario).  A query counts as *complete* when its
    recall reaches ``complete_threshold``; completeness per run is the
    fraction of complete queries, and the per-cell Wilson interval pools
    query outcomes across every run of the cell.
    """

    name: str
    scenarios: tuple[ScaleoutSpec, ...]
    seeds: tuple[int, ...] = (11, 17, 23)
    repeats: int = 1
    transport: str = "sim"
    baseline: str | None = None
    complete_threshold: float = 1.0
    confidence: float = 0.95

    def validate(self) -> None:
        """Fail fast on grids that cannot run or cannot be analysed."""
        if not self.scenarios:
            raise SimulationError("an experiment needs at least one scenario")
        names = [scenario.name for scenario in self.scenarios]
        if len(set(names)) != len(names):
            raise SimulationError(f"scenario names must be unique, got {names}")
        if not self.seeds:
            raise SimulationError("an experiment needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise SimulationError(f"seeds must be unique, got {self.seeds}")
        if self.repeats < 1:
            raise SimulationError("repeats must be >= 1")
        if self.baseline is not None and self.baseline not in names:
            raise SimulationError(
                f"baseline {self.baseline!r} is not one of the grid's scenarios {names}"
            )
        if not 0.0 < self.complete_threshold <= 1.0:
            raise SimulationError("complete_threshold must be in (0, 1]")
        if not 0.0 < self.confidence < 1.0:
            raise SimulationError("confidence must be in (0, 1)")
        for scenario in self.scenarios:
            scenario.validate()

    @property
    def baseline_name(self) -> str:
        """The scenario cell z-tests compare against."""
        return self.baseline if self.baseline is not None else self.scenarios[0].name

    @property
    def runs(self) -> int:
        """Total number of runs in the grid."""
        return len(self.scenarios) * len(self.seeds) * self.repeats


@dataclass
class ExperimentResult:
    """Everything one grid execution produced."""

    spec: ExperimentSpec
    rows: list[dict[str, object]] = field(default_factory=list)
    cells: list[dict[str, object]] = field(default_factory=list)

    def cell(self, scenario: str) -> dict[str, object]:
        """The aggregate cell for one scenario name."""
        for cell in self.cells:
            if cell["scenario"] == scenario:
                return cell
        raise KeyError(f"no cell for scenario {scenario!r}")

    def report(self) -> dict[str, object]:
        """JSON-ready document: grid description, per-cell statistics, rows."""
        return {
            "experiment": self.spec.name,
            "schema": ROW_SCHEMA_VERSION,
            "grid": {
                "scenarios": [scenario.name for scenario in self.spec.scenarios],
                "seeds": list(self.spec.seeds),
                "repeats": self.spec.repeats,
                "runs": self.spec.runs,
                "transport": self.spec.transport,
                "baseline": self.spec.baseline_name,
                "complete_threshold": self.spec.complete_threshold,
                "confidence": self.spec.confidence,
            },
            "cells": self.cells,
            "rows": self.rows,
        }


class Experiment:
    """Runs an :class:`ExperimentSpec` grid and reduces it to statistics.

    ``runner`` maps ``(ScaleoutSpec, transport)`` to a scenario report; it
    defaults to :func:`~repro.harness.scaleout.run_scaleout` and exists so
    tests can substitute a stub (and the differential suite a hand-rolled
    loop) without standing up real scenarios.
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        runner: Callable[[ScaleoutSpec, str], Mapping[str, object]] | None = None,
    ) -> None:
        spec.validate()
        self.spec = spec
        self._runner = runner if runner is not None else (
            lambda scenario, transport: run_scaleout(scenario, transport=transport)
        )

    def grid(self) -> Iterator[tuple[ScaleoutSpec, int, int, int]]:
        """Every (scenario, seed, repeat, run_seed) of the grid, in run order.

        Scenario-major order: all of one scenario's runs are adjacent, so a
        tail of the streamed JSONL always reads as "currently working
        through cell X".
        """
        for scenario in self.spec.scenarios:
            for seed in self.spec.seeds:
                for repeat in range(self.spec.repeats):
                    yield scenario, seed, repeat, derive_run_seed(seed, repeat)

    def run(
        self,
        jsonl_path: str | None = None,
        csv_path: str | None = None,
        on_row: Callable[[dict[str, object]], None] | None = None,
    ) -> ExperimentResult:
        """Execute the whole grid, streaming one row per run."""
        result = ExperimentResult(spec=self.spec)
        with RowLog(jsonl_path, csv_path, csv_columns=ROW_COLUMNS) as log:
            for scenario, seed, repeat, run_seed in self.grid():
                report = self._runner(replace(scenario, seed=run_seed), self.spec.transport)
                row = self._row(scenario.name, seed, repeat, run_seed, report)
                log.append(row)
                result.rows.append(row)
                if on_row is not None:
                    on_row(row)
        result.cells = self._reduce(result.rows)
        return result

    # -- row extraction ----------------------------------------------------- #

    def _row(
        self,
        scenario: str,
        seed: int,
        repeat: int,
        run_seed: int,
        report: Mapping[str, object],
    ) -> dict[str, object]:
        """Reduce one scenario report to the flat, deterministic row schema."""
        queries = report.get("queries")
        if not isinstance(queries, list):
            raise SimulationError(
                f"scenario report for {scenario!r} has no query rows; "
                "the runner must return a run_scaleout-shaped report"
            )
        recalls = [float(query.get("recall") or 0.0) for query in queries]
        complete = sum(
            1 for recall in recalls if recall >= self.spec.complete_threshold
        )
        traffic = report.get("traffic", {})
        assert isinstance(traffic, Mapping)
        return {
            "schema": ROW_SCHEMA_VERSION,
            "experiment": self.spec.name,
            "scenario": scenario,
            "seed": seed,
            "repeat": repeat,
            "run_seed": run_seed,
            "queries": len(queries),
            "complete_queries": complete,
            "completeness": round(complete / len(queries), 4) if queries else 0.0,
            "mean_recall": round(mean(recalls), 4),
            "mean_latency_ms": round(float(traffic.get("mean_latency_ms", 0.0)), 3),
            "messages": int(traffic.get("messages", 0)),
            "bytes": int(traffic.get("bytes", 0)),
            "dropped": int(traffic.get("dropped", 0)),
            "answers": sum(int(query.get("answers") or 0) for query in queries),
            "expected": sum(int(query.get("expected") or 0) for query in queries),
        }

    # -- cell reduction ------------------------------------------------------ #

    def _reduce(self, rows: Sequence[Mapping[str, object]]) -> list[dict[str, object]]:
        """Aggregate per-run rows into per-scenario cells with statistics."""
        pooled: dict[str, list[Mapping[str, object]]] = {}
        for row in rows:
            pooled.setdefault(str(row["scenario"]), []).append(row)

        baseline_rows = pooled.get(self.spec.baseline_name, [])
        baseline_successes = sum(int(row["complete_queries"]) for row in baseline_rows)
        baseline_trials = sum(int(row["queries"]) for row in baseline_rows)

        cells: list[dict[str, object]] = []
        for scenario in self.spec.scenarios:
            cell_rows = pooled.get(scenario.name, [])
            successes = sum(int(row["complete_queries"]) for row in cell_rows)
            trials = sum(int(row["queries"]) for row in cell_rows)
            interval = wilson_ci(successes, trials, self.spec.confidence)
            cell: dict[str, object] = {
                "scenario": scenario.name,
                "runs": len(cell_rows),
                "completeness": interval.as_dict(),
                "mean_recall": round(
                    mean([float(row["mean_recall"]) for row in cell_rows]), 4
                ),
                "mean_latency_ms": round(
                    mean([float(row["mean_latency_ms"]) for row in cell_rows]), 3
                ),
                "mean_messages": round(
                    mean([float(row["messages"]) for row in cell_rows]), 1
                ),
            }
            if scenario.name != self.spec.baseline_name:
                cell["vs_baseline"] = two_prop_ztest(
                    successes, trials, baseline_successes, baseline_trials
                ).as_dict()
            cells.append(cell)
        return cells


def run_experiment(
    spec: ExperimentSpec,
    jsonl_path: str | None = None,
    csv_path: str | None = None,
    on_row: Callable[[dict[str, object]], None] | None = None,
) -> ExperimentResult:
    """Build and run an experiment in one call (the programmatic API)."""
    return Experiment(spec).run(jsonl_path=jsonl_path, csv_path=csv_path, on_row=on_row)
