"""Logical query-plan operators and leaves (paper §2).

A mutant query plan is "an algebraic query plan graph, encoded in XML, that
may also include verbatim XML-encoded data, references to resource
locations (URLs), and references to abstract resource names (URNs)".  This
module defines those node types:

Leaves
    :class:`VerbatimData` (constant XML), :class:`URLRef` (a resource
    location), :class:`URNRef` (an abstract resource name).

Operators
    :class:`Select`, :class:`Project`, :class:`Join`, :class:`Union`,
    :class:`Difference`, :class:`Aggregate`, :class:`OrderBy`,
    :class:`TopN`, the *conjoint union* :class:`ConjointOr` introduced in
    §4.2 for intensional-statement bindings, and the :class:`Display`
    pseudo-operator carrying the plan's target address.

Nodes carry an ``annotations`` dictionary used for the catalog/statistics
information §5.1 proposes to accumulate as a plan travels (cardinalities,
result sizes, provenance hints).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence

from ..errors import PlanError
from ..xmlmodel import XMLElement
from .expressions import Expression

__all__ = [
    "PlanNode",
    "LeafNode",
    "VerbatimData",
    "URLRef",
    "URNRef",
    "Select",
    "Project",
    "Join",
    "Union",
    "ConjointOr",
    "Difference",
    "Aggregate",
    "OrderBy",
    "TopN",
    "Display",
    "AGGREGATE_FUNCTIONS",
]

_node_counter = itertools.count(1)

AGGREGATE_FUNCTIONS = ("count", "sum", "min", "max", "avg")


class PlanNode:
    """Base class for every node of a logical query plan."""

    operator = "node"

    def __init__(self, children: Iterable["PlanNode"] = ()) -> None:
        self.children: list[PlanNode] = list(children)
        for child in self.children:
            if not isinstance(child, PlanNode):
                raise PlanError(f"plan child must be a PlanNode, got {type(child).__name__}")
        self.annotations: dict[str, str] = {}
        self.node_id: int = next(_node_counter)

    # -- structure ------------------------------------------------------- #

    @property
    def is_leaf(self) -> bool:
        """True for data/reference leaves (no child operators)."""
        return not self.children

    def iter_nodes(self) -> Iterator["PlanNode"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    def replace_child(self, old: "PlanNode", new: "PlanNode") -> None:
        """Replace a direct child (identity comparison) with another node."""
        for index, child in enumerate(self.children):
            if child is old:
                self.children[index] = new
                return
        raise PlanError(f"{old!r} is not a child of {self!r}")

    def annotate(self, key: str, value: object) -> None:
        """Attach a statistics / catalog annotation (paper §5.1)."""
        self.annotations[str(key)] = str(value)

    # -- copying ---------------------------------------------------------- #

    def copy(self) -> "PlanNode":
        """Deep-copy the subtree rooted at this node (annotations included)."""
        clone = self._copy_shallow([child.copy() for child in self.children])
        clone.annotations = dict(self.annotations)
        return clone

    def _copy_shallow(self, children: list["PlanNode"]) -> "PlanNode":
        raise NotImplementedError

    # -- equality (structural, ignoring node ids and annotations) --------- #

    def signature(self) -> tuple:
        """A structural signature used for equality and hashing."""
        return (self.operator, self._own_signature(), tuple(child.signature() for child in self.children))

    def _own_signature(self) -> tuple:
        return ()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PlanNode):
            return NotImplemented
        return self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.node_id}, children={len(self.children)})"


class LeafNode(PlanNode):
    """Common base for plan leaves."""

    def __init__(self) -> None:
        super().__init__(())


class VerbatimData(LeafNode):
    """Constant XML data embedded directly in the plan.

    ``collection`` is an element whose children are the individual items;
    partial results produced by plan reduction are substituted back into the
    plan as ``VerbatimData`` nodes.
    """

    operator = "data"

    def __init__(self, collection: XMLElement, name: str | None = None) -> None:
        super().__init__()
        if not isinstance(collection, XMLElement):
            raise PlanError("VerbatimData needs an XMLElement collection")
        self.collection = collection
        self.name = name

    @classmethod
    def from_items(
        cls,
        items: Sequence[XMLElement],
        name: str | None = None,
        tag: str = "collection",
        copy_items: bool = True,
    ) -> "VerbatimData":
        """Wrap a list of item elements into a collection leaf.

        ``copy_items=False`` embeds the items by reference — used by the
        batched processing path, where many plans at one peer share the
        memoized result of the same sub-plan and nothing downstream
        mutates items in place (forwarding serializes, delivery copies).
        """
        children = [item.copy() for item in items] if copy_items else list(items)
        return cls(XMLElement(tag, {}, children), name)

    @property
    def items(self) -> list[XMLElement]:
        """The individual data items of the collection."""
        return list(self.collection.children)

    def cardinality(self) -> int:
        """Number of items in the collection."""
        return len(self.collection.children)

    def _copy_shallow(self, children: list[PlanNode]) -> PlanNode:
        return VerbatimData(self.collection.copy(), self.name)

    def _own_signature(self) -> tuple:
        return (self.name, hash(self.collection))


class URLRef(LeafNode):
    """A reference to data at a concrete resource location.

    ``url`` addresses the peer holding the data (host/port in the paper's
    examples); ``path`` is the XPath-lite identifier of the collection on
    that peer, e.g. ``/data[id=245]``.
    """

    operator = "url"

    def __init__(self, url: str, path: str | None = None) -> None:
        super().__init__()
        if not url:
            raise PlanError("URLRef needs a non-empty URL")
        self.url = url
        self.path = path

    def _copy_shallow(self, children: list[PlanNode]) -> PlanNode:
        return URLRef(self.url, self.path)

    def _own_signature(self) -> tuple:
        return (self.url, self.path)


class URNRef(LeafNode):
    """A reference to an abstract resource name (to be resolved via catalogs)."""

    operator = "urn"

    def __init__(self, urn: str) -> None:
        super().__init__()
        if not urn.startswith("urn:"):
            raise PlanError(f"not a URN: {urn!r}")
        self.urn = urn

    def _copy_shallow(self, children: list[PlanNode]) -> PlanNode:
        return URNRef(self.urn)

    def _own_signature(self) -> tuple:
        return (self.urn,)


class Select(PlanNode):
    """Filter items of the child collection by a predicate."""

    operator = "select"

    def __init__(self, child: PlanNode, predicate: Expression) -> None:
        super().__init__([child])
        self.predicate = predicate

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def _copy_shallow(self, children: list[PlanNode]) -> PlanNode:
        return Select(children[0], self.predicate)

    def _own_signature(self) -> tuple:
        return (self.predicate.to_text(),)


class Project(PlanNode):
    """Construct new items keeping only the listed fields.

    ``columns`` is a sequence of ``(path, output_tag)`` pairs; each output
    item is an element named ``item_tag`` whose children are text elements
    holding the selected values.
    """

    operator = "project"

    def __init__(
        self,
        child: PlanNode,
        columns: Sequence[tuple[str, str]],
        item_tag: str = "item",
    ) -> None:
        super().__init__([child])
        if not columns:
            raise PlanError("Project needs at least one column")
        self.columns = tuple((str(path), str(tag)) for path, tag in columns)
        self.item_tag = item_tag

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def _copy_shallow(self, children: list[PlanNode]) -> PlanNode:
        return Project(children[0], self.columns, self.item_tag)

    def _own_signature(self) -> tuple:
        return (self.columns, self.item_tag)


class Join(PlanNode):
    """Equality join between two collections.

    Items from the left and right inputs are matched when the values reached
    by ``left_path`` and ``right_path`` are equal.  The output item wraps
    copies of both matching items under ``output_tag`` so later operators
    can navigate into either side.  ``join_type`` may be ``inner`` or
    ``left_outer`` (the outer variant backs the size-reducing rewrites of
    §2).
    """

    operator = "join"

    JOIN_TYPES = ("inner", "left_outer")

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_path: str,
        right_path: str,
        join_type: str = "inner",
        output_tag: str = "tuple",
    ) -> None:
        super().__init__([left, right])
        if join_type not in self.JOIN_TYPES:
            raise PlanError(f"unsupported join type {join_type!r}")
        self.left_path = left_path
        self.right_path = right_path
        self.join_type = join_type
        self.output_tag = output_tag

    @property
    def left(self) -> PlanNode:
        return self.children[0]

    @property
    def right(self) -> PlanNode:
        return self.children[1]

    def _copy_shallow(self, children: list[PlanNode]) -> PlanNode:
        return Join(
            children[0], children[1], self.left_path, self.right_path, self.join_type, self.output_tag
        )

    def _own_signature(self) -> tuple:
        return (self.left_path, self.right_path, self.join_type, self.output_tag)


class Union(PlanNode):
    """Bag union of any number of input collections."""

    operator = "union"

    def __init__(self, children: Sequence[PlanNode]) -> None:
        if len(children) < 1:
            raise PlanError("Union needs at least one input")
        super().__init__(children)

    def _copy_shallow(self, children: list[PlanNode]) -> PlanNode:
        return Union(children)


class ConjointOr(PlanNode):
    """The "or" (``|``) operator of §4.2: either input holds the needed data.

    Semantically governed by the rewrite rules ``A | B → A`` and
    ``A | B → B``; the policy manager / QoS planner picks which branch to
    keep.  Evaluating an unrewritten ConjointOr falls back to its first
    branch.
    """

    operator = "or"

    def __init__(self, children: Sequence[PlanNode]) -> None:
        if len(children) < 2:
            raise PlanError("ConjointOr needs at least two alternatives")
        super().__init__(children)

    def _copy_shallow(self, children: list[PlanNode]) -> PlanNode:
        return ConjointOr(children)


class Difference(PlanNode):
    """Set difference: items of the left input not present in the right input.

    Membership is decided by the value at ``key_path`` when given, otherwise
    by deep structural equality of the items.
    """

    operator = "difference"

    def __init__(self, left: PlanNode, right: PlanNode, key_path: str | None = None) -> None:
        super().__init__([left, right])
        self.key_path = key_path

    @property
    def left(self) -> PlanNode:
        return self.children[0]

    @property
    def right(self) -> PlanNode:
        return self.children[1]

    def _copy_shallow(self, children: list[PlanNode]) -> PlanNode:
        return Difference(children[0], children[1], self.key_path)

    def _own_signature(self) -> tuple:
        return (self.key_path,)


class Aggregate(PlanNode):
    """Grouped aggregation over a value path.

    ``function`` is one of :data:`AGGREGATE_FUNCTIONS`.  When ``group_path``
    is ``None`` a single output item is produced.
    """

    operator = "aggregate"

    def __init__(
        self,
        child: PlanNode,
        function: str,
        value_path: str | None = None,
        group_path: str | None = None,
        output_tag: str = "aggregate",
    ) -> None:
        super().__init__([child])
        if function not in AGGREGATE_FUNCTIONS:
            raise PlanError(f"unsupported aggregate function {function!r}")
        if function != "count" and value_path is None:
            raise PlanError(f"aggregate {function!r} needs a value path")
        self.function = function
        self.value_path = value_path
        self.group_path = group_path
        self.output_tag = output_tag

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def _copy_shallow(self, children: list[PlanNode]) -> PlanNode:
        return Aggregate(children[0], self.function, self.value_path, self.group_path, self.output_tag)

    def _own_signature(self) -> tuple:
        return (self.function, self.value_path, self.group_path, self.output_tag)


class OrderBy(PlanNode):
    """Sort items by the value at ``path`` (numeric when possible)."""

    operator = "orderby"

    def __init__(self, child: PlanNode, path: str, descending: bool = False) -> None:
        super().__init__([child])
        self.path = path
        self.descending = descending

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def _copy_shallow(self, children: list[PlanNode]) -> PlanNode:
        return OrderBy(children[0], self.path, self.descending)

    def _own_signature(self) -> tuple:
        return (self.path, self.descending)


class TopN(PlanNode):
    """Keep the first ``limit`` items ordered by ``path`` (top-n queries, §3.4)."""

    operator = "topn"

    def __init__(self, child: PlanNode, limit: int, path: str, descending: bool = True) -> None:
        super().__init__([child])
        if limit < 1:
            raise PlanError("TopN limit must be positive")
        self.limit = int(limit)
        self.path = path
        self.descending = descending

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def _copy_shallow(self, children: list[PlanNode]) -> PlanNode:
        return TopN(children[0], self.limit, self.path, self.descending)

    def _own_signature(self) -> tuple:
        return (self.limit, self.path, self.descending)


class Display(PlanNode):
    """Pseudo-operator carrying the plan's target address (paper Figure 3).

    Once the plan below it is fully evaluated, the result is shipped to
    ``target``.
    """

    operator = "display"

    def __init__(self, child: PlanNode, target: str) -> None:
        super().__init__([child])
        if not target:
            raise PlanError("Display needs a target address")
        self.target = target

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def _copy_shallow(self, children: list[PlanNode]) -> PlanNode:
        return Display(children[0], self.target)

    def _own_signature(self) -> tuple:
        return (self.target,)
