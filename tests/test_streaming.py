"""Streaming execution end-to-end: iterator engine, chunked delivery, cancel.

Covers the streaming contract ``docs/engine.md`` documents:

* the pull-based operators produce byte-identical item sequences (and wire
  XML) to the seed's materialized evaluator, proven over a randomized
  differential workload;
* pipeline breakers account their buffers against ``max_buffered_items``
  and fail with :class:`~repro.errors.ResourceBudgetExceeded` instead of
  growing without bound, while fully streaming operators buffer nothing;
* the chunked result protocol (``result-chunk`` / ``result-end``) delivers
  the same answers as the single-frame seed protocol on both transports,
  reassembles out-of-order chunks by sequence number, and streams items
  into :meth:`repro.api.QueryHandle.items` as chunks arrive;
* cancellation tears down open producer streams and propagates along the
  plan's forwarding chain;
* the result-watcher registry survives reentrant edits from inside a
  watcher callback;
* the eager-area-plans fix completes predicate-less plans under its flag
  while preserving the seed ping-pong behaviour without it.
"""

from __future__ import annotations

import random
import tracemalloc

import pytest

from repro.algebra.expressions import parse_predicate
from repro.algebra.operators import (
    Aggregate,
    Difference,
    Join,
    OrderBy,
    PlanNode,
    Project,
    Select,
    TopN,
    Union,
    VerbatimData,
)
from repro.engine import BufferBudget, QueryEngine
from repro.engine import operators as physical
from repro.errors import QueryCancelled, ResourceBudgetExceeded
from repro.peers import QueryPeer, QueryResult
from repro.perf import flags, overrides
from repro.workloads import GarageSaleConfig, GarageSaleWorkload
from repro.xmlmodel import XMLElement, serialize_xml, text_element
from tests.test_api import portland_area, small_cluster

TRANSPORTS = ("sim", "aio")


def make_items(count: int, price_of=lambda i: i % 97, tag: str = "item") -> list[XMLElement]:
    return [
        XMLElement(
            tag,
            {},
            [text_element("title", f"thing-{i}"), text_element("price", price_of(i))],
        )
        for i in range(count)
    ]


def _bare_receiver() -> QueryPeer:
    """A QueryPeer carrying only the chunk-reassembly state."""
    peer = QueryPeer.__new__(QueryPeer)
    peer.address = "client:9020"
    peer.cancelled_queries = {}
    peer._cancel_notified = {}
    peer.cancel_memory = 4096
    peer.results = {}
    peer.assembly_memory = 1024
    peer._chunk_buffers = {}
    peer._chunk_assemblies = {}
    peer._chunk_watchers = {}
    return peer


class _Frame:
    def __init__(self, payload):
        self.payload = payload
        self.sender = "seller:9020"


def _chunk_frame(query_id: str, stream: str, seq: int, title: str) -> _Frame:
    document = serialize_xml(
        XMLElement("result-chunk", {}, [XMLElement("item", {}, [text_element("title", title)])])
    )
    return _Frame({"document": document, "query_id": query_id, "stream": stream, "seq": seq})


def _titles(items) -> list[str]:
    return [item.child_text("title") for item in items]


# --------------------------------------------------------------------------- #
# Operator-level streaming semantics
# --------------------------------------------------------------------------- #


class TestStreamingOperators:
    def test_select_buffers_nothing(self):
        budget = BufferBudget(limit=1)
        items = make_items(5_000)
        predicate = parse_predicate("price < 50")
        streamed = list(physical.stream_select(iter(items), predicate))
        assert streamed == physical.evaluate_select(items, predicate)
        assert budget.peak == 0  # select never touched a budget

    def test_budget_peak_excludes_rejected_charges(self):
        """The high-water mark only counts items actually held at once."""
        budget = BufferBudget(limit=3)
        budget.charge(3)
        with pytest.raises(ResourceBudgetExceeded):
            budget.charge(1)
        assert budget.buffered == 3
        assert budget.peak == 3  # the rejected item was never buffered

    def test_order_by_charges_and_releases(self):
        budget = BufferBudget(limit=100)
        items = make_items(100)
        streamed = list(physical.stream_order_by(iter(items), "price", budget=budget))
        assert streamed == physical.evaluate_order_by(items, "price")
        assert budget.peak == 100
        assert budget.buffered == 0  # released on exhaustion

    def test_order_by_over_budget_raises(self):
        budget = BufferBudget(limit=99)
        with pytest.raises(ResourceBudgetExceeded):
            list(physical.stream_order_by(iter(make_items(100)), "price", budget=budget))
        assert budget.buffered == 0  # the finally released the partial buffer

    def test_join_budget_counts_right_side_only(self):
        budget = BufferBudget(limit=10)
        left = make_items(1_000)
        right = make_items(10)
        streamed = list(
            physical.stream_join(iter(left), iter(right), "price", "price", budget=budget)
        )
        assert streamed == physical.evaluate_join(left, right, "price", "price")
        assert budget.peak == 10  # the hash index, never the streamed left input
        assert budget.buffered == 0

    def test_top_n_truncation_releases_budget(self):
        budget = BufferBudget(limit=500)
        stream = physical.stream_top_n(iter(make_items(500)), 3, "price", budget=budget)
        top = list(stream)
        assert len(top) == 3
        assert budget.buffered == 0  # closing the truncated sort freed its buffer

    def test_closing_a_stream_mid_flight_releases_budget(self):
        budget = BufferBudget(limit=200)
        stream = physical.stream_order_by(iter(make_items(200)), "price", budget=budget)
        next(stream)
        assert budget.buffered == 200
        stream.close()
        assert budget.buffered == 0

    def test_difference_budget_counts_right_side(self):
        budget = BufferBudget(limit=5)
        left = make_items(100)
        right = make_items(5)
        streamed = list(
            physical.stream_difference(iter(left), iter(right), "title", budget=budget)
        )
        assert streamed == physical.evaluate_difference(left, right, "title")
        assert budget.peak == 5

    def test_budget_rejects_nonpositive_limit(self):
        with pytest.raises(Exception):
            BufferBudget(limit=0)


# --------------------------------------------------------------------------- #
# Randomized differential: streaming vs materialized engine modes
# --------------------------------------------------------------------------- #


PREDICATES = ("price < 40", "price > 15", "quantity > 1", "price >= 20")
NUMERIC_PATHS = ("price", "quantity")


def _random_source(rng: random.Random, collections: list[list[XMLElement]]) -> PlanNode:
    picks = rng.sample(collections, k=rng.randint(1, min(3, len(collections))))
    leaves: list[PlanNode] = [VerbatimData.from_items(items) for items in picks]
    if len(leaves) == 1:
        return leaves[0]
    return Union(leaves)


def _random_plan(rng: random.Random, collections: list[list[XMLElement]]) -> PlanNode:
    node = _random_source(rng, collections)
    for _ in range(rng.randint(1, 3)):
        choice = rng.random()
        if choice < 0.30:
            node = Select(node, parse_predicate(rng.choice(PREDICATES)))
        elif choice < 0.45:
            node = OrderBy(node, rng.choice(NUMERIC_PATHS), descending=rng.random() < 0.5)
        elif choice < 0.60:
            node = TopN(node, rng.randint(1, 12), rng.choice(NUMERIC_PATHS))
        elif choice < 0.72:
            node = Join(
                node,
                _random_source(rng, collections),
                "city",
                "city",
                join_type=rng.choice(("inner", "left_outer")),
            )
            # Joined tuples nest the original items; keep follow-up
            # operators on paths that still resolve.
            node = Project(node, [("item/title", "title"), ("item/price", "price")])
        elif choice < 0.84:
            node = Difference(node, _random_source(rng, collections), "title")
        else:
            node = Aggregate(
                node,
                rng.choice(("count", "sum", "min", "max", "avg")),
                value_path=rng.choice(NUMERIC_PATHS),
                group_path="city" if rng.random() < 0.5 else None,
            )
            break  # aggregate output has no price/quantity fields to chain on
    return node


class TestStreamingDifferential:
    @pytest.fixture(scope="class")
    def collections(self) -> list[list[XMLElement]]:
        workload = GarageSaleWorkload(
            GarageSaleConfig(sellers=12, mean_items_per_seller=6, seed=23)
        )
        return [seller.items for seller in workload.sellers if seller.items]

    def test_random_plans_agree_item_for_item(self, collections):
        rng = random.Random(1746)
        for round_number in range(60):
            plan = _random_plan(rng, collections)
            with overrides(streaming_engine=True):
                streaming = QueryEngine()
                streamed = [serialize_xml(item) for item in streaming.stream(plan)]
                streamed_wire = serialize_xml(streaming.evaluate_collection(plan))
            with overrides(streaming_engine=False):
                oracle = QueryEngine()
                materialized = [serialize_xml(item) for item in oracle.evaluate(plan)]
                oracle_wire = serialize_xml(oracle.evaluate_collection(plan))
            assert streamed == materialized, f"diverged on round {round_number}"
            assert streamed_wire == oracle_wire, f"wire diverged on round {round_number}"

    def test_engine_counters_match_across_modes(self, collections):
        plan = Select(
            Union([VerbatimData.from_items(items) for items in collections]),
            parse_predicate("price < 40"),
        )
        with overrides(streaming_engine=True):
            streaming = QueryEngine()
            streaming.evaluate(plan)
        with overrides(streaming_engine=False):
            oracle = QueryEngine()
            oracle.evaluate(plan)
        assert streaming.operators_evaluated == oracle.operators_evaluated
        assert streaming.items_produced == oracle.items_produced

    def test_select_over_large_collection_stays_under_budget(self):
        items = make_items(20_000)
        plan = Select(VerbatimData.from_items(items, copy_items=False), parse_predicate("price < 30"))
        engine = QueryEngine(max_buffered_items=8)
        consumed = sum(1 for _ in engine.stream(plan))
        assert consumed > 0
        assert engine.peak_buffered_items == 0  # a pure pipeline buffers nothing
        assert engine.peak_buffered_items <= 8

    def test_breaker_over_engine_budget_raises(self):
        items = make_items(256)
        plan = OrderBy(VerbatimData.from_items(items, copy_items=False), "price")
        engine = QueryEngine(max_buffered_items=64)
        with pytest.raises(ResourceBudgetExceeded):
            list(engine.stream(plan))

    def test_streaming_peak_memory_below_materialized(self):
        """Consuming a projection one item at a time allocates far less than
        materializing every projected item first."""
        items = make_items(6_000)
        plan = Project(
            VerbatimData.from_items(items, copy_items=False),
            [("title", "title"), ("price", "price")],
        )
        engine = QueryEngine()

        tracemalloc.start()
        for _ in engine.stream(plan):
            pass
        _, streamed_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        tracemalloc.start()
        with overrides(streaming_engine=False):
            engine.evaluate(plan)
        _, materialized_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        assert streamed_peak < materialized_peak / 5


# --------------------------------------------------------------------------- #
# Chunked result delivery
# --------------------------------------------------------------------------- #


def _chunked_cluster(transport: str, chunk_items: int = 1):
    cluster = small_cluster(transport)
    for session in cluster.sessions():
        session.peer.result_chunk_items = chunk_items
    return cluster


class TestChunkedDelivery:
    @pytest.fixture(params=TRANSPORTS)
    def transport(self, request):
        return request.param

    def test_items_stream_as_chunks_arrive(self, transport):
        with overrides(streaming_results=True):
            with _chunked_cluster(transport) as cluster:
                client = cluster.session("client:9020")
                handle = (
                    client.query()
                    .area(portland_area(cluster))
                    .where("price < 20")
                    .expecting(3)
                    .submit()
                )
                titles = [item.child_text("title") for item in handle.items(timeout=240_000)]
                assert sorted(titles) == ["Abbey Road", "Blue Train", "Kind of Blue"]
                result = handle.result(timeout=240_000)
                assert not result.partial
                assert [item.child_text("title") for item in result.items] == titles
                # Reassembly state is fully drained after the final result.
                peer = client.peer
                assert not peer._chunk_buffers and not peer._chunk_assemblies

    def test_chunked_answer_equals_single_frame_answer(self, transport):
        def answer(streaming: bool) -> list[str]:
            with overrides(streaming_results=streaming):
                with _chunked_cluster(transport, chunk_items=2) as cluster:
                    client = cluster.session("client:9020")
                    handle = (
                        client.query()
                        .area(portland_area(cluster))
                        .where("price < 20")
                        .expecting(3)
                        .submit()
                    )
                    result = handle.result(timeout=240_000)
                    assert not result.partial
                    return [serialize_xml(item) for item in result.items]

        assert answer(streaming=True) == answer(streaming=False)

    def test_sequence_numbers_frame_every_chunk(self, transport):
        seen: list[tuple[str, int]] = []
        original = QueryPeer._handle_result_chunk

        def spy(self, message):
            envelope = message.payload
            seen.append((envelope["stream"], envelope["seq"]))
            return original(self, message)

        QueryPeer._handle_result_chunk = spy
        try:
            with overrides(streaming_results=True):
                with _chunked_cluster(transport) as cluster:
                    client = cluster.session("client:9020")
                    handle = (
                        client.query()
                        .area(portland_area(cluster))
                        .where("price < 20")
                        .expecting(3)
                        .submit()
                    )
                    handle.result(timeout=240_000)
        finally:
            QueryPeer._handle_result_chunk = original
        assert seen
        streams = {stream for stream, _ in seen}
        assert len(streams) == 1  # one delivery, one stream token
        assert sorted(seq for _, seq in seen) == list(range(len(seen)))

    def test_partial_answers_stream_too(self, transport):
        with overrides(streaming_results=True):
            with _chunked_cluster(transport) as cluster:
                cluster.session("seller2:9020").crash()
                client = cluster.session("client:9020")
                handle = (
                    client.query()
                    .area(portland_area(cluster))
                    .where("price < 10")
                    .expecting(2)
                    .submit()
                )
                result = handle.result(timeout=240_000)
                assert result.partial
                assert {item.child_text("title") for item in result.items} == {"Abbey Road"}

    def test_empty_result_streams_as_bare_end_frame(self, transport):
        with overrides(streaming_results=True):
            with _chunked_cluster(transport) as cluster:
                client = cluster.session("client:9020")
                handle = (
                    client.query()
                    .area(portland_area(cluster))
                    .where("price < 1")
                    .submit()
                )
                result = handle.result(timeout=240_000)
                assert result.count == 0

    def test_items_falls_back_to_the_single_frame(self, transport):
        # Chunking off: items() still yields every item, from the result frame.
        with _chunked_cluster(transport) as cluster:
            client = cluster.session("client:9020")
            handle = (
                client.query()
                .area(portland_area(cluster))
                .where("price < 20")
                .expecting(3)
                .submit()
            )
            titles = [item.child_text("title") for item in handle.items(timeout=240_000)]
            assert sorted(titles) == ["Abbey Road", "Blue Train", "Kind of Blue"]

    def test_out_of_order_chunks_are_reassembled(self):
        """Chunk 1 delivered before chunk 0: released to watchers in order."""
        peer = _bare_receiver()
        batches: list[list[str]] = []
        peer.watch_chunks("q7", lambda items, stream: batches.append(_titles(items)))

        peer._handle_result_chunk(_chunk_frame("q7", "s/1", 1, "second"))
        assert batches == []  # out of order: held back
        peer._handle_result_chunk(_chunk_frame("q7", "s/1", 0, "first"))
        assert batches == [["first"], ["second"]]
        assert _titles(peer.chunk_items("q7")) == ["first", "second"]

    def test_interleaved_streams_reassemble_independently(self):
        """Two deliveries for one query (partial, then complete) never mix.

        Chunks carry a stream token; assemblies are keyed by (query, stream),
        so a chunk from a second delivery arriving mid-reassembly neither
        clobbers nor inherits the first delivery's state.
        """
        peer = _bare_receiver()
        batches: list[list[str]] = []
        peer.watch_chunks("q8", lambda items, stream: batches.append(_titles(items)))

        # Stream s/1 releases seq 0, then s/2 opens with its own seq 0 while
        # s/1 is still mid-delivery, then s/1 finishes with seq 1.
        peer._handle_result_chunk(_chunk_frame("q8", "s/1", 0, "partial-a"))
        peer._handle_result_chunk(_chunk_frame("q8", "s/2", 0, "full-a"))
        peer._handle_result_chunk(_chunk_frame("q8", "s/1", 1, "partial-b"))
        assert batches == [["partial-a"], ["full-a"], ["partial-b"]]
        by_stream = {key[1]: assembly for key, assembly in peer._chunk_assemblies.items()}
        assert _titles(by_stream["s/1"].items) == ["partial-a", "partial-b"]
        assert _titles(by_stream["s/2"].items) == ["full-a"]
        # The arrival buffer mirrors the delivery that released last —
        # one stream's in-order items, never the interleaved union.
        assert _titles(peer.chunk_items("q8")) == ["partial-a", "partial-b"]

    def test_new_delivery_supersedes_a_closed_partials_buffer(self):
        """The arrival buffer mirrors the latest delivery, not their union.

        A stuck branch streams a partial answer; its close keeps the buffer
        (so ``chunk_items`` serves the degraded outcome) but retires the
        assembly.  When the complete answer then opens a fresh stream, the
        partial's items must not prefix the new delivery's — that double
        count is exactly what ``QueryHandle.items()`` would re-yield.
        """
        peer = _bare_receiver()
        streams: list[str] = []
        peer.watch_chunks("q9", lambda items, stream: streams.append(stream))

        peer._handle_result_chunk(_chunk_frame("q9", "s/1", 0, "partial-a"))
        # A partial result-end keeps the buffer but retires the assembly.
        peer._chunk_assemblies.pop(("q9", "s/1"))
        assert _titles(peer.chunk_items("q9")) == ["partial-a"]

        peer._handle_result_chunk(_chunk_frame("q9", "s/2", 0, "full-a"))
        peer._handle_result_chunk(_chunk_frame("q9", "s/2", 1, "full-b"))
        assert _titles(peer.chunk_items("q9")) == ["full-a", "full-b"]
        assert streams == ["s/1", "s/2", "s/2"]  # watchers can spot the switch

    def test_assembly_memory_evicts_oldest_incomplete_delivery(self):
        """Reassembly state from producers that died mid-stream is bounded."""
        peer = _bare_receiver()
        peer.assembly_memory = 2
        for n in range(4):
            peer._handle_result_chunk(_chunk_frame(f"q{n}", "s/1", 0, f"item-{n}"))
        assert [key[0] for key in peer._chunk_assemblies] == ["q2", "q3"]
        # The evicted queries' arrival buffers went with their assemblies.
        assert set(peer._chunk_buffers) == {"q2", "q3"}
        # A chunk arrival refreshes recency: the actively reassembling q2
        # survives the next eviction, the now-stalest q3 goes instead.
        peer._handle_result_chunk(_chunk_frame("q2", "s/1", 1, "item-2b"))
        peer._handle_result_chunk(_chunk_frame("q4", "s/1", 0, "item-4"))
        assert [key[0] for key in peer._chunk_assemblies] == ["q2", "q4"]
        assert _titles(peer.chunk_items("q2")) == ["item-2", "item-2b"]

    def test_straggler_chunks_after_the_answer_are_dropped(self):
        """A superseded stream's in-flight chunk can't corrupt an answered query.

        Once the complete result is recorded, late chunk/end frames from a
        torn-down delivery must neither repopulate the arrival buffer with
        stale items nor strand an orphan assembly.
        """
        peer = _bare_receiver()
        peer.results["q10"] = QueryResult(
            query_id="q10",
            items=make_items(2),
            partial=False,
            received_at=1.0,
            provenance_hops=3,
            max_staleness_minutes=0.0,
        )
        peer._handle_result_chunk(_chunk_frame("q10", "s/1", 0, "stale"))
        assert not peer._chunk_assemblies and not peer._chunk_buffers
        peer._handle_result_end(_Frame({"query_id": "q10", "stream": "s/1", "seq": 1}))
        assert not peer._chunk_assemblies

    def test_straggling_partial_result_frame_does_not_overwrite_the_answer(self):
        """Single-frame path: a late partial can't clobber the complete result."""
        peer = _bare_receiver()
        final = QueryResult(
            query_id="q11",
            items=make_items(2),
            partial=False,
            received_at=1.0,
            provenance_hops=2,
            max_staleness_minutes=0.0,
        )
        peer.results["q11"] = final
        peer._handle_result(_Frame({"query_id": "q11", "partial": True, "document": "<result/>"}))
        assert peer.results["q11"] is final

    def test_cancel_notice_sent_once_per_producer(self):
        """Straggler frames of a cancelled query don't each re-notify."""
        peer = _bare_receiver()
        peer.cancelled_queries = {"q12": None}
        sent: list[tuple[str, str]] = []
        peer.send = lambda target, kind, payload, size_bytes=0: sent.append((target, kind))
        for _ in range(3):
            peer._handle_result_chunk(_chunk_frame("q12", "s/1", 0, "late"))
        assert sent == [("seller:9020", "cancel-query")]

    def test_stale_pump_event_does_not_drive_a_superseding_stream(self):
        """A torn-down stream's scheduled pump must not pump its successor.

        Pump events carry their stream token; one delivery pumps one chunk
        per logical event — the backpressure invariant the aio bounded
        inboxes rely on — even when a newer delivery superseded the stream
        that scheduled the event.
        """
        from repro.peers.peer import _ResultStream

        peer = _bare_receiver()
        sent: list[tuple] = []
        peer.send = lambda *args, **kwargs: sent.append(args)
        peer._open_streams = {
            "q13": _ResultStream(
                query_id="q13",
                target="client:9020",
                iterator=iter(make_items(3)),
                partial=False,
                hops=1,
                staleness=0.0,
                stream="me/2",
            )
        }
        peer._pump_stream("q13", "me/1")  # event from the superseded stream
        assert not sent
        assert peer._open_streams["q13"].seq == 0

    def test_degraded_partial_buffers_are_bounded(self):
        """Kept buffers of partial answers don't grow without bound.

        A partial close keeps the arrival buffer (serving ``chunk_items``)
        while retiring the assembly; an issuer whose queries keep degrading
        to partials must not retain every such item list forever.
        """
        peer = _bare_receiver()
        peer.assembly_memory = 2
        for n in range(5):
            peer._handle_result_chunk(_chunk_frame(f"q{n}", "s/1", 0, f"item-{n}"))
            peer._chunk_assemblies.pop((f"q{n}", "s/1"))  # as a partial close does
        assert set(peer._chunk_buffers) == {"q3", "q4"}
        assert _titles(peer.chunk_items("q4")) == ["item-4"]

    def test_cancel_and_forward_memory_are_bounded(self):
        """Per-query bookkeeping on a long-running relay evicts oldest-first."""
        peer = QueryPeer.__new__(QueryPeer)
        peer.cancelled_queries = {}
        peer.cancel_memory = 3
        peer._forwarded_to = {}
        peer.forward_memory = 3
        for n in range(5):
            peer._remember_cancelled(f"q{n}")
        assert list(peer.cancelled_queries) == ["q2", "q3", "q4"]
        for n in range(4):
            peer._remember_forward(f"q{n}", "hop:1")
        peer._remember_forward("q1", "hop:2")  # re-forwarding refreshes recency
        peer._remember_forward("q4", "hop:1")
        assert list(peer._forwarded_to) == ["q3", "q1", "q4"]
        assert peer._forwarded_to["q1"] == "hop:2"

    def test_aio_counts_individually_framed_chunks(self):
        with overrides(streaming_results=True):
            with _chunked_cluster("aio") as cluster:
                client = cluster.session("client:9020")
                handle = (
                    client.query()
                    .area(portland_area(cluster))
                    .where("price < 20")
                    .expecting(3)
                    .submit()
                )
                handle.result(timeout=240_000)
                stats = cluster.network.transport.stats()
                # 3 items at 1 item/chunk: at least 3 chunk frames + 1 end frame.
                assert stats["chunk_frames"] >= 4


class TestCancellation:
    def test_cancel_mid_stream_tears_down_producers(self):
        with overrides(streaming_results=True):
            with _chunked_cluster("sim") as cluster:
                client = cluster.session("client:9020")
                handle = (
                    client.query()
                    .area(portland_area(cluster))
                    .where("price < 20")
                    .expecting(3)
                    .submit()
                )
                first = None
                for item in handle.items(timeout=240_000):
                    first = item.child_text("title")
                    handle.cancel()
                assert first is not None
                assert handle.cancelled()
                with pytest.raises(QueryCancelled):
                    handle.result(timeout=1_000)
                with pytest.raises(QueryCancelled):
                    list(handle.items())
                with pytest.raises(QueryCancelled):
                    list(handle)  # __iter__ refuses too, not a quiet empty stream
                cluster.network.run_until_idle()
                for session in cluster.sessions():
                    assert not session.peer._open_streams

    def test_unreachable_chunk_frame_tears_down_the_open_stream(self):
        """A bounced chunk closes the producer's stream for the dead target.

        A stream can still be open when the bounce returns (the producer
        parked mid-delivery); the unreachable notice must close its
        iterator instead of letting later pumps keep producing for a
        consumer that no longer exists.
        """
        from repro.peers.peer import _ResultStream

        with small_cluster("sim") as cluster:
            seller = cluster.session("seller1:9020").peer
            closed: list[bool] = []

            def items_then_mark():
                try:
                    yield from make_items(5)
                finally:
                    closed.append(True)

            iterator = items_then_mark()
            next(iterator)
            seller._open_streams["q-dead"] = _ResultStream(
                query_id="q-dead",
                target="client:9020",
                iterator=iterator,
                partial=False,
                hops=1,
                staleness=0.0,
                stream="seller1:9020/9",
            )

            class _Msg:
                def __init__(self, kind, payload, sender):
                    self.kind, self.payload, self.sender = kind, payload, sender

            # A stale bounce from a superseded delivery leaves the live
            # stream alone (token mismatch — _pump_stream's same hazard).
            stale = _Msg(
                "result-chunk",
                {"query_id": "q-dead", "stream": "seller1:9020/8", "seq": 3},
                seller.address,
            )
            seller._handle_unreachable(_Msg("peer-unreachable", stale, "client:9020"))
            assert not closed and "q-dead" in seller._open_streams

            original = _Msg(
                "result-chunk",
                {"query_id": "q-dead", "stream": "seller1:9020/9", "seq": 1},
                seller.address,
            )
            seller._handle_unreachable(_Msg("peer-unreachable", original, "client:9020"))
            assert closed  # the producing iterator was closed
            assert "q-dead" not in seller._open_streams
            assert seller.dead_letters[-1] is original

    def test_local_stuck_delivery_does_not_overwrite_the_answer(self):
        """A duplicate plan going stuck at the issuer can't clobber the result."""
        from repro.algebra import PlanBuilder
        from repro.mqp import MutantQueryPlan

        with small_cluster("sim") as cluster:
            client = cluster.session("client:9020")
            handle = (
                client.query()
                .area(portland_area(cluster))
                .where("price < 20")
                .expecting(3)
                .submit()
            )
            final = handle.result(timeout=240_000)
            assert not final.partial
            plan = (
                PlanBuilder.url("seller1:9020", "/cds")
                .select("price < 10")
                .display("client:9020")
            )
            duplicate = MutantQueryPlan(plan, query_id=handle.query_id)
            client.peer._deliver(duplicate, partial=True)
            recorded = client.peer.results[handle.query_id]
            assert not recorded.partial
            assert recorded.count == final.count

    def test_cancel_after_completion_is_a_noop(self):
        """Standard future semantics: cancelling a done handle changes nothing."""
        with small_cluster("sim") as cluster:
            client = cluster.session("client:9020")
            handle = (
                client.query()
                .area(portland_area(cluster))
                .where("price < 20")
                .expecting(3)
                .submit()
            )
            result = handle.result(timeout=240_000)
            handle.cancel()
            assert not handle.cancelled()
            assert handle.result(timeout=1_000).count == result.count
            assert handle.query_id not in client.peer.cancelled_queries

    def test_cancel_propagates_along_the_forwarding_chain(self):
        with small_cluster("sim") as cluster:
            client = cluster.session("client:9020")
            handle = (
                client.query()
                .area(portland_area(cluster))
                .where("price < 20")
                .submit()
            )
            handle.cancel()
            cluster.network.run_until_idle()
            cancelled_at = [
                session.peer.address
                for session in cluster.sessions()
                if handle.query_id in session.peer.cancelled_queries
            ]
            # The notice walked the chain beyond the issuing client.
            assert len(cancelled_at) > 1
            dropped = sum(session.peer.plans_cancelled for session in cluster.sessions())
            del dropped  # plan may already have finished a hop; drop count is best-effort

    def test_cancelled_peer_drops_arriving_plan(self):
        from repro.mqp import MutantQueryPlan
        from repro.algebra import PlanBuilder

        with small_cluster("sim") as cluster:
            seller = cluster.session("seller1:9020").peer
            seller.cancel_query("q-dead")
            plan = PlanBuilder.url("seller1:9020", "/cds").select("price < 10").display(
                "client:9020"
            )
            mqp = MutantQueryPlan(plan, query_id="q-dead")
            before = seller.plans_cancelled
            seller._process_and_act(mqp)
            assert seller.plans_cancelled == before + 1
            assert "q-dead" not in seller.results


# --------------------------------------------------------------------------- #
# Watcher reentrancy (satellite)
# --------------------------------------------------------------------------- #


def _result(query_id: str, partial: bool = False) -> QueryResult:
    return QueryResult(query_id=query_id, items=[], partial=partial)


class TestWatcherReentrancy:
    @pytest.fixture()
    def peer(self, namespace):
        return QueryPeer("watcher:9020", namespace)

    def test_self_unregistering_watcher_does_not_skip_siblings(self, peer):
        fired: list[str] = []

        def selfish(result: QueryResult) -> None:
            fired.append("selfish")
            peer.unwatch_results("q1", selfish)

        peer._result_watchers["q1"] = []
        peer._result_watchers["q1"].append(selfish)
        peer._result_watchers["q1"].append(lambda result: fired.append("sibling-a"))
        peer._result_watchers["q1"].append(lambda result: fired.append("sibling-b"))
        peer._dispatch_result("q1", _result("q1", partial=True))
        assert fired == ["selfish", "sibling-a", "sibling-b"]
        # A second partial only reaches the still-registered siblings.
        peer._dispatch_result("q1", _result("q1", partial=True))
        assert fired == ["selfish", "sibling-a", "sibling-b", "sibling-a", "sibling-b"]

    def test_watcher_unwatching_a_sibling_mid_dispatch_skips_it(self, peer):
        fired: list[str] = []

        def victim(result: QueryResult) -> None:
            fired.append("victim")

        def assassin(result: QueryResult) -> None:
            fired.append("assassin")
            peer.unwatch_results("q2", victim)

        peer._result_watchers["q2"] = [assassin, victim]
        peer._dispatch_result("q2", _result("q2", partial=True))
        assert fired == ["assassin"]

    def test_unwatch_during_terminal_dispatch_works(self, peer):
        fired: list[str] = []

        def first(result: QueryResult) -> None:
            fired.append("first")
            peer.unwatch_results("q3", second)

        def second(result: QueryResult) -> None:
            fired.append("second")

        peer._result_watchers["q3"] = [first, second]
        peer._dispatch_result("q3", _result("q3", partial=False))
        assert fired == ["first"]
        assert "q3" not in peer._result_watchers
        assert "q3" not in peer._terminal_watchers

    def test_watcher_issuing_a_new_query_mid_dispatch(self):
        """A watcher that starts a brand-new query — whose own delivery can
        recurse into the dispatcher — corrupts nothing."""
        with small_cluster("sim") as cluster:
            client = cluster.session("client:9020")
            peer = client.peer
            outcomes: list[str] = []

            first = client.query().area(portland_area(cluster)).where("price < 10").expecting(2)
            handle = first.submit()

            def chained(result: QueryResult) -> None:
                outcomes.append(f"first:{result.partial}")
                nested = (
                    client.query()
                    .area(portland_area(cluster))
                    .where("price < 20")
                    .expecting(3)
                    .submit()
                )
                outcomes.append(f"second:{nested.result(timeout=240_000).count}")

            peer.watch_results(handle.query_id, chained)
            handle.result(timeout=240_000)
            assert any(entry.startswith("second:") for entry in outcomes)
            # The registry survived the recursion intact.
            assert handle.query_id not in peer._result_watchers or peer._result_watchers[
                handle.query_id
            ]

    def test_reentrant_partial_during_terminal_dispatch_keeps_siblings(self, peer):
        """A watcherless partial dispatched from inside a final dispatch
        (a straggler surfacing while a watcher drives the network) must not
        release the terminal list the outer dispatch is still walking."""
        fired: list[str] = []

        def meddler(result: QueryResult) -> None:
            fired.append("meddler")
            peer._dispatch_result("q5", _result("q5", partial=True))

        peer._result_watchers["q5"] = [meddler, lambda result: fired.append("sibling")]
        peer._dispatch_result("q5", _result("q5", partial=False))
        assert fired == ["meddler", "sibling"]
        assert "q5" not in peer._terminal_watchers

    def test_watcher_registering_new_watcher_mid_dispatch(self, peer):
        fired: list[str] = []

        def registrar(result: QueryResult) -> None:
            fired.append("registrar")
            peer.watch_results("q4", lambda r: fired.append("late"))

        peer.results["q4"] = _result("q4", partial=True)  # replayed to the newcomer
        peer._result_watchers["q4"] = [registrar]
        peer._dispatch_result("q4", _result("q4", partial=True))
        # The newcomer saw the replay immediately but not the in-flight
        # dispatch (its snapshot predates the registration).
        assert fired == ["registrar", "late"]


# --------------------------------------------------------------------------- #
# Eager area plans (satellite): the PR-4 predicate-less quirk
# --------------------------------------------------------------------------- #


class TestEagerAreaPlans:
    def test_flag_off_preserves_the_seed_ping_pong(self):
        assert flags.eager_area_plans is False  # seed byte-identity default
        with small_cluster("sim") as cluster:
            client = cluster.session("client:9020")
            handle = client.query().area(portland_area(cluster)).submit()
            result = handle.result(timeout=4_000_000)
            assert result.partial
            assert result.count == 0
            assert result.provenance_hops >= 32  # bounced to max_hops

    def test_flag_on_completes_at_the_data_holders(self):
        with overrides(eager_area_plans=True):
            with small_cluster("sim") as cluster:
                client = cluster.session("client:9020")
                handle = client.query().area(portland_area(cluster)).submit()
                result = handle.result(timeout=4_000_000)
                assert not result.partial
                assert sorted(item.child_text("title") for item in result.items) == [
                    "Abbey Road",
                    "Blue Train",
                    "Kind of Blue",
                ]
                assert result.provenance_hops < 32

    def test_selective_plans_are_not_pinned(self):
        """The eager fix targets only the bare-union shape.

        A plan with any real operator above its leaves reduces through
        ``evaluable_subplans`` and ships its (smaller) evaluated results;
        pinning whole local collections into it would balloon the wire form.
        """
        from repro.algebra import PlanBuilder
        from repro.mqp import MutantQueryPlan
        from repro.mqp.processor import MQPProcessor

        selective = (
            PlanBuilder.url("seller1:9020", "/cds")
            .select("price < 10")
            .display("client:9020")
        )
        assert not MQPProcessor._is_bare_union_plan(MutantQueryPlan(selective))
        bare = (
            PlanBuilder.url("seller1:9020", "/cds")
            .union(PlanBuilder.url("seller2:9020", "/cds"))
            .display("client:9020")
        )
        assert MQPProcessor._is_bare_union_plan(MutantQueryPlan(bare))

    def test_flag_on_streams_the_completed_answer(self):
        with overrides(eager_area_plans=True, streaming_results=True):
            with _chunked_cluster("sim") as cluster:
                client = cluster.session("client:9020")
                handle = client.query().area(portland_area(cluster)).submit()
                titles = [item.child_text("title") for item in handle.items(timeout=4_000_000)]
                assert sorted(titles) == ["Abbey Road", "Blue Train", "Kind of Blue"]
