"""The trie-backed catalog index vs. the linear-scan oracle.

The index must be *indistinguishable* from the seed's linear scans — same
entries, same order, byte for byte — including under churn: randomized
register → forget/prune → rejoin sequences exercise the incremental
maintenance paths (bucket refcounts, branch pruning, role buckets) that a
build-once index would never hit.
"""

from __future__ import annotations

import random

import pytest

from repro.catalog import (
    Catalog,
    CatalogLevel,
    CollectionRef,
    IntensionalStatement,
    NamedResourceEntry,
    ServerEntry,
    ServerRole,
    canonical_address,
)
from repro.perf import flags, seed_baseline

ROLES = [ServerRole.BASE] * 6 + [ServerRole.INDEX, ServerRole.META_INDEX, ServerRole.CLIENT]


def _random_area(namespace, rng):
    locations = namespace.dimensions[0].categories()
    merchandise = namespace.dimensions[1].categories()
    cells = [
        [rng.choice(locations), rng.choice(merchandise)]
        for _ in range(rng.choice([1, 1, 1, 2]))
    ]
    return namespace.area(*cells)


def _random_entry(namespace, rng, address):
    role = rng.choice(ROLES)
    return ServerEntry(
        address,
        role,
        _random_area(namespace, rng),
        authoritative=rng.random() < 0.5,
        collections=[CollectionRef(address, "/items")] if role is ServerRole.BASE else [],
    )


def _assert_equivalent(catalog, namespace, rng, checks=12):
    """Every lookup flavour must match the linear oracle, order included."""
    role_filters = (
        None,
        (ServerRole.BASE,),
        (ServerRole.INDEX, ServerRole.META_INDEX),
        (ServerRole.CLIENT,),
    )
    for _ in range(checks):
        area = _random_area(namespace, rng)
        for roles in role_filters:
            assert catalog.servers_overlapping(area, roles=roles) == catalog._scan_overlapping(
                area, roles=roles
            )
            assert catalog.servers_covering(area, roles=roles) == catalog._scan_covering(
                area, roles=roles
            )
        assert catalog.authoritative_servers(area) == [
            entry
            for entry in catalog._scan_covering(
                area, roles=(ServerRole.INDEX, ServerRole.META_INDEX)
            )
            if entry.authoritative
        ]
        assert catalog.collections_overlapping(area) == sorted(
            collection
            for entry in catalog._scan_overlapping(area, roles=(ServerRole.BASE,))
            for collection in entry.collections
        )
        for level in (CatalogLevel.BASE, CatalogLevel.INDEX):
            assert catalog.statements_for(level, area) == [
                statement
                for statement in catalog.statements
                if statement.applies_to(level, area)
            ]


class TestChurnEquivalence:
    @pytest.mark.parametrize("seed", [3, 17, 4040])
    def test_randomized_register_prune_rejoin(self, namespace, seed):
        rng = random.Random(seed)
        catalog = Catalog("churn-test")
        addresses = [f"peer-{index:03d}:9020" for index in range(60)]

        # Phase 1: initial registration flood (with duplicate statements).
        for address in addresses:
            catalog.register_server(_random_entry(namespace, rng, address))
        for index in range(0, len(addresses), 7):
            statement = IntensionalStatement.parse(
                f"base[(USA.OR,*)]@{addresses[index]} >= base[(USA.OR,*)]@{addresses[(index + 1) % len(addresses)]}"
            )
            catalog.register_statement(statement)
            catalog.register_statement(statement)
        _assert_equivalent(catalog, namespace, rng)

        # Phase 2: churn — leave/crash (forget or prune), then rejoin with a
        # *different* area (the merge path) or the same one.
        for _ in range(120):
            action = rng.random()
            address = rng.choice(addresses)
            if action < 0.35:
                catalog.forget_server(address)
            elif action < 0.6:
                catalog.prune_server(address)
            else:
                catalog.register_server(_random_entry(namespace, rng, address))
        _assert_equivalent(catalog, namespace, rng)

        # Phase 3: everyone rejoins; the catalog is fully populated again.
        for address in addresses:
            catalog.register_server(_random_entry(namespace, rng, address))
        _assert_equivalent(catalog, namespace, rng)

    def test_seed_baseline_flag_routes_to_oracle(self, namespace):
        rng = random.Random(99)
        catalog = Catalog("flagged")
        for index in range(20):
            catalog.register_server(_random_entry(namespace, rng, f"p{index}:1"))
        area = _random_area(namespace, rng)
        indexed = catalog.servers_overlapping(area)
        with seed_baseline():
            assert not flags.indexed_catalog
            assert catalog.servers_overlapping(area) == indexed
        assert flags.indexed_catalog


class TestOrderingUnchangedVsSeed:
    def test_results_in_address_order(self, namespace):
        """The seed sorted every scan by address; the index must match."""
        catalog = Catalog("ordering")
        rng = random.Random(5)
        # Register in shuffled order so bucket order != address order.
        addresses = [f"peer-{index:03d}:9020" for index in range(40)]
        shuffled = addresses[:]
        rng.shuffle(shuffled)
        for address in shuffled:
            catalog.register_server(_random_entry(namespace, rng, address))
        area = namespace.top_area()
        result = [entry.address for entry in catalog.servers_overlapping(area)]
        assert result == sorted(result)
        assert result == [entry.address for entry in catalog._scan_overlapping(area)]
        covering = [entry.address for entry in catalog.servers_covering(area)]
        assert covering == sorted(covering)

    def test_statements_in_registration_order(self, namespace):
        catalog = Catalog("statement-order")
        texts = [
            "base[(USA.OR,*)]@c:1 >= base[(USA.OR,*)]@d:1",
            "base[(USA,*)]@a:1 = base[(USA,*)]@b:1",
            "base[(USA.OR.Portland,*)]@e:1 >= base[(USA.OR.Portland,*)]@f:1",
        ]
        for text in texts:
            catalog.register_statement(IntensionalStatement.parse(text))
        area = namespace.area(["USA/OR/Portland", "Music"])
        found = catalog.statements_for(CatalogLevel.BASE, area)
        assert [statement.to_text() for statement in found] == texts

    def test_statement_dedupe_is_set_based(self):
        catalog = Catalog("dedupe")
        statement = IntensionalStatement.parse("base[(USA,*)]@a:1 = base[(USA,*)]@b:1")
        for _ in range(5):
            catalog.register_statement(statement)
            catalog.register_statement(IntensionalStatement.parse(statement.to_text()))
        assert catalog.statements == [statement]


class TestPruneCanonicalUrls:
    def test_prune_matches_any_url_shape(self, namespace):
        catalog = Catalog("prune")
        area = namespace.area(["USA/OR/Portland", "Music/CDs"])
        catalog.register_named_resource(
            NamedResourceEntry(
                "urn:ForSale:Portland-CDs",
                [
                    CollectionRef("http://seller-a:9020/", "/cds"),
                    CollectionRef("https://seller-a:9020", "/more-cds"),
                    CollectionRef("seller-a:9020", "/yet-more"),
                    CollectionRef("http://seller-b:9020", "/keep"),
                ],
                resolver_servers=["seller-a:9020", "index:9020"],
                area=area,
            )
        )
        removed = catalog.prune_server("seller-a:9020")
        assert removed == 4  # three collections + one resolver pointer
        entry = catalog.lookup_named("urn:ForSale:Portland-CDs")
        assert [collection.url for collection in entry.collections] == ["http://seller-b:9020"]
        assert entry.resolver_servers == ["index:9020"]

    def test_canonical_address_forms(self):
        assert canonical_address("http://host:9020") == "host:9020"
        assert canonical_address("https://host:9020/") == "host:9020"
        assert canonical_address("host:9020") == "host:9020"
        assert canonical_address(" http://host:8080/ ") == "host:8080"
        # Ports distinguish peers; normalization must not erase them.
        assert canonical_address("http://host:8080") != canonical_address("http://host:9020")


class TestIndexMaintenance:
    def test_forget_then_lookup_never_sees_ghost(self, namespace):
        catalog = Catalog("ghosts")
        entry = ServerEntry(
            "ghost:9020", ServerRole.BASE, namespace.area(["USA/OR", "Music"])
        )
        catalog.register_server(entry)
        assert catalog.servers_overlapping(namespace.area(["USA/OR", "*"]))
        catalog.forget_server("ghost:9020")
        assert catalog.servers_overlapping(namespace.area(["USA/OR", "*"])) == []
        # Re-register with a disjoint area: the old trie path must be gone.
        catalog.register_server(
            ServerEntry("ghost:9020", ServerRole.BASE, namespace.area(["USA/WA", "Music"]))
        )
        assert catalog.servers_overlapping(namespace.area(["USA/OR", "*"])) == []
        assert [entry.address for entry in catalog.servers_overlapping(namespace.area(["USA/WA", "*"]))] == [
            "ghost:9020"
        ]

    def test_merge_reregistration_reindexes_union(self, namespace):
        catalog = Catalog("merge")
        catalog.register_server(
            ServerEntry("s:1", ServerRole.BASE, namespace.area(["USA/OR/Portland", "Music"]))
        )
        catalog.register_server(
            ServerEntry("s:1", ServerRole.BASE, namespace.area(["USA/WA/Seattle", "Furniture"]))
        )
        for query in (["USA/OR/Portland", "*"], ["USA/WA/Seattle", "*"]):
            found = catalog.servers_overlapping(namespace.area(query))
            assert [entry.address for entry in found] == ["s:1"]
            assert found == catalog._scan_overlapping(namespace.area(query))
