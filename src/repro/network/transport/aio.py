"""Real-socket transport: every payload crosses a localhost TCP connection.

Each registered peer is served by its own asyncio server task; senders pool
one connection per directed link and push length-prefixed frames
(:mod:`~repro.network.transport.wire`) through it.  What stays deterministic
is the *logical* schedule: delivery callbacks run in the shared clock's
(time, sequence) order, exactly as on the simulator backend — but a
delivery callback only fires once the recipient's reader task has actually
pulled the frame off its socket and decoded it.  The delivered message is
the decoded copy, so serialization cost, framing, connection management and
socket backpressure are all real, while scenario reports stay byte-identical
with the ``sim`` backend (the property ``tests/test_transport.py`` gates).

Backpressure: each peer owns a bounded inbox.  When it fills, the peer's
reader tasks stop reading, the kernel socket buffers fill, and senders'
``drain()`` calls block — a real end-to-end backpressure chain.  The bound
is soft in exactly one direction: when the drive loop is *waiting* for a
specific frame, readers may run past the limit until it arrives (otherwise
a large early frame parked in a full inbox could starve a smaller,
logically-earlier one — a deadlock, not a model).

Churn mapping: ``go_offline``/``leave`` recycle the departing peer's pooled
connections (drain, close; later frames reconnect), modelling session loss.
Process-state loss stays at the peer layer (``QueryPeer.go_offline`` drops
its batch buffer), and drop/notice *policy* stays in the network — which is
what keeps the two backends' reports identical under churn schedules.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import itertools
from collections import deque
from typing import TYPE_CHECKING, Callable

from ...errors import SimulationError
from .base import Transport, TransportError
from .wire import HEADER, MAX_FRAME_BYTES, FrameEncoder, decode_frame

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from ..message import Message
    from ..network import Network

__all__ = ["AsyncioTransport"]


class _GatedDelivery:
    """A delivery callback gated on the physical arrival of its frame.

    The drive loop recognizes instances of this class on the event queue,
    awaits the frame, and stores the decoded message here before stepping
    the event.  If the backend is driven without gating (someone calls
    ``simulator.run`` directly), the callback degrades to by-reference
    delivery — logically identical, just not exercising the wire.
    """

    __slots__ = ("network", "message", "decoded")

    def __init__(self, network: "Network", message: "Message") -> None:
        self.network = network
        self.message = message
        self.decoded: "Message | None" = None

    def __call__(self) -> None:
        delivered = self.decoded if self.decoded is not None else self.message
        self.network._deliver(delivered)


class _Inbox:
    """Bounded arrival buffer for one peer, keyed by message id."""

    __slots__ = ("limit", "stored", "waiters", "_room", "high_water")

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.stored: dict[int, "Message"] = {}
        self.waiters: dict[int, asyncio.Future] = {}
        self._room = asyncio.Event()
        self._room.set()
        self.high_water = 0

    def put(self, message: "Message") -> None:
        """Accept one decoded frame (resolving a demand if one is pending)."""
        waiter = self.waiters.pop(message.message_id, None)
        if waiter is not None and not waiter.done():
            waiter.set_result(message)
            return
        self.stored[message.message_id] = message
        if len(self.stored) > self.high_water:
            self.high_water = len(self.stored)
        if len(self.stored) >= self.limit and not self.waiters:
            self._room.clear()

    async def wait_for_room(self) -> None:
        """Reader-side backpressure: block while the inbox is full."""
        await self._room.wait()

    def take(self, message_id: int) -> "Message | None":
        """Consume a stored frame; reopens the inbox when it drains."""
        message = self.stored.pop(message_id, None)
        if len(self.stored) < self.limit:
            self._room.set()
        return message

    def demand(self, message_id: int, loop: asyncio.AbstractEventLoop) -> asyncio.Future:
        """The drive loop needs this frame now: bypass the bound until it lands."""
        future = loop.create_future()
        self.waiters[message_id] = future
        self._room.set()
        return future


class _Link:
    """One pooled, ordered connection from ``sender`` to ``recipient``."""

    __slots__ = (
        "sender",
        "recipient",
        "queue",
        "wake",
        "writer",
        "task",
        "close_when_idle",
        "ever_connected",
        "last_used",
        "writing",
    )

    def __init__(self, sender: str, recipient: str) -> None:
        self.sender = sender
        self.recipient = recipient
        self.queue: deque[bytes] = deque()
        self.wake: asyncio.Event | None = None
        self.writer: asyncio.StreamWriter | None = None
        self.task: asyncio.Task | None = None
        self.close_when_idle = False
        self.ever_connected = False
        self.last_used = 0
        self.writing = False


class AsyncioTransport(Transport):
    """Peers as asyncio tasks, speaking length-prefixed frames over TCP."""

    name = "aio"

    def __init__(
        self,
        inbox_limit: int = 64,
        max_links: int = 1024,
        arrival_timeout_s: float = 30.0,
        host: str = "127.0.0.1",
    ) -> None:
        super().__init__()
        if inbox_limit < 1:
            raise SimulationError("inbox_limit must be at least 1")
        self.inbox_limit = inbox_limit
        self.max_links = max_links
        self.arrival_timeout_s = arrival_timeout_s
        self.host = host
        self._loop: asyncio.AbstractEventLoop | None = None
        self._servers: dict[str, asyncio.Server] = {}
        self._ports: dict[str, int] = {}
        self._inboxes: dict[str, _Inbox] = {}
        self._links: dict[tuple[str, str], _Link] = {}
        self._use_tick = itertools.count(1)
        # One reusable encode buffer per transport: all sends happen on the
        # drive thread, so the encoder's scratch bytearray is never shared.
        self._encoder = FrameEncoder()
        self._closed = False
        self._last_wire_error: TransportError | None = None
        self._counters = {
            "frames_sent": 0,
            "frames_received": 0,
            "bytes_on_wire": 0,
            "chunk_frames": 0,
            "connections_opened": 0,
            "reconnects": 0,
            "links_recycled": 0,
        }

    # ------------------------------------------------------------------ #
    # Transport interface
    # ------------------------------------------------------------------ #

    def send(self, message: "Message", delay: float) -> None:
        if self._closed:
            raise TransportError("cannot send on a closed transport")
        assert self._network is not None, "transport is not bound to a network"
        # Logical half: a gated delivery event on the shared clock.
        self.simulator.schedule(delay, _GatedDelivery(self._network, message))
        # Physical half: the frame enters the link's ordered outbound queue.
        # A chunked result is many small frames here (one per chunk), each
        # subject to the recipient's bounded-inbox backpressure.
        if message.kind in ("result-chunk", "result-end", "delta-chunk"):
            self._counters["chunk_frames"] += 1
        link = self._link_for(message.sender, message.recipient)
        stamp = None if self._clock is None else self._clock.tick(self.simulator.now)
        link.queue.append(self._encoder.encode(message, stamp))
        self._kick(link)

    def run(
        self,
        until: float | None = None,
        stop: Callable[[], bool] | None = None,
        max_events: int = 1_000_000,
    ) -> None:
        if self._closed:
            raise TransportError("cannot run a closed transport")
        loop = self._ensure_loop()
        loop.run_until_complete(self._drive(until, max_events, stop))

    def peer_offline(self, address: str, graceful: bool = False) -> None:
        """Recycle the departing peer's connections once their queues drain.

        Graceful leavers have already queued their goodbye traffic
        (unregister messages), so drain-then-close transmits it; a crash
        closes the same way at the transport level — the *state* a crash
        loses (buffered plans) is modelled at the peer layer, keeping the
        logical outcome identical to the simulator backend.
        """
        del graceful  # same wire behaviour either way; see docstring
        for link in self._links.values():
            if address in (link.sender, link.recipient):
                link.close_when_idle = True
                if link.wake is not None:
                    link.wake.set()

    def peer_online(self, address: str) -> None:
        """A rejoined peer's links may carry traffic again (lazy reconnect).

        Only links whose *other* endpoint is also online come back: a link
        to a still-crashed peer keeps its recycle mark, so its connection
        is not resurrected on someone else's rejoin.
        """
        for link in self._links.values():
            if address not in (link.sender, link.recipient):
                continue
            other = link.recipient if link.sender == address else link.sender
            if other == address or self._endpoint_online(other):
                link.close_when_idle = False

    def _endpoint_online(self, address: str) -> bool:
        network = self._network
        if network is None or not network.has_node(address):
            return False
        return network.node(address).online

    def stats(self) -> dict[str, int]:
        counters = dict(self._counters)
        counters["peers_listening"] = len(self._servers)
        counters["links_pooled"] = len(self._links)
        counters["inbox_high_water"] = max(
            (inbox.high_water for inbox in self._inboxes.values()), default=0
        )
        return counters

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        loop.run_until_complete(self._shutdown())
        loop.run_until_complete(loop.shutdown_asyncgens())
        loop.close()

    # ------------------------------------------------------------------ #
    # The drive loop: logical order, gated on physical arrival
    # ------------------------------------------------------------------ #

    async def _drive(
        self,
        until: float | None,
        max_events: int,
        stop: Callable[[], bool] | None = None,
    ) -> None:
        await self._ensure_started()
        simulator = self.simulator
        if stop is not None and stop():
            return
        executed = 0
        while True:
            event = simulator.peek()
            if event is None:
                break
            if until is not None and event.time > until:
                simulator.advance_to(until)
                return
            callback = event.callback
            if isinstance(callback, _GatedDelivery) and callback.decoded is None:
                # Nothing that runs while awaiting (reader/writer tasks)
                # schedules logical events, so the peeked event is still
                # the head of the queue when we step it below.
                callback.decoded = await self._await_arrival(callback.message)
            if not simulator.step():
                break
            executed += 1
            if stop is not None and stop():
                return
            if executed >= max_events:
                raise SimulationError(f"simulation exceeded {max_events} events")
        if until is not None:
            simulator.advance_to(until)

    async def _await_arrival(self, message: "Message") -> "Message":
        inbox = self._inboxes.get(message.recipient)
        if inbox is None:
            raise TransportError(
                f"no listening peer for {message.recipient!r} "
                f"(message #{message.message_id})"
            )
        stored = inbox.take(message.message_id)
        if stored is not None:
            return stored
        future = inbox.demand(message.message_id, asyncio.get_running_loop())
        try:
            return await asyncio.wait_for(future, self.arrival_timeout_s)
        except asyncio.TimeoutError:
            detail = f" (writer reported: {self._last_wire_error})" if self._last_wire_error else ""
            raise TransportError(
                f"frame for message #{message.message_id} "
                f"({message.sender} -> {message.recipient}, {message.kind!r}) "
                f"did not arrive within {self.arrival_timeout_s:.0f}s wall clock "
                f"— a hung or severed socket{detail}"
            ) from None
        finally:
            inbox.waiters.pop(message.message_id, None)

    # ------------------------------------------------------------------ #
    # Servers and readers (one listening task per peer)
    # ------------------------------------------------------------------ #

    async def _ensure_started(self) -> None:
        assert self._network is not None, "transport is not bound to a network"
        for address in self._network.addresses():
            if address in self._servers:
                continue
            self._inboxes.setdefault(address, _Inbox(self.inbox_limit))
            server = await asyncio.start_server(
                functools.partial(self._serve_peer, address), self.host, 0
            )
            self._servers[address] = server
            self._ports[address] = server.sockets[0].getsockname()[1]
        # Frames queued while the loop was not running (publish traffic
        # ahead of the first run, or sends between two run calls) get
        # their writer tasks spawned — or parked ones woken — now.
        for link in self._links.values():
            if link.queue:
                self._kick(link)

    async def _serve_peer(
        self, address: str, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        inbox = self._inboxes[address]
        try:
            while True:
                try:
                    header = await reader.readexactly(HEADER.size)
                except asyncio.IncompleteReadError:
                    break  # clean EOF: the sender closed its end
                (length,) = HEADER.unpack(header)
                if length > MAX_FRAME_BYTES:
                    raise TransportError(
                        f"oversized frame ({length} bytes) on {address!r}'s socket"
                    )
                body = await reader.readexactly(length)
                message, stamp = decode_frame(body)
                if self._clock is not None and stamp is not None:
                    self._clock.observe(stamp, self.simulator.now)
                inbox.put(message)
                self._counters["frames_received"] += 1
                await inbox.wait_for_room()
        except (ConnectionResetError, asyncio.CancelledError):
            pass
        finally:
            writer.close()

    # ------------------------------------------------------------------ #
    # Links and writers (pooled, ordered, lazily connected)
    # ------------------------------------------------------------------ #

    def _link_for(self, sender: str, recipient: str) -> _Link:
        key = (sender, recipient)
        link = self._links.get(key)
        if link is None:
            link = _Link(sender, recipient)
            self._links[key] = link
        link.last_used = next(self._use_tick)
        return link

    def _kick(self, link: _Link) -> None:
        """Ensure a writer task is draining the link (no-op before the loop)."""
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            return  # queued pre-run; _ensure_started will kick it
        if link.task is None or link.task.done():
            if link.wake is None:
                link.wake = asyncio.Event()
            link.task = loop.create_task(self._drain_link(link))
        else:
            assert link.wake is not None
            link.wake.set()

    async def _drain_link(self, link: _Link) -> None:
        assert link.wake is not None
        try:
            while True:
                if not link.queue:
                    if link.close_when_idle:
                        break
                    link.wake.clear()
                    if link.queue:  # raced with an enqueue
                        continue
                    await link.wake.wait()
                    continue
                frame = link.queue.popleft()
                await self._write_frame(link, frame)
                self._counters["frames_sent"] += 1
                self._counters["bytes_on_wire"] += len(frame)
        except asyncio.CancelledError:
            raise
        finally:
            self._close_link_writer(link)
            link.task = None

    async def _write_frame(self, link: _Link, frame: bytes) -> None:
        """Push one frame, reconnecting once if the connection was reset.

        The retry makes this path at-least-once; that is safe because the
        receiving inbox keys arrivals by message id, so a duplicate of an
        already-consumed frame can never be delivered twice.
        """
        for attempt in (0, 1):
            # ``writing`` also covers the connect: it keeps the pool's
            # idle-link eviction (run inside _connect) off this link.
            link.writing = True
            try:
                writer = link.writer
                if writer is None or writer.is_closing():
                    writer = await self._connect(link)
                writer.write(frame)
                await writer.drain()
                return
            except (ConnectionError, OSError) as error:
                self._close_link_writer(link)
                if attempt:
                    failure = TransportError(
                        f"link {link.sender} -> {link.recipient} failed "
                        f"twice while writing one frame ({error})"
                    )
                    self._last_wire_error = failure
                    raise failure from None
            finally:
                link.writing = False

    async def _connect(self, link: _Link) -> asyncio.StreamWriter:
        port = self._ports.get(link.recipient)
        if port is None:
            raise TransportError(
                f"no listening socket for {link.recipient!r}; "
                "was the node registered before the run?"
            )
        _, writer = await asyncio.open_connection(self.host, port)
        link.writer = writer
        if link.ever_connected:
            self._counters["reconnects"] += 1
        link.ever_connected = True
        self._counters["connections_opened"] += 1
        self._evict_idle_links()
        return writer

    def _close_link_writer(self, link: _Link) -> None:
        if link.writer is not None:
            link.writer.close()
            link.writer = None
            self._counters["links_recycled"] += 1

    def _evict_idle_links(self) -> None:
        """Connection-pool bound: close the least-recently-used idle links."""
        open_links = [link for link in self._links.values() if link.writer is not None]
        if len(open_links) <= self.max_links:
            return
        open_links.sort(key=lambda link: link.last_used)
        for link in open_links[: len(open_links) - self.max_links]:
            # Truly idle only: a link with queued frames — or one whose
            # writer sits between write() and drain() — must not have its
            # connection closed out from under it.
            if not link.queue and not link.writing:
                self._close_link_writer(link)

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #

    async def _shutdown(self) -> None:
        for link in self._links.values():
            if link.task is not None:
                link.task.cancel()
        for link in self._links.values():
            if link.task is not None:
                with contextlib.suppress(asyncio.CancelledError):
                    await link.task
            self._close_link_writer(link)
        for server in self._servers.values():
            server.close()
        for server in self._servers.values():
            await server.wait_closed()
        current = asyncio.current_task()
        leftovers = [
            task for task in asyncio.all_tasks() if task is not current and not task.done()
        ]
        for task in leftovers:
            task.cancel()
        if leftovers:
            await asyncio.gather(*leftovers, return_exceptions=True)

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            self._loop = asyncio.new_event_loop()
        return self._loop

    def __repr__(self) -> str:
        return (
            f"AsyncioTransport(now={self.simulator.now:.1f}ms, "
            f"peers={len(self._servers)}, links={len(self._links)})"
        )
