"""Length-prefixed wire framing for real-socket transports (version 2).

A frame is a 4-byte big-endian length followed by a binary body::

    body    := version(u8=2) | envelope | stamp | payload
    envelope:= sender | recipient | kind        (u16 length + UTF-8 each)
               message_id(u64) | size_bytes(u64) | sent_at(f64)
               hop(u32) | attempt(u32) | transfer (u16 length + UTF-8,
               0xFFFF = none)
    stamp   := absent(u8=0) | present(u8=1) physical(f64) logical(u32)
               worker(u32)   — a hybrid-logical-clock stamp
               (:mod:`repro.multicore.clock`); in-process backends send 0.
    payload := TEXT(u8=0)     raw UTF-8 to end of frame
             | VALUE(u8=1)    one tagged value (:mod:`.codec`)
             | DOCUMENT(u8=2) tagged metadata value, then the document as
                              raw UTF-8 to end of frame

``str`` payloads — the common case: a mutant query plan travels as its
serialized XML document — ship as raw UTF-8, so what crosses the socket
for an MQP is exactly the paper's wire form.  Result envelopes (dicts
carrying a ``document`` string) ship their metadata as one tagged value
plus the document as raw UTF-8; the frame length bounds both, so neither
needs its own length prefix.  Everything else is a tagged codec value.

Version negotiation is rejection: the decoder accepts exactly version 2
and raises :class:`TransportError` otherwise.  A v1 (pickled) body began
with pickle's ``0x80`` opcode, so a stale peer is told apart from stream
corruption by the error message, not by guessing.  There is no pickle
anywhere on this path — see :mod:`.codec` for why that is a security
property, not just a performance one.

Encoding reuses one persistent buffer per :class:`FrameEncoder` (the
module-level :func:`encode_frame` owns one for the transport thread):
steady-state framing does zero per-frame header allocations.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING

from ...errors import SimulationError
from .base import TransportError
from .codec import CodecWriter, _guarded_read, _Reader, write_value

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from ...multicore.clock import HLCStamp

from ..message import Message

__all__ = [
    "HEADER",
    "MAX_FRAME_BYTES",
    "WIRE_VERSION",
    "FrameEncoder",
    "encode_frame",
    "decode_body",
    "decode_frame",
]

HEADER = struct.Struct("!I")
"""The length prefix: one unsigned 32-bit big-endian integer."""

MAX_FRAME_BYTES = 64 * 1024 * 1024
"""Sanity cap on a single frame; a larger one indicates stream corruption."""

WIRE_VERSION = 2
"""The one body version this build speaks.  Anything else is rejected."""

_TEXT = 0
_VALUE = 1
_DOCUMENT = 2

_U16 = struct.Struct("!H")
_NO_TRANSFER = 0xFFFF

# The fixed-width envelope tail and the HLC stamp, packed in one struct call
# each — the frame path is hot enough that per-field pack/unpack calls were
# the dominant cost, not the byte shuffling itself.
_FIXED = struct.Struct("!qqdII")
_STAMP = struct.Struct("!BdII")
_STAMP_BODY = struct.Struct("!dII")
_ENVELOPE = "!IBH%dsH%dsH%dsqqdII"
"""Length placeholder, version, the three length-prefixed texts, then the
fixed tail — one ``pack_into`` per frame (``%d`` slots are the text lengths;
the struct module caches compiled formats, and address/kind lengths are
near-constant within a scenario)."""

# Fully specialized whole-frame formats for the dominant frame shape — a raw
# UTF-8 text payload with no transfer id — without and with an HLC stamp.
_TEXT_FRAME = _ENVELOPE + "HBB"
_TEXT_FRAME_STAMPED = _ENVELOPE + "HBdIIB"


def _is_document_envelope(payload: object) -> bool:
    return isinstance(payload, dict) and isinstance(payload.get("document"), str)


class FrameEncoder:
    """Reusable frame encoder: one growing buffer, zero per-frame headers.

    Not thread-safe — the asyncio transport encodes from its drive thread
    and owns one; the multicore relay hub threads each own their own.
    """

    __slots__ = ("_writer",)

    def __init__(self) -> None:
        self._writer = CodecWriter()

    def encode(self, message: Message, stamp: "HLCStamp | None" = None) -> bytes:
        """Render ``message`` (optionally HLC-stamped) as one framed blob."""
        end = self._encode(message, stamp)
        return bytes(memoryview(self._writer.buf)[:end])

    def encode_view(self, message: Message, stamp: "HLCStamp | None" = None) -> memoryview:
        """Render into the reused buffer and return a view — zero copy out.

        The view aliases the encoder's buffer and is only valid until the
        next ``encode``/``encode_view`` call, so it suits a synchronous
        sender (``sendall`` under a lock) but never a queued writer.
        """
        # Encode strictly before taking the view: a live export blocks the
        # bytearray from growing mid-encode (BufferError).
        end = self._encode(message, stamp)
        return memoryview(self._writer.buf)[:end]

    def _encode(self, message: Message, stamp: "HLCStamp | None") -> int:
        writer = self._writer
        writer.reset()
        sender = message.sender.encode("utf-8")
        recipient = message.recipient.encode("utf-8")
        kind = message.kind.encode("utf-8")
        sender_length = len(sender)
        recipient_length = len(recipient)
        kind_length = len(kind)
        if (
            sender_length >= _NO_TRANSFER
            or recipient_length >= _NO_TRANSFER
            or kind_length >= _NO_TRANSFER
        ):
            longest = max(sender_length, recipient_length, kind_length)
            raise SimulationError(f"envelope field too long for the wire ({longest} bytes)")
        # Everything up to the payload tag is packed in one struct call — the
        # frame path is hot enough that per-field pack calls were the dominant
        # cost.  The ``%d`` slots are text lengths, so the compiled formats
        # stay in the struct module's cache (address/kind lengths are
        # near-constant within a scenario; the payload, whose length is not,
        # is copied separately below).
        transfer = message.transfer
        payload = message.payload
        if type(payload) is str and transfer is None:
            # The overwhelmingly common frame — a document as raw UTF-8, no
            # transfer id — gets a fully specialized single pack with the
            # length prefix computed up front, no backfill.
            raw = payload.encode("utf-8")
            payload_length = len(raw)
            if stamp is None:
                envelope_format = _TEXT_FRAME % (
                    sender_length, recipient_length, kind_length,
                )
                envelope_size = 47 + sender_length + recipient_length + kind_length
                body_length = envelope_size - 4 + payload_length
                if body_length > MAX_FRAME_BYTES:
                    raise SimulationError(
                        f"frame for message #{message.message_id} exceeds "
                        f"{MAX_FRAME_BYTES} bytes"
                    )
                writer.reserve(envelope_size + payload_length)
                buf = writer.buf
                struct.pack_into(
                    envelope_format, buf, 0,
                    body_length, WIRE_VERSION,
                    sender_length, sender, recipient_length, recipient,
                    kind_length, kind,
                    message.message_id, message.size_bytes, message.sent_at,
                    message.hop, message.attempt,
                    _NO_TRANSFER, 0, _TEXT,
                )
            else:
                envelope_format = _TEXT_FRAME_STAMPED % (
                    sender_length, recipient_length, kind_length,
                )
                envelope_size = 63 + sender_length + recipient_length + kind_length
                body_length = envelope_size - 4 + payload_length
                if body_length > MAX_FRAME_BYTES:
                    raise SimulationError(
                        f"frame for message #{message.message_id} exceeds "
                        f"{MAX_FRAME_BYTES} bytes"
                    )
                writer.reserve(envelope_size + payload_length)
                buf = writer.buf
                struct.pack_into(
                    envelope_format, buf, 0,
                    body_length, WIRE_VERSION,
                    sender_length, sender, recipient_length, recipient,
                    kind_length, kind,
                    message.message_id, message.size_bytes, message.sent_at,
                    message.hop, message.attempt,
                    _NO_TRANSFER, 1, stamp.physical, stamp.logical, stamp.worker,
                    _TEXT,
                )
            buf[envelope_size : envelope_size + payload_length] = raw
            return envelope_size + payload_length
        if transfer is None:
            transfer_format = "H"
            transfer_size = 2
            transfer_args: tuple = (_NO_TRANSFER,)
        else:
            transfer_raw = transfer.encode("utf-8")
            transfer_length = len(transfer_raw)
            if transfer_length >= _NO_TRANSFER:
                raise SimulationError(
                    f"envelope field too long for the wire ({transfer_length} bytes)"
                )
            transfer_format = "H%ds" % transfer_length
            transfer_size = 2 + transfer_length
            transfer_args = (transfer_length, transfer_raw)
        if stamp is None:
            stamp_format = "B"
            stamp_size = 1
            stamp_args: tuple = (0,)
        else:
            stamp_format = "BdII"
            stamp_size = 17
            stamp_args = (1, stamp.physical, stamp.logical, stamp.worker)
        envelope_format = (
            _ENVELOPE % (sender_length, recipient_length, kind_length)
            + transfer_format + stamp_format + "B"
        )
        # prefix 4 + version 1 + three u16 length prefixes (6) + fixed tail 32
        # + payload tag 1 = 44 bytes of fixed framing.
        envelope_size = (
            44 + sender_length + recipient_length + kind_length
            + transfer_size + stamp_size
        )
        if type(payload) is str:
            # The common case — a document as raw UTF-8 — knows its length up
            # front, so the length prefix is packed directly, no backfill.
            raw = payload.encode("utf-8")
            payload_length = len(raw)
            body_length = envelope_size - 4 + payload_length
            if body_length > MAX_FRAME_BYTES:
                raise SimulationError(
                    f"frame for message #{message.message_id} exceeds "
                    f"{MAX_FRAME_BYTES} bytes"
                )
            writer.reserve(envelope_size + payload_length)
            buf = writer.buf
            struct.pack_into(
                envelope_format, buf, 0,
                body_length, WIRE_VERSION,
                sender_length, sender, recipient_length, recipient,
                kind_length, kind,
                message.message_id, message.size_bytes, message.sent_at,
                message.hop, message.attempt,
                *transfer_args, *stamp_args, _TEXT,
            )
            buf[envelope_size : envelope_size + payload_length] = raw
            return envelope_size + payload_length
        writer.reserve(envelope_size)
        struct.pack_into(
            envelope_format, writer.buf, 0,
            0,  # the length prefix, backfilled below
            WIRE_VERSION,
            sender_length, sender, recipient_length, recipient,
            kind_length, kind,
            message.message_id, message.size_bytes, message.sent_at,
            message.hop, message.attempt,
            *transfer_args, *stamp_args,
            _DOCUMENT if _is_document_envelope(payload) else _VALUE,
        )
        if _is_document_envelope(payload):
            meta = {key: value for key, value in payload.items() if key != "document"}
            write_value(writer, meta)
            writer.raw(payload["document"].encode("utf-8"))
        else:
            write_value(writer, payload)
        body_length = writer.pos - 4
        if body_length > MAX_FRAME_BYTES:
            raise SimulationError(
                f"frame for message #{message.message_id} exceeds {MAX_FRAME_BYTES} bytes"
            )
        writer.u32_at(0, body_length)
        return writer.pos


_DEFAULT_ENCODER = FrameEncoder()


def encode_frame(message: Message, stamp: "HLCStamp | None" = None) -> bytes:
    """Render ``message`` as one length-prefixed frame (shared encoder)."""
    return _DEFAULT_ENCODER.encode(message, stamp)


def decode_frame(body: "bytes | memoryview") -> "tuple[Message, HLCStamp | None]":
    """Rebuild a :class:`Message` (and its HLC stamp) from one frame body.

    The original ``message_id`` is preserved — it is the delivery key the
    receiving transport matches logical events against — and the global
    message counter is left untouched.  Every malformation raises
    :class:`TransportError`.
    """
    data = memoryview(body) if type(body) is bytes else body
    total = len(data)
    try:
        version = data[0]
        if version != WIRE_VERSION:
            detail = " (a pickled v1 frame?)" if version == 0x80 else ""
            raise TransportError(
                f"unsupported wire version {version}{detail}; this build speaks "
                f"version {WIRE_VERSION} only"
            )
        # Bounds are checked before every slice: slicing a short memoryview
        # silently truncates instead of raising, so a clipped frame would
        # otherwise decode into garbage rather than a TransportError.  The
        # three text reads are unrolled — this is the per-frame hot path.
        pos = 3
        if pos > total:
            raise TransportError("truncated frame envelope")
        end = pos + ((data[1] << 8) | data[2])
        if end > total:
            raise TransportError("truncated frame envelope")
        sender = str(data[pos:end], "utf-8")
        pos = end + 2
        if pos > total:
            raise TransportError("truncated frame envelope")
        end = pos + ((data[end] << 8) | data[end + 1])
        if end > total:
            raise TransportError("truncated frame envelope")
        recipient = str(data[pos:end], "utf-8")
        pos = end + 2
        if pos > total:
            raise TransportError("truncated frame envelope")
        end = pos + ((data[end] << 8) | data[end + 1])
        if end > total:
            raise TransportError("truncated frame envelope")
        kind = str(data[pos:end], "utf-8")
        pos = end
        if pos + _FIXED.size > total:
            raise TransportError("truncated frame envelope")
        message_id, size_bytes, sent_at, hop, attempt = _FIXED.unpack_from(data, pos)
        pos += _FIXED.size
        if pos + 2 > total:
            raise TransportError("truncated frame envelope")
        length = (data[pos] << 8) | data[pos + 1]
        pos += 2
        if length == _NO_TRANSFER:
            transfer = None
        else:
            end = pos + length
            if end > total:
                raise TransportError("truncated frame envelope")
            transfer = str(data[pos:end], "utf-8")
            pos = end
        flag = data[pos]
        pos += 1
        if flag == 0:
            stamp = None
        elif flag == 1:
            if pos + _STAMP_BODY.size > total:
                raise TransportError("truncated frame stamp")
            stamp_class = _STAMP_CLASS
            if stamp_class is None:
                stamp_class = _load_stamp_class()
            physical, logical, worker = _STAMP_BODY.unpack_from(data, pos)
            # __new__ plus a state dict, as pickle restores frozen instances —
            # skipping three object.__setattr__ calls per stamped frame.
            stamp = stamp_class.__new__(stamp_class)
            stamp.__dict__.update(physical=physical, logical=logical, worker=worker)
            pos += _STAMP_BODY.size
        else:
            raise TransportError(f"malformed stamp flag {flag}")
        payload_kind = data[pos]
        pos += 1
        if payload_kind == _TEXT:
            payload: object = _decode_text(data[pos:total])
        elif payload_kind == _VALUE:
            reader = _Reader(data[pos:total])
            payload = _guarded_read(reader)
            if reader.remaining():
                raise TransportError(
                    f"{reader.remaining()} trailing bytes after frame payload"
                )
        elif payload_kind == _DOCUMENT:
            reader = _Reader(data[pos:total])
            meta = _guarded_read(reader)
            if type(meta) is not dict:
                raise TransportError("document frame metadata is not a mapping")
            meta["document"] = _decode_text(reader.take(reader.remaining()))
            payload = meta
        else:
            raise TransportError(f"unknown payload encoding {payload_kind}")
    except TransportError:
        raise
    except (struct.error, ValueError, OverflowError, IndexError) as error:
        raise TransportError(f"malformed frame body: {error}") from None
    # Restore the message the way pickle restores any instance — __new__ plus
    # a state dict, skipping __init__.  __post_init__'s only job (clamping
    # size_bytes) is done inline; the counter default must not fire anyway,
    # because the original message_id is the receiver's delivery key.
    message = Message.__new__(Message)
    message.__dict__ = {
        "sender": sender,
        "recipient": recipient,
        "kind": kind,
        "payload": payload,
        "size_bytes": size_bytes if size_bytes > 0 else 1,
        "message_id": message_id,
        "sent_at": sent_at,
        "hop": hop,
        "transfer": transfer,
        "attempt": attempt,
    }
    return message, stamp


def decode_body(body: "bytes | memoryview") -> Message:
    """Rebuild just the :class:`Message` from a frame body (sans prefix)."""
    return decode_frame(body)[0]


def _decode_text(raw: memoryview) -> str:
    try:
        return str(raw, "utf-8")
    except UnicodeDecodeError as error:
        raise TransportError(f"malformed UTF-8 in frame: {error}") from None


_STAMP_CLASS = None
"""Cached :class:`~repro.multicore.clock.HLCStamp`.  The import is deferred
(the multicore package imports this module back through its launcher) and
cached because import machinery per stamped frame is measurable."""


def _load_stamp_class() -> type:
    global _STAMP_CLASS
    from ...multicore.clock import HLCStamp

    _STAMP_CLASS = HLCStamp
    return HLCStamp

