"""Serialization of :class:`~repro.xmlmodel.element.XMLElement` trees.

Mutant query plans travel between peers "encoded in XML" (paper, §2), so
both directions matter: a server parses an incoming plan into an in-memory
graph and serializes the mutated plan before forwarding it.  We lean on the
standard-library ``xml.etree.ElementTree`` for the low-level tokenizing and
convert to and from our own node type, which keeps the rest of the code base
independent of ElementTree's quirks (no attribute ordering guarantees, tail
text, and so on).
"""

from __future__ import annotations

import io
import xml.etree.ElementTree as _ET
from functools import lru_cache
from xml.sax.saxutils import escape as _escape, quoteattr as _quoteattr

# Text content and attribute values repeat heavily (tags, prices, organism
# names, provenance fields), so the escaping work is memoized.  Bounded
# caches: plan documents can carry arbitrary user data.
escape = lru_cache(maxsize=16384)(_escape)
quoteattr = lru_cache(maxsize=16384)(_quoteattr)

from ..errors import XMLParseError
from ..perf import flags
from .element import XMLElement

__all__ = ["parse_xml", "serialize_xml", "serialized_size"]


def parse_xml(document: str) -> XMLElement:
    """Parse an XML document string into an :class:`XMLElement` tree.

    Raises
    ------
    XMLParseError
        If the document is not well formed, or mixes text and elements in a
        single node (mixed content is outside our data model).
    """
    try:
        root = _ET.fromstring(document)
    except _ET.ParseError as exc:
        raise XMLParseError(f"malformed XML: {exc}") from exc
    return _convert(root)


def _convert(node: _ET.Element) -> XMLElement:
    children = [_convert(child) for child in node]
    text = node.text.strip() if node.text and node.text.strip() else None
    if text is not None and children:
        raise XMLParseError(
            f"element <{node.tag}> mixes text and child elements; "
            "mixed content is not supported"
        )
    if flags.trusted_xml_copies:
        # ElementTree already guarantees string tags and attributes, and
        # every child went through this function — skip re-validation.
        # Parsing happens per hop per plan, so this is hot at scale.
        return XMLElement._trusted(node.tag, dict(node.attrib), children, text)
    return XMLElement(node.tag, dict(node.attrib), children, text)


def serialize_xml(root: XMLElement, indent: int | None = None) -> str:
    """Serialize an element tree to an XML string.

    Parameters
    ----------
    root:
        The tree to serialize.
    indent:
        When given, pretty-print using this many spaces per nesting level;
        otherwise produce a compact single-line document.
    """
    buffer = io.StringIO()
    _write(buffer, root, indent, 0)
    return buffer.getvalue()


def _write(buffer: io.StringIO, node: XMLElement, indent: int | None, depth: int) -> None:
    pad = "" if indent is None else " " * (indent * depth)
    newline = "" if indent is None else "\n"
    attrs = "".join(
        f" {name}={quoteattr(value)}" for name, value in sorted(node.attributes.items())
    )
    if not node.children and node.text is None:
        buffer.write(f"{pad}<{node.tag}{attrs}/>{newline}")
        return
    if node.text is not None:
        buffer.write(f"{pad}<{node.tag}{attrs}>{escape(node.text)}</{node.tag}>{newline}")
        return
    buffer.write(f"{pad}<{node.tag}{attrs}>{newline}")
    for child in node.children:
        _write(buffer, child, indent, depth + 1)
    buffer.write(f"{pad}</{node.tag}>{newline}")


def serialized_size(root: XMLElement) -> int:
    """Return the size in bytes of the compact serialization of ``root``.

    The network simulator charges transfer time proportional to message
    size; partial results accumulated inside a mutant query plan are counted
    with this function (paper §2: "their size matters").
    """
    return len(serialize_xml(root).encode("utf-8"))
