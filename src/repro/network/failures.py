"""Failure injection: peers going offline and (optionally) coming back.

Fault tolerance is one of the paper's headline motivations for the P2P
model — "failure or unavailability of a single server ... does not disable
the system".  The :class:`FailureInjector` schedules crash and recovery
events on the shared simulator so experiments can measure completeness and
latency under churn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import SimulationError
from .network import Network

__all__ = [
    "FailureEvent",
    "FailureInjector",
    "ChurnProfile",
    "ChurnEvent",
    "ChurnPlan",
    "CHURN_PROFILES",
]


@dataclass(frozen=True)
class FailureEvent:
    """A scheduled crash (and optional recovery) of one peer."""

    address: str
    fail_at: float
    recover_at: float | None = None


@dataclass
class FailureInjector:
    """Schedules failures on a network."""

    network: Network
    events: list[FailureEvent] = field(default_factory=list)

    def schedule(self, address: str, fail_at: float, recover_at: float | None = None) -> FailureEvent:
        """Take ``address`` offline at ``fail_at`` (and back online at ``recover_at``)."""
        event = FailureEvent(address, fail_at, recover_at)
        self.events.append(event)
        node = self.network.node(address)
        self.network.schedule_at(fail_at, node.go_offline)
        if recover_at is not None:
            if recover_at <= fail_at:
                raise ValueError("recovery must happen after the failure")
            self.network.schedule_at(recover_at, node.go_online)
        return event

    def schedule_random(
        self,
        addresses: list[str],
        failure_fraction: float,
        fail_window_ms: tuple[float, float],
        outage_ms: float | None = None,
        seed: int = 13,
    ) -> list[FailureEvent]:
        """Fail a random subset of ``addresses`` within a time window.

        ``outage_ms`` of ``None`` means the peers never come back.
        """
        rng = np.random.default_rng(seed)
        count = int(round(len(addresses) * failure_fraction))
        chosen = sorted(rng.choice(addresses, size=count, replace=False)) if count else []
        scheduled = []
        for address in chosen:
            fail_at = float(rng.uniform(*fail_window_ms))
            recover_at = fail_at + outage_ms if outage_ms is not None else None
            scheduled.append(self.schedule(address, fail_at, recover_at))
        return scheduled

    def failed_addresses(self) -> list[str]:
        """Addresses with at least one scheduled failure."""
        return sorted({event.address for event in self.events})

    # ------------------------------------------------------------------ #
    # Churn: profiled join / leave / crash schedules for scale-out runs
    # ------------------------------------------------------------------ #

    def schedule_churn(
        self,
        addresses: list[str],
        profile: "ChurnProfile | str",
        window_ms: tuple[float, float] = (100.0, 4_000.0),
        seed: int = 13,
        regions: "dict[str, str] | None" = None,
        only: "Callable[[str], bool] | None" = None,
    ) -> "ChurnPlan":
        """Schedule a full churn plan over ``addresses``.

        Peers selected by the profile either *leave* gracefully (the node's
        ``leave()`` method runs, letting peers unregister before going
        offline) or *crash* (``go_offline`` with no notice).  A profiled
        fraction of the churned peers rejoin after their outage via
        ``go_online`` — for :class:`~repro.peers.peer.QueryPeer` that
        triggers registration re-propagation.

        A *correlated* profile fails whole regions at once: ``regions`` maps
        each address to a region key, victims are chosen region-by-region
        (seeded) until the profile's churn fraction is covered, and every
        victim of one region fails inside that region's narrow outage
        window — a rack, a metro uplink, an AS path going dark together.
        """
        if isinstance(profile, str):
            try:
                profile = CHURN_PROFILES[profile]
            except KeyError:
                raise SimulationError(
                    f"unknown churn profile {profile!r}; "
                    f"expected one of {', '.join(sorted(CHURN_PROFILES))}"
                ) from None
        rng = np.random.default_rng(seed)
        events: list[ChurnEvent] = []
        if profile.correlated and regions:
            events = self._correlated_events(addresses, profile, window_ms, rng, regions)
        else:
            count = int(round(len(addresses) * profile.churn_fraction))
            chosen = sorted(rng.choice(addresses, size=count, replace=False)) if count else []
            for address in chosen:
                graceful = bool(rng.random() < profile.graceful_fraction)
                rejoins = bool(rng.random() < profile.rejoin_fraction)
                fail_at = float(rng.uniform(*window_ms))
                recover_at = (
                    fail_at + float(rng.uniform(*profile.outage_ms)) if rejoins else None
                )
                events.append(
                    ChurnEvent(address, "leave" if graceful else "crash", fail_at, recover_at)
                )
        plan = ChurnPlan(profile=profile, events=events)
        # ``only`` filters which events are *scheduled*, never which are
        # *drawn*: a multicore worker passes its shard-ownership predicate
        # so every worker computes the identical plan (same rng consumption,
        # same summary) but executes only its own peers' departures.
        for event in plan.events:
            if only is None or only(event.address):
                self._schedule_churn_event(event)
        return plan

    def _correlated_events(
        self,
        addresses: list[str],
        profile: "ChurnProfile",
        window_ms: tuple[float, float],
        rng: np.random.Generator,
        regions: dict[str, str],
    ) -> "list[ChurnEvent]":
        """Regional failure events: whole regions go dark near-simultaneously."""
        by_region: dict[str, list[str]] = {}
        for address in sorted(addresses):
            by_region.setdefault(regions.get(address, "?"), []).append(address)
        target = int(round(len(addresses) * profile.churn_fraction))
        region_order = list(by_region)
        rng.shuffle(region_order)
        events: list[ChurnEvent] = []
        victims = 0
        for region in region_order:
            if victims >= target:
                break
            members = by_region[region]
            # The region's epicenter: every member fails within a tight
            # spread around it (the correlated signature), not uniformly
            # across the whole scenario window.
            epicenter = float(rng.uniform(*window_ms))
            spread_ms = profile.regional_spread_ms
            for address in members:
                graceful = bool(rng.random() < profile.graceful_fraction)
                rejoins = bool(rng.random() < profile.rejoin_fraction)
                fail_at = epicenter + float(rng.uniform(0.0, spread_ms))
                recover_at = (
                    fail_at + float(rng.uniform(*profile.outage_ms)) if rejoins else None
                )
                events.append(
                    ChurnEvent(address, "leave" if graceful else "crash", fail_at, recover_at)
                )
            victims += len(members)
        return events

    def _schedule_churn_event(self, event: "ChurnEvent") -> None:
        node = self.network.node(event.address)
        # Graceful leavers announce their departure when the node supports
        # it (QueryPeer.leave unregisters from its indexers); crashes and
        # plain NetworkNodes just drop off.
        depart = getattr(node, "leave", node.go_offline) if event.kind == "leave" else node.go_offline
        self.network.schedule_at(event.fail_at, depart)
        if event.recover_at is not None:
            self.network.schedule_at(event.recover_at, node.go_online)
        self.events.append(FailureEvent(event.address, event.fail_at, event.recover_at))


@dataclass(frozen=True)
class ChurnProfile:
    """How much and what kind of churn a scale-out scenario applies.

    ``churn_fraction`` of peers depart during the window; of those,
    ``graceful_fraction`` leave politely (unregistering) while the rest
    crash silently, and ``rejoin_fraction`` come back after an outage drawn
    uniformly from ``outage_ms``.

    ``correlated`` profiles fail whole regions together: victims are chosen
    region-by-region (given a region mapping) and each region's members all
    fail within ``regional_spread_ms`` of its epicenter.
    """

    name: str
    churn_fraction: float
    graceful_fraction: float = 0.5
    rejoin_fraction: float = 0.8
    outage_ms: tuple[float, float] = (500.0, 2_000.0)
    correlated: bool = False
    regional_spread_ms: float = 50.0

    def __post_init__(self) -> None:
        for fraction in (self.churn_fraction, self.graceful_fraction, self.rejoin_fraction):
            if not 0.0 <= fraction <= 1.0:
                raise SimulationError(f"churn fractions must be in [0, 1], got {fraction}")


@dataclass(frozen=True)
class ChurnEvent:
    """One peer's scheduled departure (and optional rejoin)."""

    address: str
    kind: str  # "leave" (graceful) or "crash" (silent)
    fail_at: float
    recover_at: float | None = None


@dataclass
class ChurnPlan:
    """Everything :meth:`FailureInjector.schedule_churn` decided."""

    profile: ChurnProfile
    events: list[ChurnEvent] = field(default_factory=list)

    def summary(self) -> dict[str, object]:
        """Flat description of the plan for experiment reports."""
        return {
            "profile": self.profile.name,
            "events": len(self.events),
            "leaves": sum(1 for event in self.events if event.kind == "leave"),
            "crashes": sum(1 for event in self.events if event.kind == "crash"),
            "rejoins": sum(1 for event in self.events if event.recover_at is not None),
        }


CHURN_PROFILES = {
    "none": ChurnProfile("none", churn_fraction=0.0),
    "light": ChurnProfile("light", churn_fraction=0.05, graceful_fraction=0.7, rejoin_fraction=0.9),
    "moderate": ChurnProfile(
        "moderate", churn_fraction=0.15, graceful_fraction=0.5, rejoin_fraction=0.8
    ),
    "heavy": ChurnProfile(
        "heavy",
        churn_fraction=0.35,
        graceful_fraction=0.3,
        rejoin_fraction=0.6,
        outage_ms=(1_000.0, 5_000.0),
    ),
    # Correlated regional failure: whole populated regions (states, clades)
    # go dark near-simultaneously — mostly crashes, slow recovery.  The
    # adversarial counterpart of "moderate": same order of victim count,
    # zero independence between them.
    "regional": ChurnProfile(
        "regional",
        churn_fraction=0.2,
        graceful_fraction=0.1,
        rejoin_fraction=0.5,
        outage_ms=(2_000.0, 6_000.0),
        correlated=True,
    ),
}
"""Named churn intensities selectable from the experiment CLI."""
