"""EXP-SCALE — the distributed catalog scales with the number of peers (§1, §3).

Two layers of evidence:

* the original sweep: registration messages, per-peer catalog footprint,
  resolution hops and recall as the population grows (no peer holds a
  global catalog);
* the PR-2 perf gates: at 1,000 registered servers the trie-backed
  catalog index must answer ``servers_overlapping``/``servers_covering``
  at ≥10× the seed's linear-scan throughput with byte-identical results,
  and the full PR-1 scale-out scenario must run ≥1.5× faster end-to-end
  than the seed-algorithm baseline (``repro.perf.seed_baseline``).

``--json`` writes the measurements to ``BENCH_catalog_scalability.json``
(the perf trajectory's first committed point).  ``REPRO_BENCH_QUICK=1``
shrinks query counts and the end-to-end population for CI smoke runs —
the 1,000-server lookup gate keeps its full size (building the catalog is
cheap; the gate scale is the point).
"""

from __future__ import annotations

import random
import time

import pytest

import benchjson
from repro.catalog import Catalog, CatalogLevel, CollectionRef, IntensionalStatement, ServerEntry, ServerRole
from repro.harness import build_mqp_scenario, format_table, run_mqp_queries
from repro.harness.scaleout import ScaleoutSpec, run_scaleout
from repro.namespace.builtin import garage_sale_namespace
from repro.perf import seed_baseline
from repro.workloads import GarageSaleConfig, GarageSaleWorkload, QueryWorkload
from conftest import emit

QUICK = benchjson.quick_mode()
BENCH = "catalog_scalability"

GATE_SERVERS = 1000
GATE_SEED = 7
GATE_QUERIES = 150 if QUICK else 400
LOOKUP_GATE_MIN = 10.0

SCALEOUT_SPEC = (
    ScaleoutSpec(name="pr1-smoke", peers=200, queries=6)
    if QUICK
    else ScaleoutSpec(name="pr1")
)
SCALEOUT_GATE_MIN = 1.2 if QUICK else 1.5


def _measure(sellers: int, queries_per_run: int = 4):
    workload = GarageSaleWorkload(
        GarageSaleConfig(sellers=sellers, mean_items_per_seller=6, seed=41)
    )
    scenario = build_mqp_scenario(workload, online_registration=True)
    registration_messages = scenario.network.metrics.messages_by_kind.get("register", 0)
    queries = QueryWorkload(workload.namespace, seed=43).batch(queries_per_run)
    summary = run_mqp_queries(scenario, queries)
    catalog_sizes = [peer.catalog.size() for peer in scenario.peers]
    hops = [
        trace.distinct_peers
        for trace in scenario.network.metrics.traces.values()
        if trace.completed_at is not None
    ]
    return {
        "peers": len(scenario.peers),
        "registration_msgs": registration_messages,
        "max_catalog_size": max(catalog_sizes),
        "mean_catalog_size": sum(catalog_sizes) / len(catalog_sizes),
        "mean_peers_per_query": summary["mean_peers_per_query"],
        "mean_messages_per_query": summary["mean_messages_per_query"],
        "mean_recall": summary["mean_recall"],
        "resolution_hops": (sum(hops) / len(hops)) if hops else 0.0,
    }


def test_catalog_scalability_sweep(benchmark):
    sizes = [8, 16, 32, 64]
    rows = [_measure(size) for size in sizes[:-1]]

    def largest():
        return _measure(sizes[-1])

    rows.append(benchmark.pedantic(largest, rounds=1, iterations=1))
    emit("EXP-SCALE  Peer-count sweep", format_table(rows))

    # Registration traffic grows linearly (one registration per server),
    # not quadratically like all-to-all coordination would.
    assert rows[-1]["registration_msgs"] <= rows[-1]["peers"] * 2
    # No peer's catalog approaches global size.
    assert rows[-1]["max_catalog_size"] < rows[-1]["peers"]
    # Query cost stays bounded (a short resolution chain), independent of scale.
    assert rows[-1]["mean_peers_per_query"] <= rows[0]["mean_peers_per_query"] * 3
    assert all(row["mean_recall"] == pytest.approx(1.0) for row in rows)


def test_per_peer_catalog_stays_local(benchmark):
    workload = GarageSaleWorkload(GarageSaleConfig(sellers=40, mean_items_per_seller=4, seed=47))

    def build():
        scenario = build_mqp_scenario(workload)
        return scenario

    scenario = benchmark.pedantic(build, rounds=1, iterations=1)
    base_catalogs = [peer.catalog.size() for peer in scenario.base_servers]
    index_catalogs = [peer.catalog.size() for peer in scenario.index_servers]
    meta_catalog = scenario.meta_index.catalog.size()
    emit(
        "EXP-SCALE  Catalog footprint by role (40 sellers)",
        format_table(
            [
                {"role": "base server (max)", "catalog_entries": max(base_catalogs)},
                {"role": "index server (max)", "catalog_entries": max(index_catalogs)},
                {"role": "meta-index", "catalog_entries": meta_catalog},
            ]
        ),
    )
    # Base servers know only themselves plus their indexer; index servers know
    # the servers of their own state; only the meta-index sees every indexer.
    assert max(base_catalogs) <= 3
    assert max(index_catalogs) <= len(workload.sellers) + 2


# --------------------------------------------------------------------------- #
# PR-2 gates: indexed lookups and the measured end-to-end win
# --------------------------------------------------------------------------- #


def _gate_catalog(servers: int = GATE_SERVERS, seed: int = GATE_SEED):
    """A realistic 1,000-server catalog plus a seeded query battery."""
    namespace = garage_sale_namespace()
    rng = random.Random(seed)
    locations = namespace.dimensions[0].categories()
    merchandise = namespace.dimensions[1].categories()
    catalog = Catalog("gate")
    addresses = []
    for position in range(servers):
        address = f"peer-{position:04d}:9020"
        addresses.append(address)
        area = namespace.area([rng.choice(locations), rng.choice(merchandise)])
        role = rng.choice([ServerRole.BASE] * 8 + [ServerRole.INDEX, ServerRole.META_INDEX])
        catalog.register_server(
            ServerEntry(
                address,
                role,
                area,
                authoritative=(role is not ServerRole.BASE),
                collections=[CollectionRef(address, "/items")],
            )
        )
    for position in range(0, servers, 50):
        left, right = addresses[position], addresses[(position + 1) % servers]
        area_text = "(USA.OR,*)" if position % 100 else "(USA.WA,*)"
        catalog.register_statement(
            IntensionalStatement.parse(f"base[{area_text}]@{left} >= base[{area_text}]@{right}")
        )
    queries = [
        namespace.area([rng.choice(locations), rng.choice(merchandise)])
        for _ in range(GATE_QUERIES)
    ]
    return catalog, queries


@pytest.fixture(scope="module")
def gate_catalog():
    return _gate_catalog()


def _lookup_pass(catalog, queries):
    for area in queries:
        catalog.servers_overlapping(area)
        catalog.servers_covering(area)


def test_indexed_lookup_gate(gate_catalog):
    """The acceptance gate: ≥10× lookup throughput at 1,000 servers."""
    catalog, queries = gate_catalog

    operations = []
    for area in queries:
        operations.append(lambda a=area: catalog.servers_overlapping(a))
        operations.append(lambda a=area: catalog.servers_covering(a))

    indexed_samples = benchjson.sample_latencies(operations, repeats=3)
    with seed_baseline():
        linear_samples = benchjson.sample_latencies(operations, repeats=3)

    indexed = benchjson.latency_stats(indexed_samples)
    linear = benchjson.latency_stats(linear_samples)
    speedup = indexed["ops_per_sec"] / linear["ops_per_sec"]

    emit(
        f"EXP-SCALE  Indexed vs linear catalog lookups ({len(catalog.servers)} servers)",
        f"indexed={indexed['ops_per_sec']:,.0f} ops/s "
        f"(p50={indexed['p50_us']:.1f}us p99={indexed['p99_us']:.1f}us)  "
        f"linear={linear['ops_per_sec']:,.0f} ops/s "
        f"(p50={linear['p50_us']:.1f}us p99={linear['p99_us']:.1f}us)  "
        f"speedup={speedup:.1f}x",
    )

    context = {"peers": len(catalog.servers), "seed": GATE_SEED, "queries": len(queries)}
    benchjson.record_metric(
        BENCH, "indexed_lookup_ops_per_sec", indexed["ops_per_sec"], unit="ops/s", **context
    )
    benchjson.record_metric(
        BENCH, "indexed_lookup_p50_us", indexed["p50_us"], unit="us", direction="lower", **context
    )
    benchjson.record_metric(
        BENCH, "indexed_lookup_p99_us", indexed["p99_us"], unit="us", direction="lower", **context
    )
    benchjson.record_metric(
        BENCH, "linear_lookup_ops_per_sec", linear["ops_per_sec"], unit="ops/s", **context
    )
    benchjson.record_metric(
        BENCH,
        "lookup_speedup_vs_linear",
        speedup,
        unit="x",
        compare=True,
        gate_min=LOOKUP_GATE_MIN,
        **context,
    )
    assert speedup >= LOOKUP_GATE_MIN, (
        f"indexed lookups only {speedup:.1f}x the linear scan (need >= {LOOKUP_GATE_MIN}x)"
    )


def test_index_matches_linear_oracle(gate_catalog):
    """Index results must be byte-identical to the linear scan, order included."""
    catalog, queries = gate_catalog
    role_filters = (
        None,
        (ServerRole.BASE,),
        (ServerRole.INDEX, ServerRole.META_INDEX),
    )
    for area in queries:
        for roles in role_filters:
            indexed = catalog.servers_overlapping(area, roles=roles)
            linear = catalog._scan_overlapping(area, roles=roles)
            assert [entry.address for entry in indexed] == [entry.address for entry in linear]
            indexed = catalog.servers_covering(area, roles=roles)
            linear = catalog._scan_covering(area, roles=roles)
            assert [entry.address for entry in indexed] == [entry.address for entry in linear]
        assert catalog.collections_overlapping(area) == sorted(
            collection
            for entry in catalog._scan_overlapping(area, roles=(ServerRole.BASE,))
            for collection in entry.collections
        )
        with seed_baseline():
            linear_statements = catalog.statements_for(CatalogLevel.BASE, area)
        assert catalog.statements_for(CatalogLevel.BASE, area) == linear_statements


def test_scaleout_runtime_gate():
    """End-to-end: the PR-1 scale-out config runs ≥1.5× faster than the seed."""
    spec = SCALEOUT_SPEC

    started = time.perf_counter()
    optimized_report = run_scaleout(spec)
    optimized_s = time.perf_counter() - started

    with seed_baseline():
        started = time.perf_counter()
        baseline_report = run_scaleout(spec)
        baseline_s = time.perf_counter() - started

    ratio = baseline_s / optimized_s
    emit(
        f"EXP-SCALE  End-to-end scenario runtime ({spec.peers} peers, {spec.workload})",
        f"optimized={optimized_s:.2f}s  seed-baseline={baseline_s:.2f}s  speedup={ratio:.2f}x",
    )

    # The fast paths must not change a single answer, hop, or byte count.
    assert optimized_report["queries"] == baseline_report["queries"]
    assert optimized_report["traffic"] == baseline_report["traffic"]

    context = {"peers": spec.peers, "seed": spec.seed, "workload": spec.workload}
    benchjson.record_metric(
        BENCH, "scaleout_runtime_s", optimized_s, unit="s", direction="lower", **context
    )
    benchjson.record_metric(
        BENCH, "scaleout_baseline_runtime_s", baseline_s, unit="s", direction="lower", **context
    )
    benchjson.record_metric(
        BENCH,
        "scaleout_speedup_vs_seed",
        ratio,
        unit="x",
        compare=True,
        gate_min=SCALEOUT_GATE_MIN,
        **context,
    )
    assert ratio >= SCALEOUT_GATE_MIN, (
        f"end-to-end only {ratio:.2f}x the seed baseline (need >= {SCALEOUT_GATE_MIN}x)"
    )


if __name__ == "__main__":
    raise SystemExit(benchjson.run_as_script(__file__))
