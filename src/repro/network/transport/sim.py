"""The deterministic simulator backend: the seed's semantics, unchanged.

Delivery is one scheduled callback on the shared discrete-event clock —
exactly what ``Network.send`` did before the transport extraction, so
every pre-existing scenario report stays byte-identical (asserted by
``tests/test_transport.py``).
"""

from __future__ import annotations

import functools
from typing import TYPE_CHECKING, Callable

from ..simulator import Simulator
from .base import Transport

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from ..message import Message

__all__ = ["SimTransport"]


class SimTransport(Transport):
    """Pure discrete-event delivery: payloads travel by Python reference."""

    name = "sim"

    def __init__(self, simulator: Simulator | None = None) -> None:
        super().__init__()
        if simulator is not None:
            self.simulator = simulator

    def send(self, message: "Message", delay: float) -> None:
        assert self._network is not None, "transport is not bound to a network"
        self.simulator.schedule(
            delay, functools.partial(self._network._deliver, message)
        )

    def run(
        self,
        until: float | None = None,
        stop: Callable[[], bool] | None = None,
    ) -> None:
        self.simulator.run(until=until, stop=stop)

    def run_until_idle(self) -> None:
        self.simulator.run_until_idle()
