"""Shared helpers for the benchmark suite.

Every benchmark prints the table or series it reproduces (the measurable
version of one of the paper's figures or qualitative claims) and uses
``pytest-benchmark`` to time the core operation involved.  Workload sizes
are kept small enough that the whole suite runs in a couple of minutes.

With ``--json`` (or ``REPRO_BENCH_JSON=1``) each benchmark module writes a
machine-readable ``BENCH_<name>.json`` report — see :mod:`benchjson` for
the schema — turning the suite into the repo's perf trajectory.
"""

from __future__ import annotations

import os
import sys

import pytest

import benchjson


def pytest_addoption(parser):
    group = parser.getgroup("bench-json")
    group.addoption(
        "--json",
        action="store_true",
        default=False,
        help="write BENCH_<name>.json reports for the benchmarks that ran",
    )
    group.addoption(
        "--json-dir",
        default=None,
        help="directory for BENCH_*.json files (default: repository root)",
    )


def pytest_configure(config):
    if config.getoption("--json"):
        os.environ[benchjson.ENV_ENABLE] = "1"
    json_dir = config.getoption("--json-dir")
    if json_dir:
        os.environ[benchjson.ENV_DIR] = str(json_dir)


def pytest_sessionfinish(session, exitstatus):
    if benchjson.enabled():
        for path in benchjson.write_reports():
            print(f"\nBENCH report written to {path}")


def emit(title: str, body: str) -> None:
    """Print a reproduced table/series under a recognizable banner.

    In ``--json`` mode the table also lands in the calling benchmark's
    BENCH report as a note, so the human-readable evidence travels with
    the metrics.
    """
    print(f"\n=== {title} ===\n{body}\n")
    if benchjson.enabled():
        caller = sys._getframe(1).f_globals.get("__name__", "unknown")
        benchjson.record_note(benchjson.bench_name(caller), title, body)


@pytest.fixture(scope="session")
def garage_sale_small():
    """A small, deterministic garage-sale population shared across benches."""
    from repro.workloads import GarageSaleConfig, GarageSaleWorkload

    return GarageSaleWorkload(GarageSaleConfig(sellers=16, mean_items_per_seller=8, seed=11))
