"""Semi-join reduction for coordinator-style distributed joins ([BC81] in §5.2).

The paper notes that the "only queries, not data, go to the subordinates"
property of coordinator execution breaks down when semi-joins are used.  We
provide a small, network-free semi-join cost calculator used by the
MQP-versus-coordinator benchmark to add a third column: for a two-site join
it computes how many bytes each strategy moves, which is the classical
trade-off (ship one relation / ship the join keys then the matching
tuples / ship a pre-reduced partial result inside an MQP).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..xmlmodel import XMLElement, evaluate_path_values, serialized_size

__all__ = ["SemiJoinEstimate", "estimate_semijoin", "estimate_full_ship"]


@dataclass(frozen=True)
class SemiJoinEstimate:
    """Bytes moved by a semi-join-based two-site join."""

    key_bytes: int
    matching_bytes: int
    matching_items: int

    @property
    def total_bytes(self) -> int:
        """Total bytes shipped between the two sites."""
        return self.key_bytes + self.matching_bytes


def _key_values(items: Sequence[XMLElement], path: str) -> set[str]:
    values: set[str] = set()
    for item in items:
        values.update(evaluate_path_values(item, path))
    return values


def estimate_full_ship(items: Sequence[XMLElement]) -> int:
    """Bytes moved when one side is shipped wholesale to the other site."""
    return sum(serialized_size(item) for item in items)


def estimate_semijoin(
    left: Sequence[XMLElement],
    right: Sequence[XMLElement],
    left_path: str,
    right_path: str,
    bytes_per_key: int = 24,
) -> SemiJoinEstimate:
    """Estimate a semi-join reduction of ``right`` by ``left``'s join keys.

    Site L sends the distinct join-key values of ``left`` to site R
    (``key_bytes``); site R returns only the ``right`` items whose key
    matches (``matching_bytes``).
    """
    keys = _key_values(left, left_path)
    key_bytes = bytes_per_key * len(keys)
    matching = [
        item
        for item in right
        if keys.intersection(evaluate_path_values(item, right_path))
    ]
    matching_bytes = sum(serialized_size(item) for item in matching)
    return SemiJoinEstimate(key_bytes, matching_bytes, len(matching))
