"""Dependency-free statistics for the experiment matrix.

Every claim the :mod:`repro.experiments` layer makes — "completeness held
under churn", "the adversarial cell is worse than the baseline" — reduces
to proportions over repeated runs: a query either met the completeness
threshold or it did not.  This module provides exactly the two tools such
claims need, implemented on :mod:`math` alone so the experiment layer adds
no dependencies beyond what the simulator already requires:

* :func:`wilson_ci` — the Wilson score interval for a binomial proportion.
  Unlike the naive normal approximation it stays inside ``[0, 1]`` and
  behaves sensibly at ``p = 0`` and ``p = 1`` (exactly the regimes
  completeness gates live in).
* :func:`two_prop_ztest` — the pooled two-proportion z-test, for "is cell A
  actually different from cell B, given this many repeats?".

Degenerate inputs are defined, not errors: zero trials yield the vacuous
interval ``(0, 1)`` and the vacuous verdict ``p = 1`` so a scenario whose
queries all failed to run still produces a well-formed report row.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "ConfidenceInterval",
    "ZTestResult",
    "wilson_ci",
    "two_prop_ztest",
    "normal_cdf",
    "z_for_confidence",
    "mean",
]


def normal_cdf(x: float) -> float:
    """Φ(x): the standard normal cumulative distribution function."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def z_for_confidence(confidence: float) -> float:
    """The two-sided critical value z such that Φ(z) − Φ(−z) = confidence.

    Solved by bisection on :func:`normal_cdf` — exact enough (±1e−9) for
    interval construction, with no dependency on scipy.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    target = 1.0 - (1.0 - confidence) / 2.0
    low, high = 0.0, 10.0
    for _ in range(80):
        mid = (low + high) / 2.0
        if normal_cdf(mid) < target:
            low = mid
        else:
            high = mid
    return (low + high) / 2.0


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence (report-friendly)."""
    return sum(values) / len(values) if values else 0.0


@dataclass(frozen=True)
class ConfidenceInterval:
    """A binomial proportion with its Wilson score interval."""

    proportion: float
    low: float
    high: float
    successes: int
    trials: int
    confidence: float

    @property
    def width(self) -> float:
        """Interval width — 1.0 means "we learned nothing"."""
        return self.high - self.low

    def as_dict(self, precision: int = 4) -> dict[str, object]:
        """Flat JSON-ready form used by experiment report cells."""
        return {
            "proportion": round(self.proportion, precision),
            "ci_low": round(self.low, precision),
            "ci_high": round(self.high, precision),
            "successes": self.successes,
            "trials": self.trials,
            "confidence": self.confidence,
        }


def wilson_ci(
    successes: int, trials: int, confidence: float = 0.95
) -> ConfidenceInterval:
    """Wilson score interval for ``successes`` out of ``trials``.

    ``trials == 0`` returns the vacuous interval ``(0, 1)`` around a
    proportion of 0.0; ``successes`` outside ``[0, trials]`` is an error.
    """
    if trials < 0:
        raise ValueError(f"trials must be >= 0, got {trials}")
    if not 0 <= successes <= max(trials, 0):
        raise ValueError(f"successes must be in [0, {trials}], got {successes}")
    if trials == 0:
        return ConfidenceInterval(0.0, 0.0, 1.0, 0, 0, confidence)
    z = z_for_confidence(confidence)
    p = successes / trials
    z2 = z * z
    denominator = 1.0 + z2 / trials
    centre = (p + z2 / (2.0 * trials)) / denominator
    margin = (
        z * math.sqrt(p * (1.0 - p) / trials + z2 / (4.0 * trials * trials))
    ) / denominator
    return ConfidenceInterval(
        proportion=p,
        low=max(0.0, centre - margin),
        high=min(1.0, centre + margin),
        successes=successes,
        trials=trials,
        confidence=confidence,
    )


@dataclass(frozen=True)
class ZTestResult:
    """Outcome of a pooled two-proportion z-test."""

    z: float
    p_value: float
    proportion_a: float
    proportion_b: float

    @property
    def significant(self) -> bool:
        """Two-sided significance at the conventional 0.05 level."""
        return self.p_value < 0.05

    def as_dict(self, precision: int = 4) -> dict[str, object]:
        """Flat JSON-ready form used by experiment report cells."""
        return {
            "z": round(self.z, precision),
            "p_value": round(self.p_value, precision),
            "proportion_a": round(self.proportion_a, precision),
            "proportion_b": round(self.proportion_b, precision),
            "significant": self.significant,
        }


def two_prop_ztest(
    successes_a: int, trials_a: int, successes_b: int, trials_b: int
) -> ZTestResult:
    """Pooled two-proportion z-test (two-sided).

    Degenerate cells — either sample empty, or a pooled proportion of
    exactly 0 or 1 (no variance) — return the vacuous verdict ``z = 0,
    p = 1`` rather than dividing by zero: with no variation observed there
    is no evidence of a difference.
    """
    for label, successes, trials in (
        ("a", successes_a, trials_a),
        ("b", successes_b, trials_b),
    ):
        if trials < 0:
            raise ValueError(f"trials_{label} must be >= 0, got {trials}")
        if not 0 <= successes <= max(trials, 0):
            raise ValueError(
                f"successes_{label} must be in [0, {trials}], got {successes}"
            )
    if trials_a == 0 or trials_b == 0:
        return ZTestResult(0.0, 1.0, 0.0, 0.0)
    p_a = successes_a / trials_a
    p_b = successes_b / trials_b
    pooled = (successes_a + successes_b) / (trials_a + trials_b)
    variance = pooled * (1.0 - pooled) * (1.0 / trials_a + 1.0 / trials_b)
    if variance <= 0.0:
        return ZTestResult(0.0, 1.0, p_a, p_b)
    z = (p_a - p_b) / math.sqrt(variance)
    p_value = 2.0 * (1.0 - normal_cdf(abs(z)))
    return ZTestResult(z, min(1.0, max(0.0, p_value)), p_a, p_b)
