"""Tests for predicate expressions and the textual predicate parser."""

import pytest

from repro.algebra import And, Comparison, Literal, Not, Or, PathRef, parse_predicate
from repro.errors import PlanError
from repro.xmlmodel import element, text_element


@pytest.fixture()
def cheap_cd():
    return element(
        "item",
        {"id": "1"},
        text_element("title", "Blue Train"),
        text_element("price", "6"),
        text_element("city", "USA/OR/Portland"),
    )


@pytest.fixture()
def pricey_cd():
    return element(
        "item",
        {"id": "2"},
        text_element("title", "Boxed Set"),
        text_element("price", "45"),
        text_element("city", "USA/WA/Seattle"),
    )


class TestComparison:
    def test_numeric_less_than(self, cheap_cd, pricey_cd):
        predicate = Comparison(PathRef("price"), "<", Literal(10))
        assert predicate.matches(cheap_cd)
        assert not predicate.matches(pricey_cd)

    def test_string_equality(self, cheap_cd):
        assert Comparison(PathRef("title"), "=", Literal("Blue Train")).matches(cheap_cd)
        assert not Comparison(PathRef("title"), "=", Literal("blue train")).matches(cheap_cd)

    def test_contains_is_case_insensitive(self, cheap_cd):
        assert Comparison(PathRef("title"), "contains", Literal("blue")).matches(cheap_cd)
        assert Comparison(PathRef("city"), "contains", Literal("USA/OR")).matches(cheap_cd)

    def test_missing_path_is_false(self, cheap_cd):
        assert not Comparison(PathRef("condition"), "=", Literal("mint")).matches(cheap_cd)

    def test_all_operators(self, cheap_cd):
        for op, expected in [("=", False), ("!=", True), ("<", True), ("<=", True), (">", False), (">=", False)]:
            assert Comparison(PathRef("price"), op, Literal(10)).matches(cheap_cd) is expected

    def test_unknown_operator_rejected(self):
        with pytest.raises(PlanError):
            Comparison(PathRef("price"), "~", Literal(10))


class TestBooleanConnectives:
    def test_and_or_not(self, cheap_cd, pricey_cd):
        cheap = Comparison(PathRef("price"), "<", Literal(10))
        portland = Comparison(PathRef("city"), "contains", Literal("Portland"))
        assert And(cheap, portland).matches(cheap_cd)
        assert not And(cheap, portland).matches(pricey_cd)
        assert Or(cheap, portland).matches(cheap_cd)
        assert Not(cheap).matches(pricey_cd)

    def test_and_requires_two_operands(self):
        with pytest.raises(PlanError):
            And(Comparison(PathRef("a"), "=", Literal(1)))

    def test_equality_by_text(self):
        first = parse_predicate("price < 10")
        second = Comparison(PathRef("price"), "<", Literal(10))
        assert first == second
        assert hash(first) == hash(second)


class TestPredicateParser:
    def test_roundtrip_simple(self):
        predicate = parse_predicate("price < 10")
        assert parse_predicate(predicate.to_text()) == predicate

    def test_roundtrip_complex(self):
        text = "(price < 10 and city contains 'Portland') or condition = 'mint'"
        predicate = parse_predicate(text)
        assert parse_predicate(predicate.to_text()) == predicate

    def test_parse_string_literal(self, cheap_cd):
        assert parse_predicate("title = 'Blue Train'").matches(cheap_cd)

    def test_parse_path_with_slash(self, cheap_cd):
        assert parse_predicate("city contains 'USA/OR/Portland'").matches(cheap_cd)

    def test_parse_descendant_path(self, cheap_cd):
        assert parse_predicate("//price < 7").matches(cheap_cd)

    def test_parse_not(self, cheap_cd, pricey_cd):
        predicate = parse_predicate("not (price < 10)")
        assert predicate.matches(pricey_cd) and not predicate.matches(cheap_cd)

    def test_precedence_and_binds_tighter_than_or(self, cheap_cd):
        # false and false or true  ==  (false and false) or true
        predicate = parse_predicate("price > 100 and price < 200 or title contains 'Blue'")
        assert predicate.matches(cheap_cd)

    def test_float_literal(self, cheap_cd):
        assert parse_predicate("price <= 6.0").matches(cheap_cd)

    def test_empty_predicate_rejected(self):
        with pytest.raises(PlanError):
            parse_predicate("   ")

    def test_missing_operator_rejected(self):
        with pytest.raises(PlanError):
            parse_predicate("price 10")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(PlanError):
            parse_predicate("(price < 10")
