"""Cross-plan evaluation memoization for the batched MQP fast path.

When many mutant query plans arrive at the same peer in one simulated tick
(the thousand-peer regime), most of them reduce the *same* sub-plans over
the *same* local collections — a popular query shape differs between plans
only in its query id.  :class:`EvaluationMemo` keys a sub-plan by its
canonical XML serialization — node ids are excluded by the wire format,
while annotations serialize and so are part of the key (identically-shaped
plans carry identical annotations, which is exactly when sharing is safe) —
and replays the evaluated items, so the query engine runs each distinct
sub-plan once per batch instead of once per plan.

The memo is deliberately scoped to a single batch: local collections are
free to change between ticks, so nothing is carried across batches unless
the caller chooses to reuse the object.
"""

from __future__ import annotations

from typing import Sequence

from ..algebra.operators import PlanNode
from ..algebra.serialization import node_to_xml
from ..xmlmodel import XMLElement, serialize_xml

__all__ = ["EvaluationMemo"]


class EvaluationMemo:
    """Structural (sub-plan → evaluated items) cache shared across one batch."""

    def __init__(self) -> None:
        self._items: dict[str, tuple[XMLElement, ...]] = {}
        self._annotations: dict[str, dict[str, str]] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_for(node: PlanNode) -> str:
        """The canonical serialization of a plan node (structural identity)."""
        return serialize_xml(node_to_xml(node))

    def lookup(self, key: str) -> list[XMLElement] | None:
        """Return the memoized items for ``key``, or ``None`` on a miss."""
        cached = self._items.get(key)
        if cached is None:
            self.misses += 1
            return None
        self.hits += 1
        return list(cached)

    def store(self, key: str, items: Sequence[XMLElement]) -> None:
        """Memoize the evaluated items of the sub-plan behind ``key``."""
        self._items[key] = tuple(items)

    # Statistics annotations ride along with the items: collecting them is
    # as expensive as evaluation for large results, so the batch caches both.

    def annotations_for(self, key: str) -> dict[str, str] | None:
        """Memoized statistics annotations for ``key``, if any."""
        return self._annotations.get(key)

    def store_annotations(self, key: str, annotations: dict[str, str]) -> None:
        """Memoize the statistics annotations computed for ``key``."""
        self._annotations[key] = dict(annotations)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the memo."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
