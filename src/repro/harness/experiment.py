"""Experiment harness: builds simulated scenarios and runs query batches.

The harness knows how to stand up the same garage-sale population under each
of the competing architectures — the paper's catalog-routed MQP network,
Gnutella-style broadcast, a Napster-style central index, and routing
indices — plus the coordinator-based execution baseline for the Figure 3
CD query.  Benchmarks call these functions and print the resulting metric
rows; tests use them with small populations to check end-to-end behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algebra import PlanBuilder, QueryPlan
from ..api import Cluster
from ..distributed import CoordinatorClient, CoordinatorServer, SubordinateServer
from ..errors import QueryTimeout
from ..mqp import QueryPreferences
from ..namespace import (
    CategoryPath,
    InterestArea,
    InterestAreaURN,
    InterestCell,
    MultiHierarchicNamespace,
)
from ..network import LatencyModel, Network, Topology, random_topology
from ..peers import BaseServer, ClientPeer, IndexServer, MetaIndexServer, QueryPeer
from ..routing import GnutellaPeer, NapsterIndexServer, NapsterPeer, RoutingIndexPeer
from ..workloads import CDWorkload, FORSALE_URN, GarageSaleWorkload, QuerySpec, TRACKLIST_URN
from ..xmlmodel import XMLElement

__all__ = [
    "MQPScenario",
    "build_mqp_scenario",
    "run_mqp_queries",
    "build_gnutella_scenario",
    "run_gnutella_queries",
    "build_napster_scenario",
    "run_napster_queries",
    "build_routing_index_scenario",
    "run_routing_index_queries",
    "compare_routing_strategies",
    "run_cd_query_mqp",
    "run_cd_query_coordinator",
    "item_cell",
    "query_plan_for",
]


# --------------------------------------------------------------------------- #
# Shared helpers
# --------------------------------------------------------------------------- #


def item_cell(namespace: MultiHierarchicNamespace, item: XMLElement) -> InterestCell:
    """The item-level interest cell of a garage-sale item (city x category)."""
    city = CategoryPath.parse(item.child_text("city") or "*")
    category = CategoryPath.parse(item.child_text("category") or "*")
    return InterestCell((city, category))


def query_plan_for(
    query: QuerySpec, target: str, include_price: bool = True
) -> QueryPlan:
    """Build the MQP for a garage-sale query: URN + area/price selection."""
    urn = str(InterestAreaURN.for_area(query.area))
    predicates: list[str] = []
    for cell in query.area:
        conjuncts = []
        city, category = cell.coordinates
        if not city.is_top:
            conjuncts.append(f"city contains '{city}'")
        if not category.is_top:
            conjuncts.append(f"category contains '{category}'")
        if conjuncts:
            predicates.append("(" + " and ".join(conjuncts) + ")")
    builder = PlanBuilder.urn(urn)
    clauses = []
    if predicates:
        clauses.append(" or ".join(predicates))
    if include_price and query.max_price is not None:
        clauses.append(f"price < {query.max_price:g}")
    if clauses:
        builder = builder.select(" and ".join(f"({clause})" for clause in clauses))
    return builder.display(target)


# --------------------------------------------------------------------------- #
# MQP / distributed-catalog scenario
# --------------------------------------------------------------------------- #


@dataclass
class MQPScenario:
    """Handles of a built catalog-routed network.

    ``cluster`` owns the network/transport lifecycle and hands out the
    :class:`~repro.api.Session` objects queries are issued through;
    ``network`` stays as a direct alias for metric-reading code.
    """

    cluster: Cluster
    network: Network
    namespace: MultiHierarchicNamespace
    workload: GarageSaleWorkload
    client: ClientPeer
    base_servers: list[BaseServer] = field(default_factory=list)
    index_servers: list[IndexServer] = field(default_factory=list)
    meta_index: MetaIndexServer | None = None
    registrations: int = 0

    @property
    def peers(self) -> list[QueryPeer]:
        """Every peer of the scenario."""
        peers: list[QueryPeer] = [*self.base_servers, *self.index_servers]
        if self.meta_index is not None:
            peers.append(self.meta_index)
        peers.append(self.client)
        return peers


def build_mqp_scenario(
    workload: GarageSaleWorkload,
    latency: LatencyModel | None = None,
    online_registration: bool = False,
    seed: int | None = None,
) -> MQPScenario:
    """Stand up the paper's architecture over a garage-sale workload.

    One base server per seller, one authoritative index server per state
    (``[country/state, *]``), one meta-index server covering everything,
    and one client seeded with the meta-index server only.

    ``seed``, when given, seeds the latency model's per-link jitter (unless
    an explicit ``latency`` already carries its own seed), making two
    same-seed builds bit-identical end to end.
    """
    namespace = workload.namespace
    if latency is None and seed is not None:
        latency = LatencyModel(seed=seed)
    cluster = Cluster(namespace=namespace, latency=latency)

    base_servers = []
    for seller in workload.sellers:
        session = cluster.base_server(seller.address, seller.area)
        session.publish("items", seller.items)
        base_servers.append(session.peer)

    states = sorted({tuple(seller.city.segments[:2]) for seller in workload.sellers})
    index_servers = []
    for state in states:
        area = InterestArea([InterestCell((CategoryPath(state), CategoryPath()))])
        address = f"index-{'-'.join(state).lower()}:9020"
        index_servers.append(cluster.index_server(address, area).peer)

    meta_index = cluster.meta_index("meta-index:9020").peer
    client = cluster.client("client:9020").peer

    scenario = MQPScenario(
        cluster=cluster,
        network=cluster.network,
        namespace=namespace,
        workload=workload,
        client=client,
        base_servers=base_servers,
        index_servers=index_servers,
        meta_index=meta_index,
    )
    scenario.registrations = cluster.connect(online=online_registration)
    return scenario


def run_mqp_queries(
    scenario: MQPScenario,
    queries: list[QuerySpec],
    preferences: QueryPreferences | None = None,
    include_price: bool = False,
    seed: int | None = None,
) -> dict[str, float]:
    """Issue a batch of queries from the scenario's client and summarize metrics.

    ``seed``, when given, assigns explicit deterministic query ids
    (``q<seed>-<index>``).  Without it, ids come from a process-global
    counter, whose width depends on how many queries ran earlier in the
    process — and id width leaks into serialized plan sizes, hence into
    byte counts and transfer latencies.  Seeded batches are therefore
    bit-identical run to run; unseeded batches are not.
    """
    session = scenario.cluster.session(scenario.client.address)
    for index, query in enumerate(queries):
        expected = scenario.workload.ground_truth_count(
            query.area, query.max_price if include_price else None
        )
        plan = query_plan_for(query, session.address, include_price=include_price)
        query_id = f"q{seed}-{index:03d}" if seed is not None else None
        session.submit(
            plan,
            preferences or QueryPreferences(),
            expected_answers=expected,
            query_id=query_id,
        )
        scenario.cluster.run_until_idle()
    return scenario.network.metrics.summary()


# --------------------------------------------------------------------------- #
# Gnutella broadcast scenario
# --------------------------------------------------------------------------- #


@dataclass
class GnutellaScenario:
    """Handles of a built broadcast overlay."""

    network: Network
    namespace: MultiHierarchicNamespace
    workload: GarageSaleWorkload
    client: GnutellaPeer
    peers: list[GnutellaPeer]
    topology: Topology


def build_gnutella_scenario(
    workload: GarageSaleWorkload,
    degree: int = 4,
    latency: LatencyModel | None = None,
    seed: int = 11,
) -> GnutellaScenario:
    """One Gnutella peer per seller plus a data-less client, on a random overlay."""
    namespace = workload.namespace
    network = Network(latency=latency)
    addresses = [seller.address for seller in workload.sellers] + ["client:9020"]
    topology = random_topology(addresses, degree=degree, seed=seed)

    peers = []
    for seller in workload.sellers:
        peer = GnutellaPeer(seller.address, topology)
        network.register(peer)
        for item in seller.items:
            peer.add_items(item_cell(namespace, item), [item])
        peers.append(peer)
    client = GnutellaPeer("client:9020", topology)
    network.register(client)
    return GnutellaScenario(network, namespace, workload, client, peers, topology)


def run_gnutella_queries(
    scenario: GnutellaScenario, queries: list[QuerySpec], horizon: int = 3
) -> dict[str, float]:
    """Broadcast each query from the client with the given horizon."""
    for query in queries:
        expected = scenario.workload.ground_truth_count(query.area, None)
        query_id = scenario.client.issue_query(query.area, horizon)
        scenario.network.metrics.trace(query_id).expected_answers = expected
        scenario.network.run_until_idle()
        trace = scenario.network.metrics.trace(query_id)
        if trace.completed_at is None:
            trace.completed_at = scenario.network.now
    return scenario.network.metrics.summary()


# --------------------------------------------------------------------------- #
# Napster central-index scenario
# --------------------------------------------------------------------------- #


@dataclass
class NapsterScenario:
    """Handles of a built central-index deployment."""

    network: Network
    namespace: MultiHierarchicNamespace
    workload: GarageSaleWorkload
    index: NapsterIndexServer
    client: NapsterPeer
    peers: list[NapsterPeer]


def build_napster_scenario(
    workload: GarageSaleWorkload, latency: LatencyModel | None = None
) -> NapsterScenario:
    """One Napster peer per seller, one central index, one client."""
    namespace = workload.namespace
    network = Network(latency=latency)
    index = NapsterIndexServer("central-index:9020")
    network.register(index)
    peers = []
    for seller in workload.sellers:
        peer = NapsterPeer(seller.address, index.address)
        network.register(peer)
        for item in seller.items:
            peer.publish(item_cell(namespace, item), [item])
        peers.append(peer)
    client = NapsterPeer("client:9020", index.address)
    network.register(client)
    network.run_until_idle()  # flush the publish traffic before measuring queries
    return NapsterScenario(network, namespace, workload, index, client, peers)


def run_napster_queries(scenario: NapsterScenario, queries: list[QuerySpec]) -> dict[str, float]:
    """Run each query through the central index."""
    for query in queries:
        expected = scenario.workload.ground_truth_count(query.area, None)
        query_id = scenario.client.issue_query(query.area)
        scenario.network.metrics.trace(query_id).expected_answers = expected
        scenario.network.run_until_idle()
        trace = scenario.network.metrics.trace(query_id)
        if trace.completed_at is None:
            trace.completed_at = scenario.network.now
    return scenario.network.metrics.summary()


# --------------------------------------------------------------------------- #
# Routing-index scenario
# --------------------------------------------------------------------------- #


@dataclass
class RoutingIndexScenario:
    """Handles of a built routing-index overlay."""

    network: Network
    namespace: MultiHierarchicNamespace
    workload: GarageSaleWorkload
    client: RoutingIndexPeer
    peers: list[RoutingIndexPeer]
    topology: Topology


def build_routing_index_scenario(
    workload: GarageSaleWorkload,
    degree: int = 4,
    latency: LatencyModel | None = None,
    seed: int = 11,
) -> RoutingIndexScenario:
    """One routing-index peer per seller plus a client, with indices advertised."""
    namespace = workload.namespace
    network = Network(latency=latency)
    addresses = [seller.address for seller in workload.sellers] + ["client:9020"]
    topology = random_topology(addresses, degree=degree, seed=seed)
    peers = []
    for seller in workload.sellers:
        peer = RoutingIndexPeer(seller.address, namespace, topology)
        network.register(peer)
        for item in seller.items:
            peer.add_items(item_cell(namespace, item), [item])
        peers.append(peer)
    client = RoutingIndexPeer("client:9020", namespace, topology)
    network.register(client)
    for peer in [*peers, client]:
        peer.advertise()
    network.run_until_idle()
    return RoutingIndexScenario(network, namespace, workload, client, peers, topology)


def run_routing_index_queries(
    scenario: RoutingIndexScenario, queries: list[QuerySpec], wanted: int = 10
) -> dict[str, float]:
    """Run each query with routing-index-guided forwarding."""
    for query in queries:
        expected = scenario.workload.ground_truth_count(query.area, None)
        query_id = scenario.client.issue_query(query.area, wanted=max(wanted, expected))
        scenario.network.metrics.trace(query_id).expected_answers = expected
        scenario.network.run_until_idle()
        trace = scenario.network.metrics.trace(query_id)
        if trace.completed_at is None:
            trace.completed_at = scenario.network.now
    return scenario.network.metrics.summary()


# --------------------------------------------------------------------------- #
# Cross-strategy comparison (EXP-ROUTING)
# --------------------------------------------------------------------------- #


def compare_routing_strategies(
    workload: GarageSaleWorkload,
    queries: list[QuerySpec],
    gnutella_horizon: int = 3,
    overlay_degree: int = 4,
) -> list[dict[str, object]]:
    """Run the same query batch under every strategy; one summary row each."""
    rows: list[dict[str, object]] = []

    mqp_scenario = build_mqp_scenario(workload)
    mqp_summary = run_mqp_queries(mqp_scenario, queries)
    rows.append({"strategy": "mqp-catalog", **mqp_summary})

    gnutella_scenario = build_gnutella_scenario(workload, degree=overlay_degree)
    gnutella_summary = run_gnutella_queries(gnutella_scenario, queries, horizon=gnutella_horizon)
    rows.append({"strategy": f"gnutella(h={gnutella_horizon})", **gnutella_summary})

    napster_scenario = build_napster_scenario(workload)
    napster_summary = run_napster_queries(napster_scenario, queries)
    napster_summary["central_server_messages"] = float(
        napster_scenario.network.metrics.messages_by_sender.get(napster_scenario.index.address, 0)
        + sum(
            1
            for trace in napster_scenario.network.metrics.traces.values()
            if napster_scenario.index.address in trace.visited
        )
    )
    rows.append({"strategy": "napster-central", **napster_summary})

    ri_scenario = build_routing_index_scenario(workload, degree=overlay_degree)
    ri_summary = run_routing_index_queries(ri_scenario, queries)
    rows.append({"strategy": "routing-index", **ri_summary})
    return rows


# --------------------------------------------------------------------------- #
# Figure 3 CD query: MQP versus coordinator execution (EXP-MQP-VS-COORD)
# --------------------------------------------------------------------------- #


def run_cd_query_mqp(
    cd_workload: CDWorkload, latency: LatencyModel | None = None
) -> tuple[dict[str, float], set[str]]:
    """Execute the Figure 3 query with mutant query plans.

    Returns the network metric summary and the CD titles found.
    """
    namespace = cd_workload.namespace
    cluster = Cluster(namespace=namespace, latency=latency)
    area = cd_workload.portland_cd_area()

    sellers = []
    for seller in cd_workload.sellers:
        session = cluster.base_server(seller.address, area)
        session.publish("cds", seller.items, urn=FORSALE_URN)
        sellers.append(session)

    tracklist = cluster.base_server("tracklist:9020", namespace.top_area())
    tracklist.publish("tracklistings", cd_workload.track_listings, urn=TRACKLIST_URN)

    index_server = cluster.index_server("index-portland:9020", area)
    client = cluster.client("client:9020")

    # No meta-index in this scenario: the client bootstraps off the Portland
    # index server, and knows the track-listing service out of band (CDDB).
    cluster.connect(seed_clients=False)
    client.learn_about(index_server)
    client.learn_about(tracklist)
    tracklist_entry = tracklist.peer.catalog.named_resources[TRACKLIST_URN]
    for session in (client, index_server, *sellers):
        session.peer.catalog.register_named_resource(tracklist_entry)

    expected = cd_workload.expected_matches()
    handle = client.submit(
        cd_workload.figure3_plan(client.address),
        QueryPreferences(),
        expected_answers=len(expected),
    )
    cluster.run_until_idle()
    found: set[str] = set()
    try:
        # On the idle network this returns the complete answer or, when the
        # plan degraded (e.g. hop budget exhausted at scale), the latest
        # partial — the same answers the pre-API harness counted.
        result = handle.result()
    except QueryTimeout:
        result = None  # nothing was ever delivered
    if result is not None:
        for item in result.items:
            for title_node in item.iter_tag("title"):
                if title_node.text:
                    found.add(title_node.text)
    return cluster.metrics.summary(), found & expected if expected else found


def run_cd_query_coordinator(
    cd_workload: CDWorkload, latency: LatencyModel | None = None
) -> tuple[dict[str, float], set[str]]:
    """Execute the same query with a coordinator and subordinate servers."""
    network = Network(latency=latency)
    coordinator = CoordinatorServer("coordinator:9020")
    network.register(coordinator)

    subordinate_urls = []
    for seller in cd_workload.sellers:
        subordinate = SubordinateServer(seller.address)
        network.register(subordinate)
        subordinate.add_collection("/cds", seller.items)
        subordinate_urls.append((seller.address, "/cds"))
    tracklist = SubordinateServer("tracklist:9020")
    network.register(tracklist)
    tracklist.add_collection("/tracklistings", cd_workload.track_listings)

    client = CoordinatorClient("client:9020", coordinator.address)
    network.register(client)

    # The coordinator model ships a fully concrete plan: the client (or the
    # coordinator's global catalog) already knows every URL.
    cheap = PlanBuilder.url(subordinate_urls[0][0], subordinate_urls[0][1])
    union = cheap
    if len(subordinate_urls) > 1:
        union = cheap.union(
            *[PlanBuilder.url(url, path) for url, path in subordinate_urls[1:]]
        )
    cheap_selected = union.select(f"price < {cd_workload.config.max_price:g}")
    joined = cheap_selected.join(
        PlanBuilder.url(tracklist.address, "/tracklistings"), on=("//title", "//CD/title")
    )
    with_favorites = joined.join(
        PlanBuilder.data(cd_workload.favorite_songs, name="favorite-songs"),
        on=("//song", "//favorite/song"),
    )
    plan = with_favorites.display(client.address)

    expected = cd_workload.expected_matches()
    query_id = client.issue_query(plan)
    network.metrics.trace(query_id).expected_answers = len(expected)
    network.run_until_idle()
    found: set[str] = set()
    for item in client.results_for(query_id):
        for title_node in item.iter_tag("title"):
            if title_node.text:
                found.add(title_node.text)
    return network.metrics.summary(), found & expected if expected else found
