"""Physical operator implementations of the local XML query engine.

The paper uses NIAGARA as its local query engine; this module is the
reproduction's substitute.  It carries two parallel implementations of the
physical algebra:

* the ``evaluate_*`` functions — the seed's list-in / list-out operators,
  kept verbatim as the materialized correctness oracle;
* the ``stream_*`` functions — pull-based (Volcano-style) iterators that
  produce the *byte-identical* item sequence while holding at most one
  in-flight item for the fully streaming operators (Select, Project,
  Union) and an explicitly budgeted buffer for the pipeline breakers
  (Join builds its right-hand hash index, Difference its right-hand key
  set, OrderBy / TopN / Aggregate buffer their whole input).

Pipeline breakers account every buffered item against a shared
:class:`BufferBudget`; overrunning the budget raises
:class:`~repro.errors.ResourceBudgetExceeded` instead of growing without
bound, and buffers are released (in a ``finally``) as soon as the
operator's iterator is exhausted or closed.

Joins are hash-based when the join paths yield hashable scalar values and
fall back to nested loops otherwise; both strategies produce identical
output ordering (left-input order, then right-input order) so evaluation is
deterministic.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import chain, islice
from typing import Iterable, Iterator, Sequence

from ..errors import EvaluationError, ResourceBudgetExceeded
from ..xmlmodel import XMLElement, evaluate_path_values, text_element
from ..algebra.expressions import Expression

__all__ = [
    "evaluate_select",
    "evaluate_project",
    "evaluate_join",
    "evaluate_union",
    "evaluate_difference",
    "evaluate_aggregate",
    "evaluate_order_by",
    "evaluate_top_n",
    "BufferBudget",
    "stream_select",
    "stream_project",
    "stream_join",
    "stream_union",
    "stream_difference",
    "stream_aggregate",
    "stream_order_by",
    "stream_top_n",
]


class BufferBudget:
    """Shared accounting for every pipeline-breaker buffer of one evaluation.

    ``limit`` bounds the number of items buffered *simultaneously* across
    all blocking operators of a plan; ``None`` means unbounded (accounting
    still runs, so ``peak`` is always measured).  Operators ``charge`` as
    they buffer and ``release`` when their iterator is exhausted or closed,
    so a budget object doubles as the peak-memory probe the streaming
    benchmarks and the differential suite assert against.
    """

    __slots__ = ("limit", "buffered", "peak")

    def __init__(self, limit: int | None = None) -> None:
        if limit is not None and limit < 1:
            raise EvaluationError("max_buffered_items must be at least 1")
        self.limit = limit
        self.buffered = 0
        self.peak = 0

    def charge(self, count: int = 1) -> None:
        """Account ``count`` newly buffered items, enforcing the limit.

        A rejected charge is not retained — neither in ``buffered`` nor in
        ``peak``: the caller never buffered the item, so the high-water
        mark only ever reports items that were simultaneously held.
        """
        grown = self.buffered + count
        if self.limit is not None and grown > self.limit:
            raise ResourceBudgetExceeded(
                f"pipeline breaker would buffer {grown} items, "
                f"over the max_buffered_items budget of {self.limit}"
            )
        self.buffered = grown
        if grown > self.peak:
            self.peak = grown

    def release(self, count: int) -> None:
        """Return ``count`` items' worth of budget (iterator closed/drained)."""
        self.buffered = max(0, self.buffered - count)


def _first_value(item: XMLElement, path: str) -> str | None:
    values = evaluate_path_values(item, path)
    return values[0] if values else None


def _sort_key(value: str | None) -> tuple[int, float | str]:
    """Total order over optional, possibly-numeric strings.

    Missing values sort last; numeric values sort before strings, among
    themselves numerically.
    """
    if value is None:
        return (2, "")
    try:
        return (0, float(value))
    except ValueError:
        return (1, value)


def evaluate_select(items: Sequence[XMLElement], predicate: Expression) -> list[XMLElement]:
    """Keep the items satisfying ``predicate``."""
    return [item for item in items if predicate.matches(item)]


def evaluate_project(
    items: Sequence[XMLElement],
    columns: Sequence[tuple[str, str]],
    item_tag: str = "item",
) -> list[XMLElement]:
    """Build new items containing only the projected fields."""
    projected: list[XMLElement] = []
    for item in items:
        fields: list[XMLElement] = []
        for path, tag in columns:
            for value in evaluate_path_values(item, path):
                fields.append(text_element(tag, value))
        projected.append(XMLElement(item_tag, {}, fields))
    return projected


def evaluate_join(
    left: Sequence[XMLElement],
    right: Sequence[XMLElement],
    left_path: str,
    right_path: str,
    join_type: str = "inner",
    output_tag: str = "tuple",
) -> list[XMLElement]:
    """Equality join; ``left_outer`` keeps unmatched left items.

    Items may have several values at the join path (XML is multi-valued);
    two items join when their value sets intersect, which matches the
    favourite-songs / track-listing join of Figure 3.
    """
    if join_type not in ("inner", "left_outer"):
        raise EvaluationError(f"unsupported join type {join_type!r}")

    index: dict[str, list[XMLElement]] = defaultdict(list)
    for right_item in right:
        for value in set(evaluate_path_values(right_item, right_path)):
            index[value].append(right_item)

    joined: list[XMLElement] = []
    for left_item in left:
        matches: list[XMLElement] = []
        seen: set[int] = set()
        for value in evaluate_path_values(left_item, left_path):
            for right_item in index.get(value, ()):
                if id(right_item) not in seen:
                    seen.add(id(right_item))
                    matches.append(right_item)
        if matches:
            for right_item in matches:
                joined.append(
                    XMLElement(output_tag, {}, [left_item.copy(), right_item.copy()])
                )
        elif join_type == "left_outer":
            joined.append(XMLElement(output_tag, {}, [left_item.copy()]))
    return joined


def evaluate_union(collections: Sequence[Sequence[XMLElement]]) -> list[XMLElement]:
    """Bag union: concatenate the input collections."""
    merged: list[XMLElement] = []
    for collection in collections:
        merged.extend(collection)
    return merged


def evaluate_difference(
    left: Sequence[XMLElement],
    right: Sequence[XMLElement],
    key_path: str | None = None,
) -> list[XMLElement]:
    """Items of ``left`` not present in ``right``.

    With ``key_path`` given, membership compares the first value at that
    path; otherwise it compares whole items structurally.
    """
    if key_path is None:
        right_keys = {hash(item) for item in right}
        return [item for item in left if hash(item) not in right_keys]
    right_values = {_first_value(item, key_path) for item in right}
    return [item for item in left if _first_value(item, key_path) not in right_values]


def _aggregate_value(function: str, values: list[float]) -> float:
    if function == "sum":
        return sum(values)
    if function == "min":
        return min(values)
    if function == "max":
        return max(values)
    if function == "avg":
        return sum(values) / len(values)
    raise EvaluationError(f"unsupported aggregate function {function!r}")


def evaluate_aggregate(
    items: Sequence[XMLElement],
    function: str,
    value_path: str | None = None,
    group_path: str | None = None,
    output_tag: str = "aggregate",
) -> list[XMLElement]:
    """Grouped or global aggregation.

    Output items carry a ``<group>`` child (when grouping) and a
    ``<value>`` child holding the aggregate.
    """
    groups: dict[str | None, list[XMLElement]] = defaultdict(list)
    for item in items:
        key = _first_value(item, group_path) if group_path else None
        groups[key].append(item)
    if group_path and not items:
        groups = {}
    if not group_path and not groups:
        groups = {None: []}

    results: list[XMLElement] = []
    for key in sorted(groups, key=lambda value: (value is None, value)):
        members = groups[key]
        if function == "count":
            value: float = float(len(members))
        else:
            assert value_path is not None  # validated at plan construction
            numbers: list[float] = []
            for member in members:
                raw = _first_value(member, value_path)
                if raw is None:
                    continue
                try:
                    numbers.append(float(raw))
                except ValueError as exc:
                    raise EvaluationError(
                        f"non-numeric value {raw!r} for aggregate {function!r}"
                    ) from exc
            if not numbers:
                continue
            value = _aggregate_value(function, numbers)
        children = []
        if group_path and key is not None:
            children.append(text_element("group", key))
        rendered = int(value) if float(value).is_integer() else value
        children.append(text_element("value", rendered))
        results.append(XMLElement(output_tag, {"function": function}, children))
    return results


def evaluate_order_by(
    items: Sequence[XMLElement], path: str, descending: bool = False
) -> list[XMLElement]:
    """Stable sort by the (possibly numeric) value at ``path``."""
    return sorted(items, key=lambda item: _sort_key(_first_value(item, path)), reverse=descending)


def evaluate_top_n(
    items: Sequence[XMLElement], limit: int, path: str, descending: bool = True
) -> list[XMLElement]:
    """The first ``limit`` items when ordered by ``path``."""
    return evaluate_order_by(items, path, descending)[:limit]


# --------------------------------------------------------------------------- #
# Streaming (pull-based) operators
# --------------------------------------------------------------------------- #


def stream_select(items: Iterable[XMLElement], predicate: Expression) -> Iterator[XMLElement]:
    """Streaming Select: one item in flight, nothing buffered."""
    return filter(predicate.matches, items)


def stream_project(
    items: Iterable[XMLElement],
    columns: Sequence[tuple[str, str]],
    item_tag: str = "item",
) -> Iterator[XMLElement]:
    """Streaming Project: each projected item is built as it is pulled.

    ``map`` over a bound builder keeps the per-item driving loop in C —
    like ``filter`` for Select — so a drained streaming pipeline is never
    slower than the seed's Python-level list loops.
    """

    def build(
        item: XMLElement,
        # Defaults turn every per-item lookup into a local load.
        columns: Sequence[tuple[str, str]] = tuple(columns),
        item_tag: str = item_tag,
        values: object = evaluate_path_values,
        text: object = text_element,
        element: object = XMLElement,
    ) -> XMLElement:
        fields: list[XMLElement] = []
        append = fields.append
        for path, tag in columns:
            for value in values(item, path):  # type: ignore[operator]
                append(text(tag, value))  # type: ignore[operator]
        return element(item_tag, {}, fields)  # type: ignore[operator]

    return map(build, items)


def stream_union(collections: Sequence[Iterable[XMLElement]]) -> Iterator[XMLElement]:
    """Streaming bag union: inputs are drained in order, never copied."""
    return chain.from_iterable(collections)


def stream_join(
    left: Iterable[XMLElement],
    right: Iterable[XMLElement],
    left_path: str,
    right_path: str,
    join_type: str = "inner",
    output_tag: str = "tuple",
    budget: BufferBudget | None = None,
) -> Iterator[XMLElement]:
    """Pipeline-breaking join: buffers the right input's hash index.

    The left input streams through unbuffered; every right item is charged
    against ``budget`` while the index is alive.
    """
    if join_type not in ("inner", "left_outer"):
        raise EvaluationError(f"unsupported join type {join_type!r}")
    budget = budget if budget is not None else BufferBudget()
    buffered = 0
    try:
        index: dict[str, list[XMLElement]] = defaultdict(list)
        for right_item in right:
            budget.charge()
            buffered += 1
            for value in set(evaluate_path_values(right_item, right_path)):
                index[value].append(right_item)
        for left_item in left:
            matches: list[XMLElement] = []
            seen: set[int] = set()
            for value in evaluate_path_values(left_item, left_path):
                for right_item in index.get(value, ()):
                    if id(right_item) not in seen:
                        seen.add(id(right_item))
                        matches.append(right_item)
            if matches:
                for right_item in matches:
                    yield XMLElement(output_tag, {}, [left_item.copy(), right_item.copy()])
            elif join_type == "left_outer":
                yield XMLElement(output_tag, {}, [left_item.copy()])
    finally:
        budget.release(buffered)


def stream_difference(
    left: Iterable[XMLElement],
    right: Iterable[XMLElement],
    key_path: str | None = None,
    budget: BufferBudget | None = None,
) -> Iterator[XMLElement]:
    """Pipeline-breaking difference: buffers the right input's key set."""
    budget = budget if budget is not None else BufferBudget()
    buffered = 0
    try:
        if key_path is None:
            right_keys: set[int] = set()
            for item in right:
                budget.charge()
                buffered += 1
                right_keys.add(hash(item))
            for item in left:
                if hash(item) not in right_keys:
                    yield item
        else:
            right_values: set[str | None] = set()
            for item in right:
                budget.charge()
                buffered += 1
                right_values.add(_first_value(item, key_path))
            for item in left:
                if _first_value(item, key_path) not in right_values:
                    yield item
    finally:
        budget.release(buffered)


def _buffer_all(
    items: Iterable[XMLElement], budget: BufferBudget
) -> list[XMLElement]:
    buffered: list[XMLElement] = []
    try:
        for item in items:
            budget.charge()
            buffered.append(item)
    except BaseException:
        budget.release(len(buffered))  # a failed fill frees what it took
        raise
    return buffered


def stream_aggregate(
    items: Iterable[XMLElement],
    function: str,
    value_path: str | None = None,
    group_path: str | None = None,
    output_tag: str = "aggregate",
    budget: BufferBudget | None = None,
) -> Iterator[XMLElement]:
    """Pipeline-breaking aggregation: buffers its whole input.

    Delegates to the materialized oracle over the budgeted buffer so group
    ordering and error behaviour stay byte-identical.
    """
    budget = budget if budget is not None else BufferBudget()
    buffered: list[XMLElement] = []
    try:
        buffered = _buffer_all(items, budget)
        yield from evaluate_aggregate(buffered, function, value_path, group_path, output_tag)
    finally:
        budget.release(len(buffered))


def stream_order_by(
    items: Iterable[XMLElement],
    path: str,
    descending: bool = False,
    budget: BufferBudget | None = None,
) -> Iterator[XMLElement]:
    """Pipeline-breaking sort: buffers its whole input, then streams it out."""
    budget = budget if budget is not None else BufferBudget()
    buffered: list[XMLElement] = []
    try:
        buffered = _buffer_all(items, budget)
        buffered.sort(key=lambda item: _sort_key(_first_value(item, path)), reverse=descending)
        yield from buffered
    finally:
        budget.release(len(buffered))


def stream_top_n(
    items: Iterable[XMLElement],
    limit: int,
    path: str,
    descending: bool = True,
    budget: BufferBudget | None = None,
) -> Iterator[XMLElement]:
    """Pipeline-breaking Top-N: a budgeted sort truncated to ``limit`` items."""
    ordered = stream_order_by(items, path, descending, budget)
    try:
        yield from islice(ordered, limit)
    finally:
        ordered.close()  # release the sort buffer even when truncated
