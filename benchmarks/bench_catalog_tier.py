"""CATALOG TIER — sharded lookup throughput, hot-area caching, outage completeness.

Three claims from the sharded, replicated catalog tier
(``flags.catalog_tier`` + :mod:`repro.catalogtier`):

* **Sharded lookup throughput** — at the thousand-peer entry population,
  routing each lookup to its owning shard (a quarter of the entries,
  answers memoized in the shard's :class:`AnswerCache`) sustains >= 2x
  the lookups-per-second of one monolithic catalog holding everything.
  The raw rates are recorded alongside as context.
* **Hot-area hit rate** — under a Zipf-skewed lookup workload (the
  file-sharing popularity regime of the paper's locality argument) the
  answer caches serve >= 80% of lookups without touching the catalog
  index.
* **Outage completeness** — the ``sharded-catalog`` configuration (4
  shards x 3 replicas, 10% seeded link loss, reliable delivery) keeps
  every query's recall at 1.0 while one replica of group 0 is crashed
  mid-query and later rejoins.

Wall-clock rates use ``time.perf_counter``; the completeness cell runs in
simulated time and is fully deterministic.  ``REPRO_BENCH_QUICK=1``
shrinks the entry population for CI smoke runs.
"""

from __future__ import annotations

import time

import pytest

import benchjson
from conftest import emit
from repro.catalog import Catalog, ServerEntry, ServerRole
from repro.catalogtier import AnswerCache, ShardMap
from repro.harness.report import format_table
from repro.harness.scaleout import (
    ScaleoutSpec,
    _garage_sale_population,
    _index_areas,
    run_scaleout,
)
from repro.perf import overrides
from repro.workloads.adversarial import zipf_query_ranks
from repro.workloads.distributions import make_rng

QUICK = benchjson.quick_mode()
BENCH = "catalog_tier"

POP_PEERS = 200 if QUICK else 1000
LOOKUPS = 600 if QUICK else 3000
SHARDS = 4

SPEEDUP_GATE = 2.0
HIT_RATE_GATE = 0.8
COMPLETENESS_GATE = 1.0


@pytest.fixture(scope="module")
def population():
    """The thousand-peer garage-sale entry population plus a Zipf lookup tape."""
    spec = ScaleoutSpec(name="tier-bench", peers=POP_PEERS, workload="garage-sale", seed=11)
    namespace, data_peers, _ = _garage_sale_population(spec)
    hot_areas = _index_areas(namespace, data_peers)
    ranks = zipf_query_ranks(make_rng(spec.seed + 4), len(hot_areas), LOOKUPS)
    lookups = [hot_areas[rank] for rank in ranks]
    return namespace, data_peers, lookups


def _entries(data_peers):
    """Fresh entry objects per catalog — registration merges areas in place."""
    return [
        ServerEntry(peer.address, ServerRole.BASE, peer.area) for peer in data_peers
    ]


@pytest.fixture(scope="module")
def lookup_cell(population):
    """Time the same Zipf lookup tape against both catalog organizations."""
    _, data_peers, lookups = population

    monolith = Catalog("mono:1")
    for entry in _entries(data_peers):
        monolith.register_server(entry)
    started = time.perf_counter()
    for area in lookups:
        monolith.servers_overlapping(area)
    mono_s = time.perf_counter() - started

    shard_map = ShardMap.build([[f"idx-s{shard}:1"] for shard in range(SHARDS)])
    catalogs = {shard: Catalog(f"idx-s{shard}:1") for shard in range(SHARDS)}
    caches = {shard: AnswerCache(capacity=256) for shard in range(SHARDS)}
    for shard, catalog in catalogs.items():
        catalog.attach_answer_cache(caches[shard])
    for entry in _entries(data_peers):
        for shard in shard_map.shards_for_area(entry.area):
            catalogs[shard].register_server(
                ServerEntry(entry.address, entry.role, entry.area)
            )
    with overrides(catalog_tier=True):
        started = time.perf_counter()
        for area in lookups:
            shard = shard_map.shards_for_area(area)[0]
            catalogs[shard].servers_overlapping(area)
        sharded_s = time.perf_counter() - started

    hits = sum(cache.hits for cache in caches.values())
    misses = sum(cache.misses for cache in caches.values())
    return {
        "entries": len(data_peers),
        "lookups": len(lookups),
        "mono_rate": len(lookups) / mono_s,
        "sharded_rate": len(lookups) / sharded_s,
        "hit_rate": hits / (hits + misses),
    }


@pytest.fixture(scope="module")
def outage_cell():
    """The sharded-catalog scenario with one replica of three crashed mid-query."""
    spec = ScaleoutSpec(
        name="tier-outage", topology="small-world", peers=120,
        workload="garage-sale", churn="none", queries=12, seed=11,
        catalog_shards=SHARDS, catalog_replicas=3, catalog_outages=1,
        fault_loss=0.10, reliable=True,
    )
    report = run_scaleout(spec)
    rows = report["queries"]
    complete = sum(1 for row in rows if row["recall"] == 1.0)
    tier = report["catalog_tier"]
    return {
        "queries": len(rows),
        "completeness": complete / len(rows),
        "failovers": tier["tier_failovers"],
        "reconciliations": tier["reconciliations"],
    }


def test_sharded_lookups_beat_the_monolith(lookup_cell):
    """Gate: 4-shard lookup throughput >= 2x the single-catalog baseline."""
    speedup = lookup_cell["sharded_rate"] / lookup_cell["mono_rate"]

    emit(
        f"CATALOG TIER: Zipf lookups over {lookup_cell['entries']} entries, "
        f"{SHARDS} shards vs one catalog ({lookup_cell['lookups']} lookups)",
        format_table(
            [
                {"organization": "monolithic catalog",
                 "lookups_per_s": round(lookup_cell["mono_rate"], 1)},
                {"organization": f"{SHARDS}-shard tier + answer cache",
                 "lookups_per_s": round(lookup_cell["sharded_rate"], 1)},
                {"organization": "speedup", "lookups_per_s": round(speedup, 2)},
            ],
            ["organization", "lookups_per_s"],
            precision=2,
        ),
    )

    benchjson.record_metric(
        BENCH, "monolithic_lookup_rate", lookup_cell["mono_rate"],
        unit="lookups/s", direction="higher", compare=False,
        entries=lookup_cell["entries"],
    )
    benchjson.record_metric(
        BENCH, "sharded_lookup_rate", lookup_cell["sharded_rate"],
        unit="lookups/s", direction="higher", compare=False,
        entries=lookup_cell["entries"], shards=SHARDS,
    )
    # compare=False: the ratio is wall-clock-derived, so cross-machine drift
    # would trip the 20% regression diff; the hard gate is the contract.
    benchjson.record_metric(
        BENCH, "sharded_lookup_speedup", speedup, unit="ratio",
        direction="higher", compare=False, gate_min=SPEEDUP_GATE,
        entries=lookup_cell["entries"], shards=SHARDS,
    )

    assert speedup >= SPEEDUP_GATE


def test_answer_cache_serves_the_hot_areas(lookup_cell):
    """Gate: Zipf workload hit rate >= 0.8 across the shard answer caches."""
    hit_rate = lookup_cell["hit_rate"]

    emit(
        f"CATALOG TIER: answer-cache hit rate under Zipf lookups "
        f"({lookup_cell['lookups']} lookups, {SHARDS} shards)",
        f"hit_rate = {hit_rate:.4f} (gate >= {HIT_RATE_GATE})",
    )

    benchjson.record_metric(
        BENCH, "answer_cache_hit_rate", hit_rate, unit="fraction",
        direction="higher", compare=True, gate_min=HIT_RATE_GATE,
        lookups=lookup_cell["lookups"], shards=SHARDS,
    )

    assert hit_rate >= HIT_RATE_GATE


def test_replica_outage_keeps_answers_complete(outage_cell):
    """Gate: completeness 1.0 with a replica crashed mid-query at 10% loss."""
    emit(
        "CATALOG TIER: completeness under a mid-query replica outage "
        f"({SHARDS} shards x 3 replicas, 10% link loss, reliable delivery)",
        format_table(
            [
                {"metric": "queries", "value": outage_cell["queries"]},
                {"metric": "completeness", "value": outage_cell["completeness"]},
                {"metric": "tier_failovers", "value": outage_cell["failovers"]},
                {"metric": "reconciliations", "value": outage_cell["reconciliations"]},
            ],
            ["metric", "value"],
            precision=4,
        ),
    )

    benchjson.record_metric(
        BENCH, "outage_completeness", outage_cell["completeness"],
        unit="fraction", direction="higher", compare=True,
        gate_min=COMPLETENESS_GATE, queries=outage_cell["queries"],
        shards=SHARDS, replicas=3, outages=1, fault_loss=0.10,
    )
    benchjson.record_metric(
        BENCH, "outage_tier_failovers", outage_cell["failovers"], unit="count",
        direction="lower", compare=False, queries=outage_cell["queries"],
    )

    assert outage_cell["completeness"] >= COMPLETENESS_GATE
    assert outage_cell["reconciliations"] >= 1


if __name__ == "__main__":
    raise SystemExit(benchjson.run_as_script(__file__))
