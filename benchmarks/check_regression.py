"""Gate the perf trajectory: compare fresh BENCH_*.json files to baselines.

Usage::

    python benchmarks/check_regression.py --current bench-reports [--baseline .]
        [--tolerance 0.2]

Two kinds of checks, both driven by the metric schema of :mod:`benchjson`:

* **hard gates** — any metric carrying ``gate_min`` must meet it, wherever
  it was measured (these are ratios by construction, so they travel
  across hardware);
* **regressions** — metrics marked ``"compare": true`` are measured
  against the committed baseline and fail when they move more than
  ``tolerance`` (default 20%) in the bad direction (``direction``).
  Comparison is skipped — loudly — when the baseline was recorded at a
  different workload size (``quick`` mismatch) or doesn't exist yet.

Exit status is non-zero when any gate or regression check fails, so CI can
block the merge.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path


_VALUE_KEYS = {"value", "unit", "direction", "compare", "gate_min"}
"""Schema keys of a metric; everything else is workload context."""


def _context(metric: dict) -> dict:
    return {key: value for key, value in metric.items() if key not in _VALUE_KEYS}


def _load_reports(directory: Path) -> dict[str, dict]:
    reports = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            report = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            print(f"ERROR  {path}: not valid JSON ({error})")
            continue
        reports[report.get("bench", path.stem.removeprefix("BENCH_"))] = report
    return reports


def check(current_dir: Path, baseline_dir: Path, tolerance: float) -> int:
    current = _load_reports(current_dir)
    baseline = _load_reports(baseline_dir)
    if not current:
        print(f"ERROR  no BENCH_*.json files found under {current_dir}")
        return 1

    failures = 0
    for bench, report in sorted(current.items()):
        metrics = report.get("metrics", {})
        base_report = baseline.get(bench)
        for name, metric in sorted(metrics.items()):
            value = metric.get("value")
            direction = metric.get("direction", "higher")
            label = f"{bench}.{name}"

            gate_min = metric.get("gate_min")
            if gate_min is not None:
                if value < gate_min:
                    print(f"FAIL   {label}: {value:g} below hard gate {gate_min:g}")
                    failures += 1
                else:
                    print(f"ok     {label}: {value:g} (gate >= {gate_min:g})")

            if not metric.get("compare"):
                continue
            if base_report is None:
                print(f"skip   {label}: no committed baseline for bench {bench!r}")
                continue
            if base_report.get("quick") != report.get("quick"):
                print(
                    f"skip   {label}: baseline recorded at a different workload size "
                    f"(quick={base_report.get('quick')} vs {report.get('quick')})"
                )
                continue
            base_metric = base_report.get("metrics", {}).get(name)
            if base_metric is None:
                print(f"skip   {label}: metric absent from baseline")
                continue
            if _context(base_metric) != _context(metric):
                # A changed workload (peer count, batch size, seed, ...)
                # makes the numbers incomparable; re-baseline instead.
                print(
                    f"skip   {label}: workload context changed "
                    f"({_context(base_metric)} vs {_context(metric)})"
                )
                continue
            base_value = base_metric.get("value")
            if direction == "lower":
                limit = base_value * (1.0 + tolerance)
                regressed = value > limit
            else:
                limit = base_value * (1.0 - tolerance)
                regressed = value < limit
            if regressed:
                print(
                    f"FAIL   {label}: {value:g} regressed past {tolerance:.0%} of "
                    f"baseline {base_value:g} (limit {limit:g}, direction={direction})"
                )
                failures += 1
            else:
                print(f"ok     {label}: {value:g} vs baseline {base_value:g}")

    if failures:
        print(f"\n{failures} perf check(s) failed")
    else:
        print("\nall perf checks passed")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", required=True, type=Path,
                        help="directory holding the freshly generated BENCH_*.json files")
    parser.add_argument("--baseline", default=Path("."), type=Path,
                        help="directory holding the committed baselines (default: repo root)")
    parser.add_argument("--tolerance", default=0.2, type=float,
                        help="allowed fractional regression before failing (default: 0.2)")
    args = parser.parse_args(argv)
    return check(args.current, args.baseline, args.tolerance)


if __name__ == "__main__":
    raise SystemExit(main())
