"""Figure 1 scenario: federated gene-expression repositories ("Of Mice and Men").

Run with::

    python examples/gene_expression_federation.py

Three research groups host MIAME-style expression data and describe their
holdings with interest areas over the Organism x CellType namespace.  A
query about cardiac muscle cells in mammals is routed only to the groups
whose interest areas overlap the query; the fruit-fly neural repository is
never contacted.
"""

from __future__ import annotations

from repro.algebra import PlanBuilder
from repro.mqp import QueryPreferences
from repro.namespace import InterestAreaURN
from repro.network import Network
from repro.peers import BaseServer, ClientPeer, MetaIndexServer, register_offline, seed_with_meta_index
from repro.workloads import GeneExpressionConfig, GeneExpressionWorkload


def main() -> None:
    workload = GeneExpressionWorkload(GeneExpressionConfig(records_per_cell=3))
    namespace = workload.namespace
    network = Network()

    repositories = []
    for repository in workload.repositories:
        peer = BaseServer(repository.address, namespace, repository.area)
        network.register(peer)
        peer.publish_collection("experiments", repository.records)
        repositories.append(peer)
        print(f"{repository.name:32s} serves {repository.area}")

    meta_index = MetaIndexServer("nih-meta-index:9020", namespace)
    client = ClientPeer("researcher:9020", namespace)
    network.register(meta_index)
    network.register(client)
    register_offline([*repositories, meta_index, client])
    seed_with_meta_index([client], [meta_index])

    query_area = workload.mammalian_cardiac_query_area()
    expected = workload.matching_records(query_area)
    print(f"\nQuery area: {query_area}")
    print(f"Ground truth: {len(expected)} matching expression records")

    plan = (
        PlanBuilder.urn(str(InterestAreaURN.for_area(query_area)))
        .select("cellType contains 'Muscle/Cardiac'")
        .display(client.address)
    )
    mqp = client.issue_query(plan, QueryPreferences(), expected_answers=len(expected))
    network.run_until_idle()

    trace = network.metrics.trace(mqp.query_id)
    result = client.result_for(mqp.query_id)
    print("\nRoute taken:", " -> ".join(trace.visited))
    skipped = [r.address for r in workload.repositories if r.address not in trace.visited]
    print("Repositories never contacted:", ", ".join(skipped) or "(none)")
    print(f"Records returned: {result.count} (recall {trace.recall:.2f})")
    genes = sorted({item.child_text("gene") for item in result.items})
    print("Genes observed in cardiac records:", ", ".join(genes))


if __name__ == "__main__":
    main()
