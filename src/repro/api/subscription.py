"""Standing queries at the API layer: subscriptions and delta feeds.

A :class:`Subscription` is to a continuous query what
:class:`~repro.api.handle.QueryHandle` is to a one-shot query: the
future-like object a program holds while the network does the work.  It is
created by ``session.subscribe(...)``, ``builder.subscribe()`` or
``handle.subscribe()`` (all requiring ``repro.perf.flags.continuous_queries``),
and exposes the feed the peer layer assembles:

    with flags.overrides(continuous_queries=True):
        sub = client.query().area(area).where("price < 10").subscribe()
        seller.update("cds", changed_items)
        for delta in sub.deltas(timeout=5_000):
            print(delta.kind, delta.items)
        sub.unsubscribe()

``deltas()`` drives the shared clock exactly like ``QueryHandle.result()``
— event-driven on the transport's ``stop`` hook, never polling.  Unlike a
one-shot result there is no terminal answer: the iterator ends when the
time budget is spent or the network goes idle, which is a quiescent feed,
not an error.  :class:`~repro.errors.PeerOffline` still raises — a feed
whose subscriber died delivers nowhere.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, TypedDict

from ..algebra.serialization import parse_plan
from ..errors import APIError, PeerOffline
from ..peers.subscriptions import DeltaRecord, SubscriberState

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from ..peers.peer import QueryResult
    from .session import Session

__all__ = ["AuthorityConflict", "Subscription"]


class AuthorityConflict(TypedDict):
    """A surfaced MOAS-style conflict: two authorities armed one publisher.

    The publisher kept its original arming (it never double-delivers); the
    conflict notice names both claimants so the application — like a BGP
    operator reading a MOAS alarm — can decide which authority is
    legitimate.
    """

    sub: str
    publisher: str
    authorities: List[str]
    at_ms: float


class Subscription:
    """A standing query's handle: delta iteration, snapshots, teardown.

    Created by :meth:`repro.api.session.Session.subscribe` (or the
    ``subscribe()`` terminals on :class:`~repro.api.query.QueryBuilder` and
    :class:`~repro.api.handle.QueryHandle`).  Context-managed use
    unsubscribes on exit::

        with session.query().area(area).subscribe() as sub:
            ...
    """

    def __init__(self, session: "Session", sub_id: str) -> None:
        self._session = session
        self._peer = session.peer
        self._network = session.cluster.network
        self.sub_id = sub_id
        self._consumed = 0

    # -- inspection (never advances the clock) ----------------------------- #

    @property
    def active(self) -> bool:
        """Whether the subscription is still registered at its peer."""
        state = self._peer.subscription_state(self.sub_id)
        return state is not None and state.active

    def lag(self) -> int:
        """Deltas delivered to the peer but not yet consumed via :meth:`deltas`.

        The subscriber-side backlog: how far this handle's iteration is
        behind the feed.  Zero for a fully drained (or torn-down)
        subscription.
        """
        state = self._peer.subscription_state(self.sub_id)
        if state is None:
            return 0
        return len(state.deltas) - self._consumed

    def delivered(self) -> list[DeltaRecord]:
        """Every delta released at the peer so far (non-blocking)."""
        state = self._peer.subscription_state(self.sub_id)
        return list(state.deltas) if state is not None else []

    def conflicts(self) -> list[AuthorityConflict]:
        """Authority-conflict notices surfaced for this subscription."""
        state = self._peer.subscription_state(self.sub_id)
        if state is None:
            return []
        return [
            AuthorityConflict(
                sub=str(record.get("sub", self.sub_id)),
                publisher=str(record.get("publisher", "")),
                authorities=[str(a) for a in record.get("authorities", ())],
                at_ms=float(record.get("at_ms", 0.0)),
            )
            for record in state.conflicts
        ]

    # -- the feed (drives the shared clock) --------------------------------- #

    def deltas(
        self, timeout: float | None = None, limit: int | None = None
    ) -> Iterator[DeltaRecord]:
        """Stream deltas as publishers emit them, in per-publisher order.

        ``timeout`` bounds the wait in *simulated* milliseconds from now;
        ``limit`` stops after that many deltas (handy when the expected
        count is known).  The stream ends — without raising — when the
        budget is spent, the network goes idle, or the subscription is
        torn down mid-iteration: a standing query has no terminal result,
        so a quiet feed is an outcome, not an error.  Only
        :class:`~repro.errors.PeerOffline` raises, matching
        ``QueryHandle.result()``: with the subscriber gone the feed
        delivers nowhere.
        """
        deadline = self._network.now + timeout if timeout is not None else None
        yielded = 0
        while True:
            state = self._peer.subscription_state(self.sub_id)
            if state is None:
                return
            while self._consumed < len(state.deltas):
                record = state.deltas[self._consumed]
                self._consumed += 1
                yielded += 1
                yield record
                if limit is not None and yielded >= limit:
                    return
            if not state.active:
                return
            progressed = self._network.run_until(self._behind, until=deadline)
            if not self._peer.online:
                raise PeerOffline(
                    f"peer {self._peer.address} went offline while streaming "
                    f"deltas of subscription {self.sub_id!r}; its publishers "
                    "pause the feed until it resubscribes"
                )
            if not progressed:
                return  # idle network or spent budget: the feed is quiet

    def _behind(self) -> bool:
        state = self._peer.subscription_state(self.sub_id)
        return state is None or not state.active or len(state.deltas) > self._consumed

    # -- snapshots ------------------------------------------------------------ #

    def snapshot(self, timeout: float | None = None) -> "QueryResult":
        """Re-run the subscribed plan as a one-shot query and wait for it.

        The answer is produced by the same physical operators that build
        the deltas, so a snapshot taken on a quiet feed agrees item for
        item with the state the deltas describe.  This is also the
        documented recovery from an epoch change: when a publisher re-arms
        after losing replay log, the feed's continuity broke, and a
        snapshot re-baselines the subscriber.
        """
        return self._session.submit(parse_plan(self._state().document)).result(
            timeout=timeout
        )

    # -- teardown -------------------------------------------------------------- #

    def unsubscribe(self) -> None:
        """Tear the subscription down at every hop (idempotent).

        Mirrors ``QueryHandle.cancel()``: the notice retraces the subscribe
        fan-out, authorities drop their registry entries, publishers disarm
        their matchers, and pending delta retransmissions are cancelled.
        """
        self._peer.unsubscribe(self.sub_id)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.unsubscribe()

    # -- internals -------------------------------------------------------------- #

    def _state(self) -> SubscriberState:
        state = self._peer.subscription_state(self.sub_id)
        if state is None:
            raise APIError(
                f"subscription {self.sub_id!r} is no longer registered at "
                f"{self._peer.address} (unsubscribed?)"
            )
        return state

    def __repr__(self) -> str:
        status = "active" if self.active else "inactive"
        return (
            f"Subscription({self.sub_id!r}, peer={self._peer.address!r}, "
            f"{status}, lag={self.lag()})"
        )
