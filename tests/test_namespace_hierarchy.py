"""Tests for category paths and hierarchies."""

import pytest

from repro.errors import NamespaceError
from repro.namespace import TOP, CategoryPath, Hierarchy, location_hierarchy


class TestCategoryPath:
    def test_parse_and_str_roundtrip(self):
        path = CategoryPath.parse("USA/OR/Portland")
        assert str(path) == "USA/OR/Portland"
        assert path.depth == 3
        assert path.label == "Portland"

    def test_top_category(self):
        assert CategoryPath.parse("*") == TOP
        assert TOP.is_top
        assert str(TOP) == "*"
        assert TOP.parent == TOP

    def test_invalid_segment_rejected(self):
        with pytest.raises(NamespaceError):
            CategoryPath(("bad/segment",))
        with pytest.raises(NamespaceError):
            CategoryPath(("",))

    def test_parent_and_ancestors(self):
        path = CategoryPath.parse("USA/OR/Portland")
        assert str(path.parent) == "USA/OR"
        assert [str(a) for a in path.ancestors()] == ["*", "USA", "USA/OR"]
        assert [str(a) for a in path.ancestors(include_self=True)][-1] == "USA/OR/Portland"

    def test_covers_is_reflexive_and_ancestral(self):
        oregon = CategoryPath.parse("USA/OR")
        portland = CategoryPath.parse("USA/OR/Portland")
        assert oregon.covers(portland)
        assert oregon.covers(oregon)
        assert not portland.covers(oregon)
        assert TOP.covers(portland)

    def test_overlaps_and_meet(self):
        oregon = CategoryPath.parse("USA/OR")
        portland = CategoryPath.parse("USA/OR/Portland")
        seattle = CategoryPath.parse("USA/WA/Seattle")
        assert oregon.overlaps(portland)
        assert not portland.overlaps(seattle)
        assert oregon.meet(portland) == portland
        assert portland.meet(seattle) is None

    def test_common_ancestor(self):
        portland = CategoryPath.parse("USA/OR/Portland")
        eugene = CategoryPath.parse("USA/OR/Eugene")
        paris = CategoryPath.parse("France/IleDeFrance/Paris")
        assert str(portland.common_ancestor(eugene)) == "USA/OR"
        assert portland.common_ancestor(paris) == TOP

    def test_relative_depth(self):
        portland = CategoryPath.parse("USA/OR/Portland")
        assert portland.relative_depth(CategoryPath.parse("USA")) == 2
        with pytest.raises(NamespaceError):
            portland.relative_depth(CategoryPath.parse("France"))

    def test_child(self):
        assert str(CategoryPath.parse("USA").child("OR")) == "USA/OR"


class TestHierarchy:
    def test_add_creates_ancestors(self):
        hierarchy = Hierarchy("Location")
        hierarchy.add("USA/OR/Portland")
        assert "USA" in hierarchy
        assert "USA/OR" in hierarchy
        assert "USA/OR/Portland" in hierarchy

    def test_children_sorted(self):
        hierarchy = Hierarchy("M", ["Music/CDs", "Music/Vinyl", "Music/Cassettes"])
        labels = [child.label for child in hierarchy.children("Music")]
        assert labels == sorted(labels)
        assert len(labels) == 3

    def test_children_of_unknown_raises(self):
        with pytest.raises(NamespaceError):
            Hierarchy("X").children("Nope")

    def test_leaves_and_depth(self):
        hierarchy = location_hierarchy()
        leaves = hierarchy.leaves()
        assert all(not hierarchy.children(leaf) for leaf in leaves)
        assert hierarchy.depth() == 3

    def test_validate(self):
        hierarchy = location_hierarchy()
        assert hierarchy.validate("USA/OR") == CategoryPath.parse("USA/OR")
        with pytest.raises(NamespaceError):
            hierarchy.validate("Atlantis")

    def test_approximate_unknown_to_known_ancestor(self):
        hierarchy = location_hierarchy()
        approx = hierarchy.approximate("USA/OR/Portland/Hawthorne")
        assert str(approx) == "USA/OR/Portland"
        assert hierarchy.approximate("Atlantis/Coral") == TOP

    def test_descendants(self):
        hierarchy = location_hierarchy()
        descendants = hierarchy.descendants("USA/OR")
        assert CategoryPath.parse("USA/OR/Portland") in descendants
        assert CategoryPath.parse("USA/WA/Seattle") not in descendants
        without_self = hierarchy.descendants("USA/OR", include_self=False)
        assert CategoryPath.parse("USA/OR") not in without_self

    def test_add_tree(self):
        hierarchy = Hierarchy("T")
        hierarchy.add_tree({"A": {"B": {}, "C": {"D": {}}}})
        assert "A/C/D" in hierarchy
        assert len(hierarchy.children("A")) == 2

    def test_empty_name_rejected(self):
        with pytest.raises(NamespaceError):
            Hierarchy("")
