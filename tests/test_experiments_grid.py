"""The experiment grid on real scenarios, plus seed-threading regressions."""

from __future__ import annotations

import json

import pytest

from repro.experiments import Experiment, ExperimentSpec, ROW_COLUMNS
from repro.experiments.cli import main as experiment_main
from repro.harness.cli import SCENARIOS, main as cli_main
from repro.harness.experiment import build_mqp_scenario, run_mqp_queries
from repro.harness.report import to_json
from repro.harness.scaleout import ScaleoutSpec, run_scaleout
from repro.workloads import GarageSaleConfig, GarageSaleWorkload, QueryWorkload


def _tiny_grid() -> ExperimentSpec:
    return ExperimentSpec(
        name="tiny",
        scenarios=(
            ScaleoutSpec(name="coop", topology="small-world", peers=30,
                         workload="garage-sale", queries=4),
            ScaleoutSpec(name="riders", topology="small-world", peers=30,
                         workload="garage-sale", queries=4, free_rider_fraction=0.4),
        ),
        seeds=(11, 17),
        repeats=2,
    )


class TestGridOnRealScenarios:
    def test_tiny_grid_runs_and_reports(self, tmp_path):
        jsonl = tmp_path / "rows.jsonl"
        csv = tmp_path / "rows.csv"
        result = Experiment(_tiny_grid()).run(jsonl_path=str(jsonl), csv_path=str(csv))

        assert len(result.rows) == 8
        for row in result.rows:
            assert tuple(row.keys()) == ROW_COLUMNS
            assert row["queries"] == 4
            assert 0.0 <= row["completeness"] <= 1.0

        # Non-degenerate statistics: pooled CIs are strictly inside (0, 1)-width.
        for cell in result.cells:
            completeness = cell["completeness"]
            assert completeness["trials"] == 16
            assert 0.0 < completeness["ci_high"] - completeness["ci_low"] < 1.0
        assert "vs_baseline" in result.cell("riders")
        assert 0.0 <= result.cell("riders")["vs_baseline"]["p_value"] <= 1.0

        # The streamed files agree with the in-memory rows.
        lines = jsonl.read_text().splitlines()
        assert [json.loads(line) for line in lines] == result.rows
        header = csv.read_text().splitlines()[0]
        assert header == ",".join(ROW_COLUMNS)

    def test_same_grid_twice_is_byte_identical(self, tmp_path):
        first = tmp_path / "first.jsonl"
        second = tmp_path / "second.jsonl"
        Experiment(_tiny_grid()).run(jsonl_path=str(first))
        Experiment(_tiny_grid()).run(jsonl_path=str(second))
        assert first.read_bytes() == second.read_bytes()

    def test_adversarial_cell_degrades_completeness(self):
        result = Experiment(_tiny_grid()).run()
        coop = result.cell("coop")["completeness"]["proportion"]
        riders = result.cell("riders")["completeness"]["proportion"]
        assert riders < coop


class TestExperimentCLI:
    def test_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "exp"
        code = experiment_main([
            "--scenarios", "smoke,free-riders", "--seeds", "11", "--repeats", "2",
            "--peers", "30", "--queries", "4", "--output-dir", str(out),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "cells (95% Wilson CIs" in printed
        assert (out / "rows.jsonl").exists()
        assert (out / "rows.csv").exists()
        summary = json.loads((out / "summary.json").read_text())
        assert summary["grid"]["runs"] == 4
        assert len(summary["cells"]) == 2

    def test_dispatch_through_main_cli(self, tmp_path, capsys):
        code = cli_main([
            "experiment", "--scenarios", "smoke", "--seeds", "11", "--repeats", "1",
            "--peers", "30", "--queries", "3",
            "--output-dir", str(tmp_path / "exp"),
        ])
        assert code == 0
        assert "experiment smoke:" in capsys.readouterr().out

    def test_unknown_preset_fails_loudly(self, tmp_path):
        with pytest.raises(SystemExit):
            experiment_main(["--scenarios", "no-such-preset",
                             "--output-dir", str(tmp_path)])

    def test_adversarial_presets_are_registered(self):
        for name in ("zipf-hotspot", "flash-crowd", "free-riders",
                     "stale-catalog", "lying-catalog", "regional-outage"):
            assert name in SCENARIOS
            SCENARIOS[name].validate()


class TestSeedThreading:
    """Satellite regressions: explicit seeds make repeated runs bit-identical."""

    def _workload(self):
        return GarageSaleWorkload(GarageSaleConfig(sellers=12, mean_items_per_seller=3.0, seed=23))

    def _queries(self, workload, seed):
        return QueryWorkload(workload.namespace, seed=seed).batch(6)

    def test_mqp_harness_same_seed_is_bit_identical_in_process(self):
        # Without explicit seeding the global query-id counter leaks id width
        # into serialized plan sizes, so back-to-back runs diverge.  With a
        # seed the whole summary must be identical, run after run.
        summaries = []
        for _ in range(2):
            workload = self._workload()
            scenario = build_mqp_scenario(workload, seed=41)
            summaries.append(
                run_mqp_queries(scenario, self._queries(workload, 41), seed=41)
            )
        assert summaries[0] == summaries[1]

    def test_mqp_harness_seed_controls_latency_jitter(self):
        workload_a, workload_b = self._workload(), self._workload()
        scenario_a = build_mqp_scenario(workload_a, seed=41)
        scenario_b = build_mqp_scenario(workload_b, seed=42)
        summary_a = run_mqp_queries(scenario_a, self._queries(workload_a, 41), seed=41)
        summary_b = run_mqp_queries(scenario_b, self._queries(workload_b, 41), seed=42)
        assert summary_a != summary_b

    def test_scaleout_same_seed_is_bit_identical_in_process(self):
        spec = ScaleoutSpec(name="seeded", topology="small-world", peers=30,
                            workload="garage-sale", queries=4, seed=19,
                            free_rider_fraction=0.2)
        assert to_json(run_scaleout(spec)) == to_json(run_scaleout(spec))

    def test_scaleout_adversarial_report_identical_across_transports(self):
        spec = ScaleoutSpec(name="seeded-aio", topology="small-world", peers=20,
                            workload="garage-sale", queries=3, seed=19,
                            catalog_mode="stale")
        assert to_json(run_scaleout(spec, "sim")) == to_json(run_scaleout(spec, "aio"))
