"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments whose setuptools predates full PEP 660 support (no ``wheel``
package available).
"""

from setuptools import setup

setup()
