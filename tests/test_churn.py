"""Churn behaviour: crashes mid-forward, rejoin re-propagation, cache invalidation.

The invariants under test:

* a plan forwarded toward a dead peer is rerouted or degrades to a partial
  answer — it is never silently dropped;
* a peer that rejoins after an outage re-propagates its registration, so
  indexers that pruned it re-learn its entries;
* failure detection invalidates the sender's routing cache and catalog
  entries for the dead peer.
"""

from __future__ import annotations

import pytest

from repro.algebra import PlanBuilder
from repro.catalog import ServerRole
from repro.mqp import QueryPreferences
from repro.network import CHURN_PROFILES, FailureInjector, Network
from repro.peers import (
    BaseServer,
    ClientPeer,
    IndexServer,
    MetaIndexServer,
    register_online,
    seed_with_meta_index,
)
from repro.xmlmodel import XMLElement, element, text_element


def make_item(title: str, price: float, city: str = "USA/OR/Portland",
              category: str = "Music/CDs") -> XMLElement:
    return element(
        "item",
        {"id": title},
        text_element("title", title),
        text_element("price", price),
        text_element("city", city),
        text_element("category", category),
    )


@pytest.fixture()
def churn_network(namespace):
    """A small catalog-routed network with online registration.

    One Portland base server with CD items, one authoritative Oregon index,
    one meta-index, one client that knows only the meta-index.
    """
    network = Network(notify_unreachable=True)
    area = namespace.area(["USA/OR", "*"])
    base = BaseServer("base-portland:9020", namespace, namespace.area(["USA/OR/Portland", "Music"]))
    index = IndexServer("index-or:9020", namespace, area, authoritative=True)
    meta = MetaIndexServer("meta:9020", namespace, authoritative=True)
    client = ClientPeer("client:9020", namespace)
    for node in (base, index, meta, client):
        network.register(node)
    base.publish_collection(
        "items", [make_item("Abbey Road", 8.0), make_item("Blue Train", 12.0)]
    )
    register_online([base, index, meta, client])
    network.run_until_idle()
    seed_with_meta_index([client], [meta])
    # Redundant knowledge so failures have somewhere to reroute to: the
    # client knows the Oregon index directly, and the base also registered
    # with the meta-index (which retains it without collection detail).
    client.learn_about(index.server_entry())
    base.register_with(meta.address)
    network.run_until_idle()
    return network, base, index, meta, client


def _portland_query(client, namespace):
    from repro.namespace import InterestAreaURN

    area = namespace.area(["USA/OR/Portland", "Music"])
    urn = str(InterestAreaURN.for_area(area))
    return PlanBuilder.urn(urn).select("price < 100").display(client.address)


class TestCrashMidForward:
    def test_plan_rerouted_around_dead_hop_still_answers(self, churn_network, namespace):
        network, base, index, meta, client = churn_network
        # The client's preferred first hop for an unbindable URN is the most
        # specific covering indexer; kill it so the forward fails.
        index.go_offline()
        mqp = client.submit_plan(_portland_query(client, namespace), QueryPreferences())
        network.run_until_idle()
        result = mqp and client.results.get(mqp.query_id)
        assert result is not None, "plan was silently dropped"
        # The reroute found the meta-index (or the base directly) and the
        # plan still reached the data.
        assert result.count == 2
        reroutes = sum(p.plans_rerouted for p in (base, index, meta, client))
        assert reroutes >= 1

    def test_all_routes_dead_degrades_to_partial_not_lost(self, churn_network, namespace):
        network, base, index, meta, client = churn_network
        for node in (base, index, meta):
            node.go_offline()
        mqp = client.submit_plan(_portland_query(client, namespace), QueryPreferences())
        network.run_until_idle()
        result = mqp and client.results.get(mqp.query_id)
        assert result is not None, "plan was silently dropped"
        assert result.partial
        assert result.count == 0

    def test_dead_peer_tracked_and_forgotten_on_recovery(self, churn_network, namespace):
        network, base, index, meta, client = churn_network
        index.go_offline()
        client.submit_plan(_portland_query(client, namespace), QueryPreferences())
        network.run_until_idle()
        assert index.address in client.suspected_dead
        # Any later message from the peer clears the suspicion.
        index.go_online()
        network.run_until_idle()
        client.learn_about(index.server_entry())
        index.send(client.address, "register-ack", index.server_entry())
        network.run_until_idle()
        assert index.address not in client.suspected_dead


class TestRejoinRepropagation:
    def test_index_prunes_dead_base_then_relearns_after_rejoin(self, churn_network, namespace):
        network, base, index, meta, client = churn_network
        assert base.address in index.catalog.servers
        base.go_offline()
        # A query routed through the index toward the dead base triggers
        # failure detection at the index.
        client.submit_plan(_portland_query(client, namespace), QueryPreferences())
        network.run_until_idle()
        assert base.address not in index.catalog.servers

        base.go_online()  # re-propagates the registration (§3.3)
        network.run_until_idle()
        assert base.address in index.catalog.servers
        entry = index.catalog.servers[base.address]
        assert entry.role is ServerRole.BASE
        assert entry.collections, "re-registration must restore collection knowledge"

    def test_queries_recover_full_answers_after_rejoin(self, churn_network, namespace):
        network, base, index, meta, client = churn_network
        base.go_offline()
        first = client.submit_plan(_portland_query(client, namespace), QueryPreferences())
        network.run_until_idle()
        assert client.results[first.query_id].count == 0

        base.go_online()
        network.run_until_idle()
        second = client.submit_plan(_portland_query(client, namespace), QueryPreferences())
        network.run_until_idle()
        result = client.results.get(second.query_id)
        assert result is not None
        assert result.count == 2

    def test_registration_targets_recorded_offline_too(self, namespace):
        from repro.peers import register_offline

        network = Network()
        base = BaseServer("b:1", namespace, namespace.area(["USA/OR", "Music"]))
        index = IndexServer("i:1", namespace, namespace.area(["USA/OR", "*"]), authoritative=True)
        network.register(base)
        network.register(index)
        base.publish_collection("items", [make_item("X", 1.0)])
        register_offline([base, index])
        assert index.address in base.registration_targets


class TestRoutingCacheInvalidation:
    def test_unreachable_peer_evicted_from_cache_and_catalog(self, churn_network, namespace):
        network, base, index, meta, client = churn_network
        area = namespace.area(["USA/OR/Portland", "Music"])
        assert any(entry.server == index.address for entry in client.cache.lookup(area))
        index.go_offline()
        client.submit_plan(_portland_query(client, namespace), QueryPreferences())
        network.run_until_idle()
        assert not any(entry.server == index.address for entry in client.cache.lookup(area))
        assert index.address not in client.catalog.servers

    def test_graceful_leave_unregisters_immediately(self, churn_network, namespace):
        network, base, index, meta, client = churn_network
        assert base.address in index.catalog.servers
        base.leave()
        network.run_until_idle()
        assert base.address not in index.catalog.servers
        assert not base.online


class TestPruneIsolation:
    def test_prune_does_not_corrupt_entries_shared_with_origin(self, churn_network, namespace):
        """Registration shares entry objects by reference; pruning at one
        catalog must not gut the origin peer's (or anyone else's) copy."""
        network, base, index, meta, client = churn_network
        base.publish_named_resource_urn = None  # noqa: B018 - documentation only
        from repro.catalog import CollectionRef, NamedResourceEntry

        entry = NamedResourceEntry(
            "urn:ForSale:Shared", [CollectionRef(base.address, "/items")]
        )
        base.catalog.register_named_resource(entry)
        index.catalog.register_named_resource(entry)  # same object, as registration does
        index.catalog.prune_server(base.address)
        assert index.catalog.lookup_named("urn:ForSale:Shared") is None
        origin = base.catalog.lookup_named("urn:ForSale:Shared")
        assert origin is not None and origin.collections, "origin's entry was gutted"

    def test_graceful_leave_drains_buffered_batch(self, churn_network, namespace):
        """A leaver finishes accepted work; only crashes lose buffered plans."""
        network, base, index, meta, client = churn_network
        base.enable_batching(10.0)
        plan = _portland_query(client, namespace)
        from repro.mqp import MutantQueryPlan

        document = MutantQueryPlan(plan).serialize()
        client.send(base.address, "mqp", document, size_bytes=len(document))
        while not base._mqp_buffer and network.simulator.step():
            pass
        assert base._mqp_buffer
        base.leave()
        assert base.plans_processed == 1, "leave() must flush buffered plans"
        network.run_until_idle()
        assert any(result.count for result in client.results.values())

    def test_crashed_peer_does_not_flush_buffered_batch(self, churn_network, namespace):
        network, base, index, meta, client = churn_network
        base.enable_batching(10.0)
        plan = _portland_query(client, namespace)
        from repro.mqp import MutantQueryPlan

        document = MutantQueryPlan(plan).serialize()
        client.send(base.address, "mqp", document, size_bytes=len(document))
        # Step until the message has arrived (buffered), then crash before
        # the scheduled flush runs.
        while not base._mqp_buffer and network.simulator.step():
            pass
        assert base._mqp_buffer, "plan should be buffered awaiting the batch flush"
        sent_before = base.sent_messages
        base.go_offline()
        network.run_until_idle()
        assert base.plans_processed == 0
        assert base.sent_messages == sent_before, "a crashed peer must not forward"
        assert base.plans_lost_in_crash == 1, "the loss must be accounted"


class TestChurnSchedules:
    def test_profiles_exist_and_scale(self):
        assert set(CHURN_PROFILES) == {"none", "light", "moderate", "heavy", "regional"}
        assert CHURN_PROFILES["none"].churn_fraction == 0.0
        assert CHURN_PROFILES["light"].churn_fraction < CHURN_PROFILES["heavy"].churn_fraction
        # The regional profile is the only correlated one: whole regions fail
        # together instead of independent peers.
        assert CHURN_PROFILES["regional"].correlated
        assert all(
            not profile.correlated
            for name, profile in CHURN_PROFILES.items() if name != "regional"
        )

    def test_schedule_churn_is_deterministic(self, namespace):
        def plan_for_seed(seed):
            network = Network()
            peers = []
            for position in range(40):
                peer = BaseServer(f"p{position}:9020", namespace, namespace.top_area())
                network.register(peer)
                peers.append(peer)
            injector = FailureInjector(network)
            return injector.schedule_churn(
                [peer.address for peer in peers], "moderate", seed=seed
            )

        first = plan_for_seed(13)
        second = plan_for_seed(13)
        third = plan_for_seed(14)
        assert first.events == second.events
        assert first.events != third.events
        assert first.summary()["events"] == len(first.events) > 0

    def test_churned_peers_go_down_and_rejoin(self, namespace):
        network = Network()
        peers = []
        for position in range(30):
            peer = BaseServer(f"p{position}:9020", namespace, namespace.top_area())
            network.register(peer)
            peers.append(peer)
        injector = FailureInjector(network)
        plan = injector.schedule_churn(
            [peer.address for peer in peers], CHURN_PROFILES["heavy"], seed=3
        )
        assert plan.events, "heavy churn over 30 peers must schedule events"
        network.run_until_idle()
        rejoined = {event.address for event in plan.events if event.recover_at is not None}
        gone = {event.address for event in plan.events if event.recover_at is None}
        for peer in peers:
            if peer.address in rejoined:
                assert peer.online
            elif peer.address in gone:
                assert not peer.online

    def test_unknown_profile_rejected(self, namespace):
        from repro.errors import SimulationError

        network = Network()
        injector = FailureInjector(network)
        with pytest.raises(SimulationError):
            injector.schedule_churn(["a:1"], "apocalyptic")


class TestDeliveryPathNotices:
    """Regression: the delivery path must notify, not just the send path.

    ``Network._drop`` is reached two ways — at send time (unknown
    recipient) and at delivery time (the peer crashed while the message was
    in flight).  Both must emit the ``peer-unreachable`` notice when
    ``notify_unreachable`` is on; a plan caught mid-flight by a crash would
    otherwise be silently lost instead of rerouted.
    """

    def test_crash_mid_delivery_emits_notice_and_reroutes(self, churn_network, namespace):
        network, base, index, meta, client = churn_network
        mqp = client.submit_plan(_portland_query(client, namespace), QueryPreferences())
        # The client's forward to the index is now in flight; crash the
        # index before the modelled delivery delay elapses.
        network.schedule(0.5, index.go_offline)
        network.run_until_idle()
        result = mqp and client.results.get(mqp.query_id)
        assert result is not None, "in-flight plan was silently dropped"
        assert result.count == 2, "reroute around the mid-delivery crash failed"
        assert index.address in client.suspected_dead
        assert client.plans_rerouted >= 1

    def test_notice_carries_the_original_message(self, namespace):
        from repro.network import NetworkNode

        received = []

        class Probe(NetworkNode):
            def handle_message(self, message):
                received.append(message)

        network = Network(notify_unreachable=True)
        sender, target = Probe("sender:1"), Probe("target:1")
        network.register(sender)
        network.register(target)
        original = sender.send("target:1", "mqp", "document")
        network.schedule(0.5, target.go_offline)  # crash mid-delivery
        network.run_until_idle()
        notices = [m for m in received if m.kind == "peer-unreachable"]
        assert len(notices) == 1
        assert notices[0].payload is original
        assert network.metrics.dropped_messages == 1

    def test_undeliverable_ack_is_dead_lettered_not_dropped(self, churn_network, namespace):
        """The previous allowlist silently discarded unanticipated kinds
        (register-ack, unregister); every non-plan kind is dead-lettered now."""
        network, base, index, meta, client = churn_network
        base.send(index.address, "register-ack", base.server_entry(), size_bytes=64)
        network.schedule(0.5, index.go_offline)
        network.run_until_idle()
        assert any(m.kind == "register-ack" for m in base.dead_letters)

    def test_result_to_offline_client_is_dead_lettered(self, churn_network, namespace):
        """Regression: a result whose target went offline mid-query must be
        dead-lettered at its sender, never silently lost.

        The client issues a query and crashes before the answer can return;
        the deliverer's failure detection hands the undeliverable result
        back, and it lands in the sender's dead letters with the query id
        intact (so an operator can attribute the loss).
        """
        network, base, index, meta, client = churn_network
        mqp = client.submit_plan(_portland_query(client, namespace), QueryPreferences())
        client.go_offline()  # offline before the result can be delivered
        network.run_until_idle()
        assert mqp.query_id not in client.results
        dead_results = [
            message
            for peer in (base, index, meta)
            for message in peer.dead_letters
            if message.kind in ("result", "partial-result")
        ]
        assert dead_results, "the undeliverable result was silently lost"
        assert any(
            message.payload["query_id"] == mqp.query_id for message in dead_results
        )

    def test_handle_raises_peer_offline_for_crashed_client(self, churn_network, namespace):
        """The API-level view of the same failure: the QueryHandle raises
        PeerOffline instead of blocking or returning None."""
        from repro.api import QueryHandle
        from repro.errors import PeerOffline

        network, base, index, meta, client = churn_network
        mqp = client.submit_plan(_portland_query(client, namespace), QueryPreferences())
        handle = QueryHandle(client, network, mqp.query_id)
        client.go_offline()
        with pytest.raises(PeerOffline):
            handle.result(timeout=60_000)


class TestScaleoutChurnEndToEnd:
    def test_moderate_churn_run_never_loses_plans(self):
        from repro.harness.scaleout import ScaleoutSpec, run_scaleout

        spec = ScaleoutSpec(
            name="t", topology="small-world", peers=40, workload="garage-sale",
            churn="moderate", queries=6, seed=5,
        )
        report = run_scaleout(spec)
        processing = report["processing"]
        # Every issued query produced a trace; every plan ended in delivery,
        # a reroute, or an accounted dead letter — none vanished.
        assert len(report["queries"]) == 6
        assert report["churn"]["events"] > 0
        assert processing["plans_processed"] > 0
        for row in report["queries"]:
            assert row["answers"] is not None
