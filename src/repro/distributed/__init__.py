"""Traditional distributed-execution baselines: coordinator model and semi-joins."""

from .coordinator import CoordinatorClient, CoordinatorServer, SubordinateServer
from .semijoin import SemiJoinEstimate, estimate_full_ship, estimate_semijoin

__all__ = [
    "CoordinatorServer",
    "SubordinateServer",
    "CoordinatorClient",
    "SemiJoinEstimate",
    "estimate_semijoin",
    "estimate_full_ship",
]
