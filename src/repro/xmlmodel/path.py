"""XPath-lite: the path expression language used by plans and catalogs.

The paper uses XPath expressions in two places: index-server entries point
at collections on base servers, e.g. ``(http://10.3.4.5, /data[id=245])``,
and query-plan predicates navigate inside XML data bundles, e.g. the price
selection of the Portland-CD query.  Full XPath 1.0 would be overkill; this
module implements the subset those uses need:

* absolute (``/data/item``) and relative (``item/price``) location paths,
* child steps with a tag name or the ``*`` wildcard,
* descendant-or-self steps written ``//item``,
* terminal ``@attr`` and ``text()`` steps that extract strings,
* predicates on steps: existence ``[price]``, attribute and child-element
  comparisons ``[@id = '245']`` / ``[price < 10]``, and 1-based positional
  predicates ``[2]``.

Evaluation returns elements in document order without duplicates.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Sequence

from ..errors import PathSyntaxError
from .element import XMLElement

__all__ = ["PathExpression", "parse_path", "evaluate_path", "evaluate_path_values"]


_COMPARATORS: dict[str, Callable[[float | str, float | str], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_PREDICATE_RE = re.compile(
    r"^\s*(?P<lhs>@?[\w.\-]+|\d+)\s*"
    r"(?:(?P<op>!=|<=|>=|=|<|>)\s*(?P<rhs>'[^']*'|\"[^\"]*\"|[\w.\-]+)\s*)?$"
)


@dataclass(frozen=True)
class Predicate:
    """A single ``[...]`` qualifier attached to a path step."""

    lhs: str
    op: str | None = None
    rhs: str | None = None

    def matches(self, node: XMLElement, position: int) -> bool:
        """Return True when ``node`` (1-based ``position``) satisfies this predicate."""
        if self.op is None:
            if self.lhs.isdigit():
                return position == int(self.lhs)
            if self.lhs.startswith("@"):
                return self.lhs[1:] in node.attributes
            return node.find(self.lhs) is not None
        left = self._lhs_value(node)
        if left is None:
            return False
        return _compare(left, self.op, self.rhs or "")

    def _lhs_value(self, node: XMLElement) -> str | None:
        if self.lhs.startswith("@"):
            return node.get(self.lhs[1:])
        child = node.find(self.lhs)
        if child is None:
            return None
        return child.text or ""


@dataclass(frozen=True)
class Step:
    """One location step: an axis, a node test, and optional predicates."""

    tag: str
    descendant: bool = False
    predicates: tuple[Predicate, ...] = ()


@dataclass(frozen=True)
class PathExpression:
    """A parsed XPath-lite expression."""

    steps: tuple[Step, ...]
    absolute: bool = False
    attribute: str | None = None
    text: bool = False
    source: str = ""

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.source


def _compare(left: str, op: str, right: str) -> bool:
    comparator = _COMPARATORS[op]
    try:
        return comparator(float(left), float(right))
    except (TypeError, ValueError):
        return comparator(left, right)


def _parse_predicates(chunk: str, source: str) -> tuple[str, tuple[Predicate, ...]]:
    predicates: list[Predicate] = []
    while chunk.endswith("]"):
        start = chunk.rfind("[")
        if start < 0:
            raise PathSyntaxError(f"unbalanced predicate brackets in {source!r}")
        body = chunk[start + 1 : -1]
        match = _PREDICATE_RE.match(body)
        if not match:
            raise PathSyntaxError(f"unsupported predicate [{body}] in {source!r}")
        rhs = match.group("rhs")
        if rhs and rhs[0] in "'\"":
            rhs = rhs[1:-1]
        predicates.insert(0, Predicate(match.group("lhs"), match.group("op"), rhs))
        chunk = chunk[:start]
    return chunk, tuple(predicates)


def parse_path(expression: str) -> PathExpression:
    """Parse an XPath-lite string into a :class:`PathExpression`.

    Raises
    ------
    PathSyntaxError
        If the expression uses syntax outside the supported subset.
    """
    source = expression.strip()
    if not source:
        raise PathSyntaxError("empty path expression")
    remainder = source
    absolute = remainder.startswith("/")
    steps: list[Step] = []
    attribute: str | None = None
    wants_text = False

    # Normalize '//' into a marker we can see while splitting on '/'.
    remainder = remainder.replace("//", "/\0")
    parts = [part for part in remainder.split("/") if part != ""]
    for index, raw in enumerate(parts):
        descendant = raw.startswith("\0")
        chunk = raw[1:] if descendant else raw
        is_last = index == len(parts) - 1
        if chunk == "text()":
            if not is_last:
                raise PathSyntaxError(f"text() must be the final step in {source!r}")
            wants_text = True
            continue
        if chunk.startswith("@"):
            if not is_last:
                raise PathSyntaxError(f"@attribute must be the final step in {source!r}")
            attribute = chunk[1:]
            if not attribute:
                raise PathSyntaxError(f"missing attribute name in {source!r}")
            continue
        chunk, predicates = _parse_predicates(chunk, source)
        if not chunk:
            raise PathSyntaxError(f"missing node test in step {raw!r} of {source!r}")
        if not re.fullmatch(r"[\w.\-]+|\*", chunk):
            raise PathSyntaxError(f"unsupported node test {chunk!r} in {source!r}")
        steps.append(Step(chunk, descendant, predicates))

    if not steps and attribute is None and not wants_text:
        raise PathSyntaxError(f"path {source!r} selects nothing")
    return PathExpression(tuple(steps), absolute, attribute, wants_text, source)


def _step_candidates(node: XMLElement, step: Step) -> list[XMLElement]:
    if step.descendant:
        pool = [candidate for candidate in node.iter()]
    else:
        pool = list(node.children)
    if step.tag == "*":
        return pool if step.descendant else list(node.children)
    return [candidate for candidate in pool if candidate.tag == step.tag]


def _apply_step(nodes: Sequence[XMLElement], step: Step) -> list[XMLElement]:
    selected: list[XMLElement] = []
    seen: set[int] = set()
    for node in nodes:
        candidates = _step_candidates(node, step)
        position = 0
        for candidate in candidates:
            position += 1
            if all(pred.matches(candidate, position) for pred in step.predicates):
                if id(candidate) not in seen:
                    seen.add(id(candidate))
                    selected.append(candidate)
    return selected


def evaluate_path(root: XMLElement, path: PathExpression | str) -> list[XMLElement]:
    """Return the elements selected by ``path`` starting from ``root``.

    For an absolute path, the first step is matched against ``root`` itself
    (so ``/data/item`` applied to a ``<data>`` document selects its items).
    """
    expression = parse_path(path) if isinstance(path, str) else path
    if not expression.steps:
        return [root]
    context: list[XMLElement]
    steps = expression.steps
    if expression.absolute:
        first = steps[0]
        if first.descendant:
            context = [root]
        else:
            if first.tag not in ("*", root.tag):
                return []
            if not all(pred.matches(root, 1) for pred in first.predicates):
                return []
            context = [root]
            steps = steps[1:]
    else:
        context = [root]
    for step in steps:
        context = _apply_step(context, step)
        if not context:
            return []
    return context


def evaluate_path_values(root: XMLElement, path: PathExpression | str) -> list[str]:
    """Return string values selected by ``path`` (attribute, text, or element text)."""
    expression = parse_path(path) if isinstance(path, str) else path
    nodes = evaluate_path(root, expression)
    if expression.attribute is not None:
        values = [node.get(expression.attribute) for node in nodes]
        return [value for value in values if value is not None]
    return [node.text or "" for node in nodes]
